//! System-level invariants of the simulated-device cost model — the
//! behaviours the paper's evaluation hinges on must hold end-to-end
//! through the public API.

use gbdt_mo::baselines::{GbdtSoTrainer, GrowthPolicy};
use gbdt_mo::core::{HistogramMethod, MultiGpuTrainer};
use gbdt_mo::prelude::*;

fn classification(n: usize, m: usize, d: usize, sparsity: f64, seed: u64) -> Dataset {
    make_classification(&ClassificationSpec {
        instances: n,
        features: m,
        classes: d,
        informative: (m / 2).max(1),
        sparsity,
        seed,
        ..Default::default()
    })
}

fn config(trees: usize, depth: usize) -> TrainConfig {
    TrainConfig {
        num_trees: trees,
        max_depth: depth,
        max_bins: 64,
        min_instances: 10,
        ..TrainConfig::default()
    }
}

#[test]
fn histogram_is_the_dominant_phase_fig4() {
    // The paper's headline profiling claim (Fig. 4): histogram building
    // dominates GBDT-MO training.
    let ds = classification(3000, 40, 12, 0.5, 1);
    let report = GpuTrainer::new(Device::rtx4090(), config(8, 5)).fit_report(&ds);
    let hist = report.histogram_fraction();
    assert!(
        hist > 0.5,
        "histogram fraction {hist} should dominate (paper: 67–89%)"
    );
    for phase in [Phase::Gradient, Phase::SplitEval, Phase::Partition] {
        assert!(
            hist > report.sim.fraction(phase),
            "{phase:?} outweighs histogram building"
        );
    }
}

#[test]
fn training_time_scales_linearly_in_trees_fig5() {
    let ds = classification(1500, 20, 8, 0.3, 2);
    let t10 = GpuTrainer::new(Device::rtx4090(), config(10, 4))
        .fit_report(&ds)
        .sim_seconds;
    let t40 = GpuTrainer::new(Device::rtx4090(), config(40, 4))
        .fit_report(&ds)
        .sim_seconds;
    let ratio = t40 / t10;
    assert!(
        (3.0..=5.0).contains(&ratio),
        "4× trees should be ~4× time, got {ratio}"
    );
}

#[test]
fn deeper_trees_cost_more_fig7() {
    let ds = classification(2000, 20, 8, 0.3, 3);
    let mut last = 0.0;
    for depth in [2usize, 4, 6] {
        let t = GpuTrainer::new(Device::rtx4090(), config(5, depth))
            .fit_report(&ds)
            .sim_seconds;
        assert!(t > last, "depth {depth} not more expensive: {t} vs {last}");
        last = t;
    }
}

#[test]
fn so_scales_with_classes_mo_does_not_fig6b() {
    let few = classification(800, 12, 3, 0.0, 4);
    let many = classification(800, 12, 12, 0.0, 4);

    let mo_ratio = {
        let a = GpuTrainer::new(Device::rtx4090(), config(5, 4))
            .fit_report(&few)
            .sim_seconds;
        let b = GpuTrainer::new(Device::rtx4090(), config(5, 4))
            .fit_report(&many)
            .sim_seconds;
        b / a
    };
    let so_ratio = {
        let a = GbdtSoTrainer::new(Device::rtx4090(), config(5, 4), GrowthPolicy::LevelWise)
            .fit_report(&few)
            .sim_seconds;
        let b = GbdtSoTrainer::new(Device::rtx4090(), config(5, 4), GrowthPolicy::LevelWise)
            .fit_report(&many)
            .sim_seconds;
        b / a
    };
    assert!(
        so_ratio > mo_ratio * 1.5,
        "4× classes: SO ratio {so_ratio} should far exceed MO ratio {mo_ratio}"
    );
}

#[test]
fn multi_gpu_accelerates_wide_data_table2() {
    let ds = classification(10_000, 64, 16, 0.3, 5);
    let t1 = MultiGpuTrainer::new(DeviceGroup::rtx4090s(1), config(4, 4))
        .fit_report(&ds)
        .sim_seconds;
    let t2 = MultiGpuTrainer::new(DeviceGroup::rtx4090s(2), config(4, 4))
        .fit_report(&ds)
        .sim_seconds;
    let t4 = MultiGpuTrainer::new(DeviceGroup::rtx4090s(4), config(4, 4))
        .fit_report(&ds)
        .sim_seconds;
    assert!(t2 < t1, "2 GPUs ({t2}) not faster than 1 ({t1})");
    assert!(t4 < t2, "4 GPUs ({t4}) not faster than 2 ({t2})");
    assert!(t4 > t1 / 4.5, "4-GPU speedup unrealistically superlinear");
}

#[test]
fn warp_packing_speeds_up_training_fig6a() {
    let ds = classification(4000, 32, 10, 0.6, 6);
    let packed = GpuTrainer::new(
        Device::rtx4090(),
        config(5, 5).with_hist_method(HistogramMethod::SharedMemory),
    )
    .fit_report(&ds)
    .sim_seconds;
    let unpacked = GpuTrainer::new(
        Device::rtx4090(),
        config(5, 5)
            .with_hist_method(HistogramMethod::SharedMemory)
            .with_warp_packing(false),
    )
    .fit_report(&ds)
    .sim_seconds;
    assert!(
        packed < unpacked * 0.8,
        "+wo should cut smem time markedly: {packed} vs {unpacked}"
    );
}

#[test]
fn sort_reduce_is_most_expensive_fixed_method_fig6a() {
    let ds = classification(3000, 32, 12, 0.5, 7);
    let time_of = |method: HistogramMethod| {
        GpuTrainer::new(Device::rtx4090(), config(5, 5).with_hist_method(method))
            .fit_report(&ds)
            .sim_seconds
    };
    let sort = time_of(HistogramMethod::SortReduce);
    let gmem = time_of(HistogramMethod::GlobalMemory);
    let smem = time_of(HistogramMethod::SharedMemory);
    assert!(sort > smem, "sort-reduce {sort} should exceed smem {smem}");
    assert!(
        sort > gmem * 0.8,
        "sort-reduce {sort} should be in gmem's ballpark or worse ({gmem})"
    );
}

#[test]
fn adaptive_selection_is_at_least_as_good_as_the_best_fixed() {
    let ds = classification(3000, 32, 12, 0.5, 8);
    let time_of = |method: HistogramMethod| {
        GpuTrainer::new(Device::rtx4090(), config(5, 5).with_hist_method(method))
            .fit_report(&ds)
            .sim_seconds
    };
    let adaptive = time_of(HistogramMethod::Adaptive);
    let best_fixed = [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
    ]
    .into_iter()
    .map(time_of)
    .fold(f64::INFINITY, f64::min);
    assert!(
        adaptive <= best_fixed * 1.1,
        "adaptive {adaptive} should be within 10% of best fixed {best_fixed}"
    );
}

#[test]
fn larger_output_dimension_costs_more() {
    let small = classification(1500, 20, 4, 0.3, 9);
    let large = classification(1500, 20, 16, 0.3, 9);
    let ts = GpuTrainer::new(Device::rtx4090(), config(5, 4))
        .fit_report(&small)
        .sim_seconds;
    let tl = GpuTrainer::new(Device::rtx4090(), config(5, 4))
        .fit_report(&large)
        .sim_seconds;
    assert!(
        tl > ts * 1.5,
        "4× outputs should clearly cost more: {tl} vs {ts}"
    );
}

#[test]
fn rtx3090_is_slower_than_rtx4090() {
    // The paper's sensitivity study ran on an RTX 3090 (§4.3).
    use gbdt_mo::gpusim::{Device as Dev, DeviceProps};
    let ds = classification(2000, 20, 8, 0.3, 10);
    let t4090 = GpuTrainer::new(Dev::new(0, DeviceProps::rtx4090()), config(5, 4))
        .fit_report(&ds)
        .sim_seconds;
    let t3090 = GpuTrainer::new(Dev::new(0, DeviceProps::rtx3090()), config(5, 4))
        .fit_report(&ds)
        .sim_seconds;
    assert!(
        t3090 > t4090,
        "3090 ({t3090}) should be slower than 4090 ({t4090})"
    );
}
