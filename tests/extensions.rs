//! Integration tests of the post-paper extensions, exercised through
//! the public façade: EFB, quantized gradients, binary serialization,
//! streams, random forest, and the apply/leaf-index embedding.

use gbdt_mo::baselines::{ForestConfig, RandomForestTrainer};
use gbdt_mo::core::compiled::CompiledEnsemble;
use gbdt_mo::core::predict::apply_leaf_indices;
use gbdt_mo::core::serialize;
use gbdt_mo::data::bundling::plan_bundles;
use gbdt_mo::data::CscMatrix;
use gbdt_mo::prelude::*;

fn sparse_multilabel(seed: u64) -> Dataset {
    make_multilabel(&MultilabelSpec {
        instances: 800,
        features: 100,
        labels: 20,
        avg_labels: 2.5,
        features_per_label: 5,
        sparsity: 0.2,
        seed,
    })
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        num_trees: 10,
        max_depth: 4,
        max_bins: 32,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

#[test]
fn efb_shrinks_columns_and_preserves_quality() {
    let ds = sparse_multilabel(1);
    let (train, test) = ds.split(0.25, 2);

    let plan = plan_bundles(&CscMatrix::from_dense(train.features()), 0.01);
    assert!(
        plan.num_bundles() * 2 <= train.m(),
        "expected ≥2× column reduction, got {} of {}",
        plan.num_bundles(),
        train.m()
    );
    let bundled_train = Dataset::new(
        plan.apply(train.features()),
        train.targets().to_vec(),
        train.d(),
        train.task(),
    );
    let bundled_test = Dataset::new(
        plan.apply(test.features()),
        test.targets().to_vec(),
        test.d(),
        test.task(),
    );

    let plain = GpuTrainer::new(Device::rtx4090(), quick_config()).fit_report(&train);
    let bundled = GpuTrainer::new(Device::rtx4090(), quick_config()).fit_report(&bundled_train);
    // Fewer columns → less simulated histogram time.
    assert!(
        bundled.sim_seconds < plain.sim_seconds,
        "bundled {} should beat plain {}",
        bundled.sim_seconds,
        plain.sim_seconds
    );
    // Quality stays in the same band (prob-RMSE within 15%).
    let loss = gbdt_mo::core::loss::loss_for_task(Task::MultiLabel);
    let prob_rmse = |model: &gbdt_mo::core::Model, t: &Dataset| {
        let mut p = model.predict(t.features());
        for row in p.chunks_mut(t.d()) {
            loss.transform_row(row);
        }
        rmse(&p, t.targets())
    };
    let e_plain = prob_rmse(&plain.model, &test);
    let e_bundled = prob_rmse(&bundled.model, &bundled_test);
    assert!(
        e_bundled < e_plain * 1.15,
        "bundled rmse {e_bundled} vs plain {e_plain}"
    );
}

#[test]
fn quantized_gradients_trade_tiny_accuracy_for_traffic() {
    let ds = make_classification(&ClassificationSpec {
        instances: 900,
        features: 16,
        classes: 4,
        informative: 10,
        class_sep: 2.0,
        seed: 3,
        ..Default::default()
    });
    let (train, test) = ds.split(0.25, 4);
    let full = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&train);
    let mut cfg = quick_config();
    cfg.hist.quantized_gradients = true;
    let quant = GpuTrainer::new(Device::rtx4090(), cfg).fit(&train);

    let a_full = accuracy(&full.predict(test.features()), &test.labels());
    let a_quant = accuracy(&quant.predict(test.features()), &test.labels());
    assert!(
        a_quant > a_full - 0.05,
        "bf16 accuracy {a_quant} fell too far from f32 {a_full}"
    );
}

#[test]
fn binary_and_json_serialization_agree_on_all_tasks() {
    for (seed, ds) in [
        (
            10u64,
            make_classification(&ClassificationSpec {
                instances: 300,
                features: 8,
                classes: 3,
                informative: 6,
                seed: 10,
                ..Default::default()
            }),
        ),
        (
            11,
            make_regression(&RegressionSpec {
                instances: 300,
                features: 8,
                outputs: 4,
                informative: 6,
                seed: 11,
                ..Default::default()
            }),
        ),
        (
            12,
            make_multilabel(&MultilabelSpec {
                instances: 300,
                features: 20,
                labels: 6,
                seed: 12,
                ..Default::default()
            }),
        ),
    ] {
        let model = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        let via_bin = serialize::from_bytes(&serialize::to_bytes(&model)).unwrap();
        let via_json = gbdt_mo::core::Model::from_json(&model.to_json()).unwrap();
        assert_eq!(
            via_bin.predict(ds.features()),
            via_json.predict(ds.features()),
            "formats disagree (seed {seed})"
        );
    }
}

#[test]
fn streams_and_compiled_serving_preserve_the_model() {
    let ds = make_classification(&ClassificationSpec {
        instances: 1000,
        features: 12,
        classes: 4,
        informative: 8,
        seed: 20,
        ..Default::default()
    });
    let serial = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
    let mut cfg = quick_config();
    cfg.streams = 4;
    let streamed = GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds);
    assert_eq!(
        serial.predict(ds.features()),
        streamed.predict(ds.features()),
        "streams must not change the model"
    );
    let compiled = CompiledEnsemble::compile(&streamed);
    assert_eq!(
        compiled.predict(ds.features()),
        streamed.predict(ds.features())
    );
}

#[test]
fn random_forest_slots_into_the_comparison() {
    let ds = make_classification(&ClassificationSpec {
        instances: 700,
        features: 14,
        classes: 3,
        informative: 10,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 30,
        ..Default::default()
    });
    let (train, test) = ds.split(0.3, 31);
    let forest = RandomForestTrainer::new(
        Device::rtx4090(),
        ForestConfig {
            num_trees: 25,
            max_depth: 6,
            max_bins: 32,
            ..ForestConfig::default()
        },
    )
    .fit_report(&train);
    let gbdt = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&train);

    let a_forest = accuracy(&forest.model.predict(test.features()), &test.labels());
    let a_gbdt = accuracy(&gbdt.predict(test.features()), &test.labels());
    assert!(a_forest > 0.7, "forest accuracy {a_forest}");
    assert!(a_gbdt > 0.7, "gbdt accuracy {a_gbdt}");
    assert!(forest.sim_seconds > 0.0);
}

#[test]
fn leaf_embedding_has_expected_shape_and_granularity() {
    let ds = make_classification(&ClassificationSpec {
        instances: 400,
        features: 10,
        classes: 3,
        informative: 8,
        seed: 40,
        ..Default::default()
    });
    let model = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
    let emb = apply_leaf_indices(&model.trees, ds.features());
    assert_eq!(emb.len(), ds.n() * model.num_trees());
    // A useful embedding distinguishes instances: more than one distinct
    // leaf per tree.
    for t in 0..model.num_trees() {
        let mut leaves: Vec<u32> = (0..ds.n())
            .map(|i| emb[i * model.num_trees() + t])
            .collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert!(leaves.len() > 1, "tree {t} routed everything to one leaf");
    }
}
