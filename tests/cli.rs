//! End-to-end tests of the `gbdtmo` command-line tool: synth → train →
//! evaluate → predict → info, exercising both model formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gbdtmo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gbdtmo"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gbdtmo_cli_test_{name}"))
}

#[test]
fn full_cli_workflow() {
    let data = tmp("data.libsvm");
    let model_json = tmp("model.json");
    let model_bin = tmp("model.bin");
    let preds = tmp("preds.csv");
    let data_s = data.to_str().unwrap();

    // synth
    let out = gbdtmo(&[
        "synth",
        "--dataset",
        "otto",
        "--scale",
        "0.01",
        "--seed",
        "3",
        "--out",
        data_s,
    ]);
    assert!(
        out.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.exists());

    let common = [
        "--data",
        data_s,
        "--task",
        "multiclass",
        "--outputs",
        "9",
        "--features",
        "93",
    ];

    // train (JSON model)
    let mut args = vec![
        "train",
        "--trees",
        "8",
        "--depth",
        "4",
        "--bins",
        "32",
        "--out",
        model_json.to_str().unwrap(),
    ];
    args.extend_from_slice(&common);
    let out = gbdtmo(&args);
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained 8 trees"), "stderr: {stderr}");

    // train (binary model)
    let mut args = vec![
        "train",
        "--trees",
        "8",
        "--depth",
        "4",
        "--bins",
        "32",
        "--out",
        model_bin.to_str().unwrap(),
    ];
    args.extend_from_slice(&common);
    assert!(gbdtmo(&args).status.success());
    let bin_size = std::fs::metadata(&model_bin).unwrap().len();
    let json_size = std::fs::metadata(&model_json).unwrap().len();
    assert!(bin_size < json_size, "binary {bin_size} ≥ json {json_size}");

    // evaluate: both formats must give identical output.
    let eval = |model: &str| -> String {
        let mut args = vec!["evaluate", "--model", model];
        args.extend_from_slice(&common);
        let out = gbdtmo(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let a = eval(model_json.to_str().unwrap());
    let b = eval(model_bin.to_str().unwrap());
    assert_eq!(a, b, "JSON and binary models must evaluate identically");
    assert!(a.contains("accuracy:"), "got: {a}");
    let acc: f64 = a
        .trim()
        .strip_prefix("accuracy:")
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(acc > 0.5, "train accuracy {acc}");

    // predict
    let mut args = vec![
        "predict",
        "--model",
        model_json.to_str().unwrap(),
        "--out",
        preds.to_str().unwrap(),
    ];
    args.extend_from_slice(&common);
    assert!(gbdtmo(&args).status.success());
    let csv = std::fs::read_to_string(&preds).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "y0,y1,y2,y3,y4,y5,y6,y7,y8");
    assert!(lines.len() > 300, "one prediction row per instance");

    // info
    let out = gbdtmo(&["info", "--model", model_json.to_str().unwrap()]);
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(info.contains("trees:       8"), "{info}");
    assert!(info.contains("outputs:     9"));

    for p in [data, model_json, model_bin, preds] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn helpful_errors() {
    // No args → usage on stdout via help path.
    let out = gbdtmo(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));

    // Unknown command fails with usage on stderr.
    let out = gbdtmo(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = gbdtmo(&["train", "--task", "multiclass"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data is required"));

    // Bad task value.
    let out = gbdtmo(&[
        "evaluate",
        "--model",
        "/nonexistent",
        "--data",
        "/nonexistent",
        "--task",
        "nope",
        "--outputs",
        "2",
        "--features",
        "2",
    ]);
    assert!(!out.status.success());

    // Missing file is a clean error, not a panic.
    let out = gbdtmo(&["info", "--model", "/nonexistent/model.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}
