//! Property-based tests over the data substrate: CSC round-trips,
//! binning semantics, packed-bin equivalence, partitioning.

use gbdt_mo::data::{BinCuts, BinnedDataset, CscMatrix, DenseMatrix};
use proptest::prelude::*;

/// A random small dense matrix with a controllable zero fraction.
fn dense_matrix() -> impl Strategy<Value = DenseMatrix> {
    (1usize..40, 1usize..8).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 7 => -100.0f32..100.0f32],
            rows * cols,
        )
        .prop_map(move |values| DenseMatrix::new(rows, cols, values))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csc_roundtrip_is_lossless(m in dense_matrix()) {
        let csc = CscMatrix::from_dense(&m);
        prop_assert_eq!(csc.to_dense(), m.clone());
        prop_assert_eq!(csc.nnz(), m.nnz());
    }

    #[test]
    fn csc_random_access_matches_dense(m in dense_matrix()) {
        let csc = CscMatrix::from_dense(&m);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert_eq!(csc.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn csc_col_pointers_are_consistent(m in dense_matrix()) {
        let csc = CscMatrix::from_dense(&m);
        let cp = csc.col_pointers();
        prop_assert_eq!(cp.len(), m.cols() + 1);
        prop_assert_eq!(cp[0], 0);
        prop_assert_eq!(*cp.last().unwrap(), csc.nnz());
        prop_assert!(cp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn binning_respects_threshold_semantics(
        m in dense_matrix(),
        bins in 2usize..64,
    ) {
        // b(v) ≤ b ⟺ v ≤ threshold(b): the exact property split
        // routing depends on.
        let cuts = BinCuts::from_matrix(&m, bins);
        for j in 0..m.cols() {
            for i in 0..m.rows() {
                let v = m.get(i, j);
                let bv = cuts.bin_value(j, v);
                prop_assert!((bv as usize) < cuts.num_bins(j));
                for b in 0..cuts.num_bins(j) as u8 {
                    prop_assert_eq!(bv <= b, v <= cuts.threshold(j, b));
                }
            }
        }
    }

    #[test]
    fn binning_is_monotone(m in dense_matrix()) {
        // Larger values never land in smaller bins.
        let cuts = BinCuts::from_matrix(&m, 32);
        for j in 0..m.cols() {
            let mut col = m.col(j);
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let bins: Vec<u8> = col.iter().map(|&v| cuts.bin_value(j, v)).collect();
            prop_assert!(bins.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn all_binned_views_agree(m in dense_matrix(), bins in 2usize..64) {
        // Dense, packed, and CSC-sparse binned views are one matrix.
        let ds = BinnedDataset::build(&m, bins);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let b = ds.bins.get(i, j);
                prop_assert_eq!(ds.packed.get(i, j), b);
                prop_assert_eq!(ds.sparse.get(i, j), b);
            }
        }
    }

    #[test]
    fn select_rows_then_get_matches(m in dense_matrix()) {
        let idx: Vec<usize> = (0..m.rows()).rev().collect();
        let sel = m.select_rows(&idx);
        for (new_i, &old_i) in idx.iter().enumerate() {
            for j in 0..m.cols() {
                prop_assert_eq!(sel.get(new_i, j), m.get(old_i, j));
            }
        }
    }

    #[test]
    fn split_indices_partition(n in 1usize..500, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let (train, test) = gbdt_mo::data::split::split_indices(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
