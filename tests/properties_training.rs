//! Property-based tests over the training pipeline's invariants:
//! histogram conservation, gain non-negativity, leaf partitioning,
//! prediction-mode equivalence.
#![allow(clippy::needless_range_loop)] // index math mirrors the formulas

use gbdt_mo::core::grad::{compute_gradients, Gradients};
use gbdt_mo::core::hist::{accumulate_dense, HistContext, NodeHistogram};
use gbdt_mo::core::loss::MseLoss;
use gbdt_mo::core::predict::{predict_raw, PredictMode};
use gbdt_mo::core::split::{find_best_split, SplitParams};
use gbdt_mo::core::{grow, HistOptions, TrainConfig};
use gbdt_mo::prelude::*;
use proptest::prelude::*;

/// Random small training problem: features, targets, an instance subset.
#[derive(Debug, Clone)]
struct Problem {
    n: usize,
    m: usize,
    d: usize,
    features: Vec<f32>,
    targets: Vec<f32>,
    subset: Vec<u32>,
}

fn problem() -> impl Strategy<Value = Problem> {
    (4usize..60, 1usize..5, 1usize..4).prop_flat_map(|(n, m, d)| {
        (
            proptest::collection::vec(-10.0f32..10.0, n * m),
            proptest::collection::vec(-5.0f32..5.0, n * d),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(features, targets, mask)| {
                let mut subset: Vec<u32> = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i as u32)
                    .collect();
                if subset.is_empty() {
                    subset.push(0);
                }
                Problem {
                    n,
                    m,
                    d,
                    features,
                    targets,
                    subset,
                }
            })
    })
}

fn setup(p: &Problem) -> (BinnedDataset, Gradients) {
    let features = gbdt_mo::data::DenseMatrix::new(p.n, p.m, p.features.clone());
    let binned = BinnedDataset::build(&features, 16);
    let device = Device::rtx4090();
    let scores = vec![0.0f32; p.n * p.d];
    let grads = compute_gradients(&device, &MseLoss, &scores, &p.targets, p.n, p.d);
    (binned, grads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_conserves_mass(p in problem()) {
        // Σ_bins hist(f, k, ·) == node totals, for every feature and
        // output — the conservation law split finding relies on.
        let (binned, grads) = setup(&p);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let ctx = HistContext {
            device: &device,
            data: &binned,
            grads: &grads,
            features: &features,
            bins: 16,
            opts: HistOptions::default(),
        };
        let mut hist = NodeHistogram::new(p.m, p.d, 16);
        accumulate_dense(&ctx, &p.subset, &mut hist);
        let (ng, nh) = grads.sums(&p.subset);
        for f in 0..p.m {
            let count: u32 = (0..16).map(|b| hist.counts[hist.cnt_index(f, b)]).sum();
            prop_assert_eq!(count as usize, p.subset.len());
            for k in 0..p.d {
                let sg: f64 = hist.g_segment(f, k).iter().sum();
                let sh: f64 = hist.h_segment(f, k).iter().sum();
                prop_assert!((sg - ng[k]).abs() < 1e-4, "g mass {} vs {}", sg, ng[k]);
                prop_assert!((sh - nh[k]).abs() < 1e-4, "h mass {} vs {}", sh, nh[k]);
            }
        }
    }

    #[test]
    fn split_gain_is_positive_and_children_valid(p in problem()) {
        let (binned, grads) = setup(&p);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let ctx = HistContext {
            device: &device,
            data: &binned,
            grads: &grads,
            features: &features,
            bins: 16,
            opts: HistOptions::default(),
        };
        let mut hist = NodeHistogram::new(p.m, p.d, 16);
        accumulate_dense(&ctx, &p.subset, &mut hist);
        let (ng, nh) = grads.sums(&p.subset);
        let params = SplitParams {
            lambda: 1.0,
            min_gain: 0.0,
            min_instances: 1,
            segments_c: 4.0,
        };
        if let Some(s) = find_best_split(
            &device, &hist, &features, &ng, &nh, p.subset.len() as u32, &params,
        ) {
            prop_assert!(s.gain > 0.0);
            prop_assert!(s.left_count >= 1);
            prop_assert!(s.right_count >= 1);
            prop_assert_eq!(
                (s.left_count + s.right_count) as usize,
                p.subset.len()
            );
            // Left sums bounded by node sums in the Hessian (h > 0).
            for k in 0..p.d {
                prop_assert!(s.left_h[k] <= nh[k] + 1e-9);
                prop_assert!(s.left_h[k] >= -1e-9);
            }
        }
    }

    #[test]
    fn grown_tree_partitions_instances(p in problem()) {
        let (binned, grads) = setup(&p);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let config = TrainConfig {
            num_trees: 1,
            max_depth: 3,
            max_bins: 16,
            min_instances: 1,
            ..TrainConfig::default()
        };
        let res = grow::grow_tree(&device, &binned, &grads, &config, &features);
        let mut seen = vec![false; p.n];
        for (instances, value) in &res.leaf_assignments {
            prop_assert_eq!(value.len(), p.d);
            for &i in instances {
                prop_assert!(!seen[i as usize], "instance {} in two leaves", i);
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(res.leaf_assignments.len(), res.tree.num_leaves());
        prop_assert!(res.tree.depth() <= 3);
    }

    #[test]
    fn leaf_routing_agrees_with_assignments(p in problem()) {
        // Instances assigned to a leaf during growth must route to that
        // same leaf when re-traversing by float thresholds.
        let (binned, grads) = setup(&p);
        let features_mx = gbdt_mo::data::DenseMatrix::new(p.n, p.m, p.features.clone());
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let config = TrainConfig {
            num_trees: 1,
            max_depth: 3,
            max_bins: 16,
            min_instances: 1,
            ..TrainConfig::default()
        };
        let res = grow::grow_tree(&device, &binned, &grads, &config, &features);
        for ((instances, _), &node) in res.leaf_assignments.iter().zip(&res.leaf_nodes) {
            for &i in instances {
                let routed = res.tree.leaf_for_row(features_mx.row(i as usize));
                prop_assert_eq!(routed, node, "instance {} routed elsewhere", i);
            }
        }
    }

    #[test]
    fn prediction_modes_agree(p in problem()) {
        let (binned, grads) = setup(&p);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let config = TrainConfig {
            num_trees: 1,
            max_depth: 3,
            max_bins: 16,
            min_instances: 1,
            ..TrainConfig::default()
        };
        let res = grow::grow_tree(&device, &binned, &grads, &config, &features);
        let features_mx = gbdt_mo::data::DenseMatrix::new(p.n, p.m, p.features);
        let base = vec![0.0f32; p.d];
        let trees = vec![res.tree];
        let a = predict_raw(&trees, &base, &features_mx, PredictMode::InstanceLevel);
        let b = predict_raw(&trees, &base, &features_mx, PredictMode::TreeLevel);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn one_boosting_step_never_increases_training_mse(p in problem()) {
        // With lr=1, λ≥0 and MSE, applying one tree's optimal leaf
        // values cannot increase the squared-error objective.
        let (binned, grads) = setup(&p);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..p.m as u32).collect();
        let config = TrainConfig {
            num_trees: 1,
            max_depth: 3,
            max_bins: 16,
            min_instances: 1,
            lambda: 0.0,
            min_gain: 1e-9,
            ..TrainConfig::default()
        };
        let res = grow::grow_tree(&device, &binned, &grads, &config, &features);
        let mut scores = vec![0.0f32; p.n * p.d];
        for (instances, value) in &res.leaf_assignments {
            for &i in instances {
                for k in 0..p.d {
                    scores[i as usize * p.d + k] += value[k];
                }
            }
        }
        let before: f64 = p.targets.iter().map(|&t| (t as f64).powi(2)).sum();
        let after: f64 = scores
            .iter()
            .zip(&p.targets)
            .map(|(&s, &t)| ((s - t) as f64).powi(2))
            .sum();
        prop_assert!(after <= before + 1e-6, "mse rose from {} to {}", before, after);
    }
}
