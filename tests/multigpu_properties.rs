//! Property-based tests of multi-GPU training: for random shapes,
//! device counts and strategies, the trained model must be bit-equal to
//! the single-device model, and simulated time must be positive and
//! barrier-consistent across the group.

use gbdt_mo::core::{MultiGpuStrategy, MultiGpuTrainer};
use gbdt_mo::prelude::*;
use proptest::prelude::*;

fn quick_config(trees: usize, depth: usize) -> TrainConfig {
    TrainConfig {
        num_trees: trees,
        max_depth: depth,
        max_bins: 16,
        min_instances: 3,
        ..TrainConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_device_count_and_strategy_is_exact(
        n in 60usize..240,
        m in 2usize..10,
        classes in 2usize..5,
        k in 1usize..6,
        strategy_pick in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let ds = make_classification(&ClassificationSpec {
            instances: n,
            features: m,
            classes,
            informative: (m / 2).max(1),
            seed,
            ..Default::default()
        });
        let cfg = quick_config(2, 3);
        let single = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
        let strategy = if strategy_pick {
            MultiGpuStrategy::FeatureParallel
        } else {
            MultiGpuStrategy::DataParallel
        };
        let trainer = MultiGpuTrainer::with_strategy(DeviceGroup::rtx4090s(k), cfg, strategy);
        let multi = trainer.fit(&ds);
        prop_assert_eq!(
            single.predict(ds.features()),
            multi.predict(ds.features()),
            "k={} strategy={:?}", k, strategy
        );
        // Bulk-synchronous group: after training all device clocks agree.
        let clocks: Vec<f64> = trainer
            .group()
            .devices()
            .iter()
            .map(|d| d.now_ns())
            .collect();
        for w in clocks.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-6, "clocks diverged: {:?}", clocks);
        }
        prop_assert!(clocks[0] > 0.0);
    }

    #[test]
    fn feature_partition_is_always_a_partition(m in 1usize..200, k in 1usize..16) {
        let parts = gbdt_mo::core::multigpu::partition_features(m, k);
        prop_assert_eq!(parts.len(), k);
        let mut covered = 0;
        let mut prev_end = 0;
        for &(lo, hi) in &parts {
            prop_assert_eq!(lo, prev_end);
            prop_assert!(hi >= lo);
            covered += hi - lo;
            prev_end = hi;
        }
        prop_assert_eq!(covered, m);
        // Balanced to within one feature.
        let sizes: Vec<usize> = parts.iter().map(|&(a, b)| b - a).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }
}
