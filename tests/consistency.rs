//! Cross-system consistency: the same algorithm executed on different
//! substrates (CPU dense, CPU sparse, single GPU, multi GPU) must
//! produce identical models, and every trainer must be deterministic.

use gbdt_mo::baselines::{CpuMoTrainer, CpuStorage};
use gbdt_mo::core::{Model, MultiGpuTrainer};
use gbdt_mo::prelude::*;

fn dataset(seed: u64) -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 700,
        features: 18,
        classes: 5,
        informative: 12,
        class_sep: 1.8,
        sparsity: 0.3,
        seed,
        ..Default::default()
    })
}

fn config() -> TrainConfig {
    TrainConfig {
        num_trees: 6,
        max_depth: 4,
        max_bins: 32,
        min_instances: 10,
        ..TrainConfig::default()
    }
}

#[test]
fn four_substrates_one_model() {
    let ds = dataset(1);
    let x = ds.features();

    let gpu = GpuTrainer::new(Device::rtx4090(), config()).fit(&ds);
    let reference = gpu.predict(x);

    let cpu_dense = CpuMoTrainer::new(config(), CpuStorage::Dense).fit(&ds);
    assert_eq!(
        cpu_dense.predict(x),
        reference,
        "CPU dense differs from GPU"
    );

    let cpu_sparse = CpuMoTrainer::new(config(), CpuStorage::Sparse).fit(&ds);
    let sparse_pred = cpu_sparse.predict(x);
    for (a, b) in sparse_pred.iter().zip(&reference) {
        assert!(
            (a - b).abs() < 1e-3,
            "CPU sparse differs from GPU beyond fp noise: {a} vs {b}"
        );
    }

    for k in [2usize, 3, 8] {
        let multi = MultiGpuTrainer::new(DeviceGroup::rtx4090s(k), config()).fit(&ds);
        assert_eq!(
            multi.predict(x),
            reference,
            "{k}-GPU model differs from single-GPU"
        );
    }
}

#[test]
fn histogram_methods_do_not_change_the_model() {
    // The three kernels are different *schedules* of the same
    // reduction; the trained model must be invariant.
    use gbdt_mo::core::HistogramMethod::*;
    let ds = dataset(2);
    let x = ds.features();
    let mut reference: Option<Vec<f32>> = None;
    for method in [Adaptive, GlobalMemory, SharedMemory, SortReduce] {
        let cfg = config().with_hist_method(method);
        let pred = GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds).predict(x);
        match &reference {
            None => reference = Some(pred),
            Some(r) => assert_eq!(&pred, r, "{method:?} changed the model"),
        }
    }
}

#[test]
fn warp_packing_and_subtraction_do_not_change_the_model() {
    let ds = dataset(3);
    let x = ds.features();
    let base = GpuTrainer::new(Device::rtx4090(), config())
        .fit(&ds)
        .predict(x);

    let mut c = config();
    c.hist.warp_packing = false;
    let unpacked = GpuTrainer::new(Device::rtx4090(), c).fit(&ds).predict(x);
    assert_eq!(unpacked, base, "bin packing is a layout change only");

    let mut c = config();
    c.hist.subtraction = true;
    let sub = GpuTrainer::new(Device::rtx4090(), c).fit(&ds).predict(x);
    for (a, b) in sub.iter().zip(&base) {
        assert!(
            (a - b).abs() < 1e-3,
            "subtraction drifted beyond fp noise: {a} vs {b}"
        );
    }
}

#[test]
fn training_is_deterministic_across_runs_and_devices() {
    let ds = dataset(4);
    let a = GpuTrainer::new(Device::rtx4090(), config()).fit(&ds);
    let b = GpuTrainer::new(Device::rtx4090(), config()).fit(&ds);
    assert_eq!(a.predict(ds.features()), b.predict(ds.features()));
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "serialized models must be identical"
    );
}

#[test]
fn serialization_roundtrip_preserves_predictions() {
    let ds = dataset(5);
    let model = GpuTrainer::new(Device::rtx4090(), config()).fit(&ds);
    let json = model.to_json();
    let back = Model::from_json(&json).expect("roundtrip");
    assert_eq!(model.predict(ds.features()), back.predict(ds.features()));
}

#[test]
fn simulated_time_is_deterministic() {
    let ds = dataset(6);
    let r1 = GpuTrainer::new(Device::rtx4090(), config()).fit_report(&ds);
    let r2 = GpuTrainer::new(Device::rtx4090(), config()).fit_report(&ds);
    assert_eq!(
        r1.sim_seconds.to_bits(),
        r2.sim_seconds.to_bits(),
        "cost accounting must be exactly reproducible"
    );
    assert_eq!(r1.sim.kernel_count, r2.sim.kernel_count);
}
