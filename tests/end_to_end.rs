//! End-to-end training quality across all three task types the paper
//! evaluates (Table 1's multiclass / multiregress / multilabel), on the
//! public API only.

use gbdt_mo::core::{loss::loss_for_task, rmse};
use gbdt_mo::prelude::*;

fn quick_config(trees: usize) -> TrainConfig {
    TrainConfig {
        num_trees: trees,
        max_depth: 5,
        max_bins: 32,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

#[test]
fn multiclass_end_to_end() {
    let ds = make_classification(&ClassificationSpec {
        instances: 1200,
        features: 16,
        classes: 6,
        informative: 12,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 100,
        ..Default::default()
    });
    let (train, test) = ds.split(0.25, 1);
    let model = GpuTrainer::new(Device::rtx4090(), quick_config(15)).fit(&train);
    let acc = accuracy(&model.predict(test.features()), &test.labels());
    assert!(acc > 0.8, "6-class accuracy only {acc}");
    // One ensemble serves all 6 classes — the GBDT-MO property.
    assert_eq!(model.num_trees(), 15);
    assert_eq!(model.d, 6);
}

#[test]
fn multiregression_end_to_end() {
    let ds = make_regression(&RegressionSpec {
        instances: 1500,
        features: 12,
        outputs: 6,
        informative: 8,
        noise: 0.05,
        seed: 101,
        ..Default::default()
    });
    let (train, test) = ds.split(0.25, 2);
    let model = GpuTrainer::new(Device::rtx4090(), quick_config(25)).fit(&train);
    let e = rmse(&model.predict(test.features()), test.targets());

    // Against the constant (train-mean) predictor.
    let base = gbdt_mo::core::trainer::base_scores(&train);
    let mean_pred: Vec<f32> = (0..test.n()).flat_map(|_| base.clone()).collect();
    let e0 = rmse(&mean_pred, test.targets());
    assert!(e < e0 * 0.7, "rmse {e} vs mean baseline {e0}");
}

#[test]
fn multilabel_end_to_end() {
    let ds = make_multilabel(&MultilabelSpec {
        instances: 1200,
        features: 40,
        labels: 12,
        avg_labels: 3.0,
        features_per_label: 6,
        seed: 102,
        ..Default::default()
    });
    let (train, test) = ds.split(0.25, 3);
    let model = GpuTrainer::new(Device::rtx4090(), quick_config(20)).fit(&train);

    // Probability RMSE must beat the prior-rate predictor.
    let loss = loss_for_task(Task::MultiLabel);
    let mut probs = model.predict(test.features());
    for row in probs.chunks_mut(test.d()) {
        loss.transform_row(row);
    }
    let e = rmse(&probs, test.targets());
    let rate: f32 = train.targets().iter().sum::<f32>() / train.targets().len() as f32;
    let prior: Vec<f32> = vec![rate; test.targets().len()];
    let e0 = rmse(&prior, test.targets());
    assert!(e < e0, "prob rmse {e} vs prior {e0}");
}

#[test]
fn boosting_monotonically_improves_training_fit() {
    let ds = make_classification(&ClassificationSpec {
        instances: 600,
        features: 10,
        classes: 4,
        informative: 8,
        seed: 103,
        ..Default::default()
    });
    let labels = ds.labels();
    let mut last = 0.0;
    for trees in [1, 5, 15, 30] {
        let model = GpuTrainer::new(Device::rtx4090(), quick_config(trees)).fit(&ds);
        let acc = accuracy(&model.predict(ds.features()), &labels);
        assert!(
            acc + 1e-9 >= last,
            "training accuracy regressed: {acc} < {last} at {trees} trees"
        );
        last = acc;
    }
    assert!(
        last > 0.9,
        "30 trees should nearly fit the training set: {last}"
    );
}

#[test]
fn learning_rate_shrinks_leaf_magnitudes() {
    let ds = make_regression(&RegressionSpec {
        instances: 500,
        features: 8,
        outputs: 2,
        informative: 6,
        seed: 104,
        ..Default::default()
    });
    let mut c_full = quick_config(1);
    c_full.learning_rate = 1.0;
    let mut c_small = quick_config(1);
    c_small.learning_rate = 0.1;
    let m_full = GpuTrainer::new(Device::rtx4090(), c_full).fit(&ds);
    let m_small = GpuTrainer::new(Device::rtx4090(), c_small).fit(&ds);

    let sum_abs = |m: &gbdt_mo::core::Model| -> f64 {
        m.trees
            .iter()
            .flat_map(|t| t.nodes().iter())
            .filter_map(|n| match n {
                gbdt_mo::core::Node::Leaf { value } => {
                    Some(value.iter().map(|v| v.abs() as f64).sum::<f64>())
                }
                _ => None,
            })
            .sum()
    };
    let full = sum_abs(&m_full);
    let small = sum_abs(&m_small);
    assert!(
        (small - full * 0.1).abs() < full * 0.02,
        "lr=0.1 leaves ({small}) should be 10% of lr=1.0 leaves ({full})"
    );
}

#[test]
fn every_paper_dataset_standin_trains() {
    // Smoke the full Table 1 inventory through the public pipeline.
    for ds in gbdt_mo::data::PAPER_DATASETS {
        let data = ds.generate(0.01, 30, 12, 7);
        let (train, test) = data.split(0.2, 8);
        let model = GpuTrainer::new(Device::rtx4090(), quick_config(3)).fit(&train);
        let scores = model.predict(test.features());
        assert_eq!(scores.len(), test.n() * test.d());
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{:?} produced non-finite scores",
            ds
        );
    }
}
