//! The histogram-building trade-off space (paper §3.3 / Fig. 6a).
//!
//! Builds one node histogram with each strategy at several node sizes
//! and prints the simulated kernel time, showing why the adaptive
//! selector switches methods across training stages: shared memory wins
//! on big contended nodes, global atomics win on small deep nodes, and
//! sort-and-reduce pays for its contention-freedom.
//!
//! ```text
//! cargo run --release --example histogram_methods
//! ```

use gbdt_mo::core::grad::compute_gradients;
use gbdt_mo::core::hist::{adaptive, HistContext};
use gbdt_mo::core::loss::MseLoss;
use gbdt_mo::core::HistOptions;
use gbdt_mo::prelude::*;

fn main() {
    // A sparse multi-output workload (zero-heavy bins → atomic
    // contention, like the paper's Delicious / NUS-WIDE).
    let dataset = make_regression(&RegressionSpec {
        instances: 50_000,
        features: 64,
        outputs: 16,
        informative: 32,
        sparsity: 0.7,
        seed: 5,
        ..Default::default()
    });
    let binned = BinnedDataset::build(dataset.features(), 256);
    let device = Device::rtx4090();
    let scores = vec![0.0f32; dataset.n() * dataset.d()];
    let grads = compute_gradients(
        &device,
        &MseLoss,
        &scores,
        dataset.targets(),
        dataset.n(),
        dataset.d(),
    );
    let features: Vec<u32> = (0..dataset.m() as u32).collect();
    let ctx = HistContext {
        device: &device,
        data: &binned,
        grads: &grads,
        features: &features,
        bins: 256,
        opts: HistOptions::default(),
    };

    println!(
        "predicted per-node histogram cost, {} features × 256 bins × {} outputs:\n",
        dataset.m(),
        dataset.d()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}   adaptive picks",
        "node size", "gmem", "smem", "sort-reduce"
    );
    println!("{}", "-".repeat(72));
    for node_size in [100usize, 1_000, 5_000, 20_000, 50_000] {
        let costs = adaptive::predict_costs(&ctx, node_size);
        println!(
            "{:<12} {:>10.1}µs {:>10.1}µs {:>10.1}µs   {:?}",
            node_size,
            costs.gmem_ns / 1e3,
            costs.smem_ns / 1e3,
            costs.sort_ns / 1e3,
            costs.best()
        );
    }

    println!(
        "\nThe crossover is the paper's \"training stage\" dependence: early\n\
         levels hold large contended nodes (shared memory wins); deep levels\n\
         hold many small nodes where the shared-memory flush no longer pays."
    );
}
