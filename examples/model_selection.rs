//! Model selection and deployment workflow: cross-validation, early
//! stopping, sampling regularizers (stochastic GBM + GOSS), quantized
//! gradients, feature importance, and compiled serving — the extensions
//! a production user layers on top of the paper's training system.
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

use gbdt_mo::core::compiled::CompiledEnsemble;
use gbdt_mo::core::config::GossConfig;
use gbdt_mo::core::cv::cross_validate;
use gbdt_mo::core::importance::top_features;
use gbdt_mo::core::memory::{estimate_training_bytes, human};
use gbdt_mo::prelude::*;

fn main() {
    let dataset = make_classification(&ClassificationSpec {
        instances: 2_000,
        features: 24,
        classes: 5,
        informative: 10,
        class_sep: 1.6,
        flip_y: 0.08, // noisy labels: regularization has something to do
        seed: 15,
        ..Default::default()
    });
    let (train, test) = dataset.split(0.25, 2);

    // --- 1. cross-validate a few configurations ------------------------
    println!("== 3-fold cross-validation ==");
    let candidates: Vec<(&str, TrainConfig)> = vec![
        (
            "plain, 20 trees",
            TrainConfig {
                num_trees: 20,
                max_depth: 5,
                max_bins: 64,
                learning_rate: 0.3,
                ..TrainConfig::default()
            },
        ),
        (
            "subsample 0.7 + colsample 0.8",
            TrainConfig {
                num_trees: 20,
                max_depth: 5,
                max_bins: 64,
                learning_rate: 0.3,
                subsample: 0.7,
                colsample_bytree: 0.8,
                ..TrainConfig::default()
            },
        ),
        (
            "GOSS (0.2/0.1)",
            TrainConfig {
                num_trees: 20,
                max_depth: 5,
                max_bins: 64,
                learning_rate: 0.3,
                goss: Some(GossConfig::default_rates()),
                ..TrainConfig::default()
            },
        ),
    ];
    let mut best = (0usize, 0.0f64);
    for (i, (name, cfg)) in candidates.iter().enumerate() {
        let r = cross_validate(&train, cfg, 3, 7);
        println!(
            "  {name:<32} {}: {:.3} ± {:.3}",
            r.metric_name, r.mean, r.std
        );
        if r.mean > best.1 {
            best = (i, r.mean);
        }
    }
    let (best_name, best_cfg) = &candidates[best.0];
    println!("  → selected: {best_name}");

    // --- 2. refit with early stopping on a validation split ------------
    let (fit_train, fit_valid) = train.split(0.25, 3);
    let mut cfg = best_cfg.clone();
    cfg.num_trees = 60;
    let r = GpuTrainer::new(Device::rtx4090(), cfg.clone())
        .fit_with_validation(&fit_train, &fit_valid, 5);
    println!(
        "\n== early stopping == best iteration {} of {} evaluated (valid loss {:.4})",
        r.best_iteration + 1,
        r.history.len(),
        r.history[r.best_iteration]
    );
    let model = r.report.model;

    // --- 3. memory: would the full run fit the device? -----------------
    let est = estimate_training_bytes(fit_train.n(), fit_train.m(), fit_train.d(), &cfg);
    println!(
        "estimated device footprint: {} (histograms {})",
        est.total_human(),
        human(est.histogram_bytes)
    );

    // --- 4. interpretability -------------------------------------------
    println!("\n== top features by split count ==");
    for (f, c) in top_features(&model, train.m(), 5) {
        println!("  feature {f:>2}: {c} splits");
    }

    // --- 5. compile for serving ----------------------------------------
    let compiled = CompiledEnsemble::compile(&model);
    let acc = accuracy(&compiled.predict(test.features()), &test.labels());
    assert_eq!(
        compiled.predict(test.features()),
        model.predict(test.features()),
        "compiled ensemble must match the interpreter"
    );
    println!(
        "\n== serving == compiled {} trees into {} — test accuracy {:.1}%",
        compiled.num_trees(),
        human(compiled.memory_bytes()),
        100.0 * acc
    );
}
