//! Quickstart: train a multi-output GBDT on a simulated GPU and inspect
//! the timing breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gbdt_mo::prelude::*;

fn main() {
    // A 3-class problem with 2,000 instances and 20 features.
    let dataset = make_classification(&ClassificationSpec {
        instances: 2_000,
        features: 20,
        classes: 3,
        informative: 12,
        class_sep: 1.8,
        seed: 7,
        ..Default::default()
    });
    let (train, test) = dataset.split(0.2, 42);
    println!(
        "dataset: {} train / {} test instances, {} features, {} outputs",
        train.n(),
        test.n(),
        train.m(),
        train.d()
    );

    // One simulated RTX 4090 and a scaled-down configuration (the
    // paper's defaults are 100 trees of depth 7 with 256 bins).
    let device = Device::rtx4090();
    let config = TrainConfig {
        num_trees: 30,
        max_depth: 5,
        max_bins: 64,
        ..TrainConfig::default()
    };
    let trainer = GpuTrainer::new(device, config);
    let report = trainer.fit_report(&train);

    let acc = accuracy(&report.model.predict(test.features()), &test.labels());
    println!("\ntest accuracy: {:.1}%", 100.0 * acc);
    println!(
        "model: {} trees, {} leaves, ~{} KiB",
        report.model.num_trees(),
        report.model.num_leaves(),
        report.model.memory_bytes() / 1024
    );

    println!(
        "\nsimulated training time: {:.3} ms (host took {:.0} ms to simulate)",
        report.sim_seconds * 1e3,
        report.host_seconds * 1e3
    );
    println!("phase breakdown (the paper's Fig. 2 pipeline):");
    print!("{}", report.sim.table());
    println!(
        "histogram building consumed {:.1}% of training — the bottleneck \
         the paper's §3.3 optimizations target",
        100.0 * report.histogram_fraction()
    );

    println!("\nhistogram methods chosen by the adaptive selector:");
    for (method, nodes) in &report.hist_methods {
        println!("  {method:?}: {nodes} nodes");
    }
}
