//! Custom objectives and shape constraints — the paper's §3.1.1
//! flexibility ("designed to accommodate user-defined loss functions")
//! in practice: robust Huber regression, an asymmetric user-defined
//! loss, and monotone constraints.
//!
//! ```text
//! cargo run --release --example custom_objectives
//! ```

use gbdt_mo::core::loss::{CustomLoss, HuberLoss};
use gbdt_mo::core::{rmse, GpuTrainer, TrainConfig};
use gbdt_mo::prelude::*;

fn main() {
    // A pricing-style problem: outputs grow with feature 0 (say,
    // square meters), and the targets carry heavy outliers.
    let base = make_regression(&RegressionSpec {
        instances: 2_000,
        features: 10,
        outputs: 3,
        informative: 8,
        noise: 0.1,
        seed: 77,
        ..Default::default()
    });
    // Inject gross outliers into 2% of target entries.
    let mut targets = base.targets().to_vec();
    for (i, t) in targets.iter_mut().enumerate() {
        if i % 50 == 0 {
            *t += 40.0;
        }
    }
    let ds = Dataset::new(
        base.features().clone(),
        targets,
        base.d(),
        Task::MultiRegression,
    );
    let (train, test) = ds.split(0.25, 1);
    let clean_test_targets: Vec<f32> = {
        // Evaluate against the *clean* signal: re-generate and take the
        // same split so outliers don't pollute the metric.
        let (_, clean_test) = base.split(0.25, 1);
        clean_test.targets().to_vec()
    };

    let config = TrainConfig {
        num_trees: 60,
        max_depth: 5,
        max_bins: 64,
        learning_rate: 0.3,
        lambda: 0.1,
        ..TrainConfig::default()
    };

    println!("== robust regression under 2% gross outliers ==");
    let mse_model = GpuTrainer::new(Device::rtx4090(), config.clone()).fit(&train);
    let e_mse = rmse(&mse_model.predict(test.features()), &clean_test_targets);
    println!("  MSE loss (paper's demo loss): clean-signal RMSE {e_mse:.4}");

    let huber = HuberLoss::new(3.0);
    let huber_model = GpuTrainer::new(Device::rtx4090(), config.clone())
        .fit_with_loss(&train, &huber)
        .model;
    let e_huber = rmse(&huber_model.predict(test.features()), &clean_test_targets);
    println!("  pseudo-Huber (δ=3):           clean-signal RMSE {e_huber:.4}");
    if e_huber < e_mse {
        println!("  → Huber shrugs off the outliers that drag MSE around");
    }

    // --- a user-defined asymmetric objective ---------------------------
    let asymmetric = CustomLoss::new(
        "under-prediction-averse",
        |scores, targets, g, h| {
            for k in 0..scores.len() {
                let r = scores[k] - targets[k];
                let w = if r < 0.0 { 4.0 } else { 1.0 };
                g[k] = 2.0 * w * r;
                h[k] = 2.0 * w;
            }
        },
        |scores, targets| {
            scores
                .iter()
                .zip(targets)
                .map(|(&s, &t)| {
                    let r = (s - t) as f64;
                    (if r < 0.0 { 4.0 } else { 1.0 }) * r * r
                })
                .sum()
        },
        6.0,
    );
    let asym_model = GpuTrainer::new(Device::rtx4090(), config.clone())
        .fit_with_loss(&train, &asymmetric)
        .model;
    let under = |m: &gbdt_mo::core::Model| {
        let p = m.predict(test.features());
        p.iter().zip(test.targets()).filter(|(s, t)| s < t).count() as f64 / p.len() as f64
    };
    println!("\n== asymmetric objective (under-prediction 4× penalized) ==");
    println!(
        "  symmetric model under-predicts {:.1}% of entries",
        100.0 * under(&mse_model)
    );
    println!(
        "  asymmetric model under-predicts {:.1}%",
        100.0 * under(&asym_model)
    );

    // --- monotone constraint on feature 0 ------------------------------
    let mut mono_cfg = config;
    mono_cfg.monotone_constraints = {
        let mut c = vec![0i8; train.m()];
        c[0] = 1;
        c
    };
    let mono_model = GpuTrainer::new(Device::rtx4090(), mono_cfg).fit(&train);
    // Probe: sweep feature 0 on a fixed row and check output 0 rises.
    let mut probe = test.features().row(0).to_vec();
    let mut last = f32::NEG_INFINITY;
    let mut monotone = true;
    for step in -20..=20 {
        probe[0] = step as f32 * 0.2;
        let x = gbdt_mo::data::DenseMatrix::from_rows(&[probe.clone()]);
        let y = mono_model.predict(&x)[0];
        if y < last - 1e-6 {
            monotone = false;
        }
        last = y;
    }
    println!("\n== monotone constraint (+1 on feature 0) ==");
    println!(
        "  prediction sweep along feature 0 is {}",
        if monotone {
            "non-decreasing ✓"
        } else {
            "NOT monotone ✗"
        }
    );
    assert!(monotone);
}
