//! Multilabel document tagging — a Delicious-like workload (the paper's
//! intro motivates exactly this: hundreds of correlated labels where
//! per-label ensembles are prohibitively expensive).
//!
//! Trains GBDT-MO (one tree ensemble, 60-dimensional leaves) against a
//! per-label GBDT-SO baseline and a SketchBoost-style approximation, and
//! compares model size, simulated training time and tagging quality.
//!
//! ```text
//! cargo run --release --example multilabel_tagging
//! ```

use gbdt_mo::baselines::{GbdtSoTrainer, GrowthPolicy, SketchBoostTrainer, SketchStrategy};
use gbdt_mo::core::{loss::loss_for_task, rmse};
use gbdt_mo::prelude::*;

fn main() {
    // ~Delicious shape, scaled: sparse bag-of-words features, 60 labels.
    let dataset = make_multilabel(&MultilabelSpec {
        instances: 1_500,
        features: 120,
        labels: 60,
        avg_labels: 4.0,
        features_per_label: 10,
        sparsity: 0.3,
        seed: 11,
    });
    let (train, test) = dataset.split(0.2, 1);
    println!(
        "tagging corpus: {} docs, {} term features ({}% zeros), {} labels\n",
        dataset.n(),
        dataset.m(),
        (100.0 * dataset.sparsity()) as u32,
        dataset.d()
    );

    let config = TrainConfig {
        num_trees: 15,
        max_depth: 5,
        max_bins: 64,
        ..TrainConfig::default()
    };

    // Probability-RMSE against the 0/1 label matrix (the metric family
    // the paper reports for Delicious / NUS-WIDE).
    let prob_rmse = |scores: &[f32]| {
        let loss = loss_for_task(Task::MultiLabel);
        let mut probs = scores.to_vec();
        for row in probs.chunks_mut(test.d()) {
            loss.transform_row(row);
        }
        rmse(&probs, test.targets())
    };

    // --- GBDT-MO: one ensemble, multi-dimensional leaves --------------
    let mo = GpuTrainer::new(Device::rtx4090(), config.clone()).fit_report(&train);
    let mo_rmse = prob_rmse(&mo.model.predict(test.features()));

    // --- GBDT-SO: one ensemble per label -------------------------------
    let so = GbdtSoTrainer::new(Device::rtx4090(), config.clone(), GrowthPolicy::LevelWise)
        .fit_report(&train);
    let so_rmse = prob_rmse(&so.model.predict(test.features()));

    // --- SketchBoost: split search in a 5-dim sketch -------------------
    let sk = SketchBoostTrainer::new(Device::rtx4090(), config, SketchStrategy::TopOutputs, 5)
        .fit_report(&train);
    let sk_rmse = prob_rmse(&sk.model.predict(test.features()));

    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "system", "trees", "sim time", "prob RMSE"
    );
    println!("{}", "-".repeat(48));
    println!(
        "{:<12} {:>10} {:>9.2}ms {:>12.4}",
        "GBDT-MO",
        mo.model.num_trees(),
        mo.sim_seconds * 1e3,
        mo_rmse
    );
    println!(
        "{:<12} {:>10} {:>9.2}ms {:>12.4}",
        "GBDT-SO",
        so.model.num_trees(),
        so.sim_seconds * 1e3,
        so_rmse
    );
    println!(
        "{:<12} {:>10} {:>9.2}ms {:>12.4}",
        "SketchBoost",
        sk.model.num_trees(),
        sk.sim_seconds * 1e3,
        sk_rmse
    );
    println!(
        "\nGBDT-SO needs {}× the trees of GBDT-MO for the same rounds — the\n\
         model-complexity gap of the paper's Fig. 1.",
        so.model.num_trees() / mo.model.num_trees()
    );
}
