//! Train, serialize, reload and serve a multi-output model — the
//! deployment loop a downstream user of the library runs.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use gbdt_mo::core::{predict::PredictMode, rmse, Model};
use gbdt_mo::prelude::*;

fn main() {
    // Multi-step traffic-style forecasting: 8 correlated regression
    // outputs (one of the paper's motivating applications).
    let dataset = make_regression(&RegressionSpec {
        instances: 3_000,
        features: 24,
        outputs: 8,
        informative: 16,
        noise: 0.1,
        seed: 21,
        ..Default::default()
    });
    let (train, test) = dataset.split(0.25, 4);

    let config = TrainConfig {
        num_trees: 25,
        max_depth: 5,
        max_bins: 64,
        learning_rate: 0.5,
        ..TrainConfig::default()
    };
    let model = GpuTrainer::new(Device::rtx4090(), config).fit(&train);
    let before = rmse(&model.predict(test.features()), test.targets());
    println!(
        "trained: {} trees, test RMSE {before:.4}",
        model.num_trees()
    );

    // --- persist ------------------------------------------------------
    let json = model.to_json();
    println!("serialized model: {} KiB of JSON", json.len() / 1024);
    let path = std::env::temp_dir().join("gbdt_mo_model.json");
    std::fs::write(&path, &json).expect("write model");

    // --- reload & verify ---------------------------------------------
    let reloaded = Model::from_json(&std::fs::read_to_string(&path).expect("read model"))
        .expect("parse model");
    let after = rmse(&reloaded.predict(test.features()), test.targets());
    assert_eq!(before, after, "reloaded model must predict identically");
    println!("reloaded from {} — predictions identical", path.display());

    // --- serve with both inference modes (paper §3.4.2) ---------------
    let a = gbdt_mo::core::predict::predict_raw(
        &reloaded.trees,
        &reloaded.base,
        test.features(),
        PredictMode::InstanceLevel,
    );
    let b = gbdt_mo::core::predict::predict_raw(
        &reloaded.trees,
        &reloaded.base,
        test.features(),
        PredictMode::TreeLevel,
    );
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    println!(
        "instance-level vs tree-level inference agree to {max_diff:.1e} \
         across {} predictions",
        a.len()
    );
}
