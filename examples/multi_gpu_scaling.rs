//! Multi-GPU feature-parallel scaling (paper §3.4.2 / Table 2).
//!
//! Trains the same high-dimensional model on 1–8 simulated RTX 4090s,
//! showing how the histogram-building bottleneck divides across devices
//! while per-level collectives and barrier idle time bound the speedup.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use gbdt_mo::prelude::*;

fn main() {
    // Wide data so feature partitioning has something to divide.
    let dataset = make_classification(&ClassificationSpec {
        instances: 8_000,
        features: 96,
        classes: 24,
        informative: 48,
        class_sep: 1.6,
        sparsity: 0.4,
        seed: 3,
        ..Default::default()
    });
    let (train, test) = dataset.split(0.2, 9);
    println!(
        "workload: {} × {} features × {} classes\n",
        train.n(),
        train.m(),
        train.d()
    );

    let config = TrainConfig {
        num_trees: 10,
        max_depth: 5,
        max_bins: 64,
        ..TrainConfig::default()
    };

    println!(
        "{:<6} {:>12} {:>9} {:>12} {:>12} {:>10}",
        "GPUs", "sim time", "speedup", "hist share", "comm share", "accuracy"
    );
    println!("{}", "-".repeat(66));
    let mut t1 = None;
    for k in [1usize, 2, 4, 8] {
        let group = DeviceGroup::rtx4090s(k);
        let trainer = gbdt_mo::core::MultiGpuTrainer::new(group, config.clone());
        let report = trainer.fit_report(&train);
        let t = report.sim_seconds;
        let t1v = *t1.get_or_insert(t);
        let acc = gbdt_mo::core::accuracy(&report.model.predict(test.features()), &test.labels());
        println!(
            "{:<6} {:>10.2}ms {:>8.2}× {:>11.1}% {:>11.1}% {:>9.1}%",
            k,
            t * 1e3,
            t1v / t,
            100.0 * report.sim.fraction(Phase::Histogram),
            100.0 * (report.sim.fraction(Phase::Comm) + report.sim.fraction(Phase::Idle)),
            100.0 * acc
        );
    }
    println!(
        "\nAll device counts produce bit-identical models: feature-parallel\n\
         training is an exact decomposition, not an approximation."
    );
}
