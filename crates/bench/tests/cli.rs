//! End-to-end tests of the `repro` binary's argument handling.
//!
//! The ISSUE requires that bad invocations exit nonzero with a usage
//! message instead of panicking; these tests exercise the compiled
//! binary itself (via `CARGO_BIN_EXE_repro`) so they also cover the
//! `main`-side wiring, not just `parse_args`.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_flag_exits_nonzero_with_usage() {
    let out = repro().args(["fig4", "--bogus"]).output().unwrap();
    assert!(!out.status.success(), "expected nonzero exit");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "stderr: {stderr}");
    assert!(stderr.contains("--bogus"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn missing_value_exits_nonzero_with_usage() {
    let out = repro().args(["fig4", "--trees"]).output().unwrap();
    assert!(!out.status.success(), "expected nonzero exit");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value"), "stderr: {stderr}");
    assert!(stderr.contains("--trees"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn unparsable_value_exits_nonzero_with_usage() {
    let out = repro().args(["fig4", "--depth", "deep"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = repro().arg("fig99").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fig99"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = repro().arg("--help").output().unwrap();
    assert!(out.status.success(), "help should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage:"), "stdout: {stdout}");
    assert!(stdout.contains("--trees"), "stdout: {stdout}");
}
