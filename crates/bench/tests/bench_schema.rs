//! Golden-snapshot tests for the `BENCH_repro.json` schema.
//!
//! The committed fixture pins the exact serialized byte stream of a
//! deterministic report. The field-name tests pin the schema shape to
//! [`BENCH_SCHEMA_VERSION`]: changing any serialized field name or
//! order without bumping the version fails here — that is the bump
//! rule, enforced.

use gbdt_bench::report::{diff_gate, make_record, BenchReport, BenchSetup, BENCH_SCHEMA_VERSION};
use gbdt_core::config::HistogramMethod;
use gpusim::{Device, Phase};
use serde::Serialize;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/bench_report.json"
);

/// A deterministic two-record report built from fixed ledger charges
/// (no training, no host timing — `host_seconds` is pinned).
fn golden_report() -> BenchReport {
    let device = Device::rtx4090();
    device.charge_ns("binning", Phase::Binning, 500.0);
    device.charge_ns("hist", Phase::Histogram, 3000.0);
    device.charge_ns("split", Phase::SplitEval, 750.5);
    let sim = device.summary();
    let r0 = make_record(
        "MNIST",
        HistogramMethod::SharedMemory,
        "none",
        &sim,
        0.125,
        "accuracy%",
        91.25,
    );

    device.reset();
    device.charge_ns("sketch", Phase::Sketch, 120.0);
    device.charge_ns("hist", Phase::Histogram, 1000.0);
    device.charge_ns("comm", Phase::Comm, 250.0);
    let sim = device.summary();
    let r1 = make_record(
        "RF1",
        HistogramMethod::SortReduce,
        "top4",
        &sim,
        0.5,
        "rmse",
        1.75,
    );

    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        device: "SimRTX4090".to_string(),
        setup: BenchSetup {
            trees: 3,
            depth: 4,
            bins: 32,
            scale: 0.25,
            seed: 42,
            smoke: true,
            streams: 1,
        },
        records: vec![r0, r1],
    }
}

/// Byte-identical to the committed fixture. Regenerate (deliberately)
/// with `UPDATE_GOLDEN=1 cargo test -p gbdt-bench --test bench_schema`
/// and bump `BENCH_SCHEMA_VERSION` if the layout moved.
#[test]
fn bench_json_matches_golden_fixture() {
    let json = golden_report().to_json();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture: run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, want,
        "BENCH json drifted from tests/golden/bench_report.json; if \
         intentional, bump BENCH_SCHEMA_VERSION and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

/// The serialized field names are pinned to schema version 5 (v4 added
/// `overlap_saved_ns` to records and `streams` to the setup for the
/// multi-stream timeline; v5 added the `dropped_records` /
/// `negative_charges` ledger health counters to records).
#[test]
fn bench_schema_field_names_are_pinned_to_version() {
    assert_eq!(
        BENCH_SCHEMA_VERSION, 5,
        "schema version changed: update the pinned field lists below"
    );
    let v = golden_report().to_value();
    let obj = v.as_object().expect("report object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["schema_version", "device", "setup", "records"],
        "BenchReport fields changed — bump BENCH_SCHEMA_VERSION"
    );

    let setup = obj
        .iter()
        .find(|(k, _)| k == "setup")
        .and_then(|(_, v)| v.as_object())
        .expect("setup object");
    let skeys: Vec<&str> = setup.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        skeys,
        ["trees", "depth", "bins", "scale", "seed", "smoke", "streams"],
        "BenchSetup fields changed — bump BENCH_SCHEMA_VERSION"
    );

    let records = obj
        .iter()
        .find(|(k, _)| k == "records")
        .and_then(|(_, v)| v.as_array())
        .expect("records array");
    let r0 = records[0].as_object().expect("record object");
    let rkeys: Vec<&str> = r0.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        rkeys,
        [
            "dataset",
            "hist_method",
            "sketch",
            "metric_name",
            "metric",
            "sim_seconds",
            "host_seconds",
            "hist_share",
            "phase_ns",
            "kernel_count",
            "overlap_saved_ns",
            "dropped_records",
            "negative_charges",
        ],
        "BenchRecord fields changed — bump BENCH_SCHEMA_VERSION"
    );

    // Every Phase variant appears as a phase_ns key in every record —
    // the same invariant repo-lint checks textually.
    let phases = r0
        .iter()
        .find(|(k, _)| k == "phase_ns")
        .and_then(|(_, v)| v.as_object())
        .expect("phase_ns object");
    assert_eq!(phases.len(), Phase::ALL.len());
    for p in Phase::ALL {
        assert!(
            phases.iter().any(|(k, _)| k == p.name()),
            "phase {p:?} missing from phase_ns"
        );
    }
}

/// from_json is a strict validator: wrong version, missing fields, and
/// missing phase keys are all parse errors, not silent defaults.
#[test]
fn from_json_rejects_schema_violations() {
    let good = golden_report().to_json();
    assert!(BenchReport::from_json(&good).is_ok());

    // Version bump without a reader upgrade is rejected.
    let bumped = good.replace("\"schema_version\":5", "\"schema_version\":6");
    let err = BenchReport::from_json(&bumped).expect_err("must reject");
    assert!(err.contains("schema_version"), "{err}");

    // Dropping a required field is rejected by the deserializer.
    let missing = good.replace("\"hist_share\":", "\"hist_share_renamed\":");
    assert!(BenchReport::from_json(&missing).is_err());

    // Dropping a phase key is rejected by the validator.
    let no_phase = good.replace("\"Idle\":0.0,", "");
    let err = BenchReport::from_json(&no_phase).expect_err("must reject");
    assert!(err.contains("Idle"), "{err}");

    // Garbage is rejected outright.
    assert!(BenchReport::from_json("{not json").is_err());
}

/// Round-trip stability: parse(to_json(r)) == r byte-for-byte when
/// re-serialized — the fixture can be diffed across runs.
#[test]
fn bench_json_round_trips_byte_identically() {
    let r = golden_report();
    let json = r.to_json();
    let back = BenchReport::from_json(&json).expect("round-trip");
    assert_eq!(back.to_json(), json);
    // And a self-diff passes the regression gate with zero failures.
    assert!(diff_gate(&back, &r).is_empty());
}
