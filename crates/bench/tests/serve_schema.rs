//! Golden-snapshot tests for the `SERVE_repro.json` schema, mirroring
//! `bench_schema.rs`: the committed fixture pins the exact serialized
//! byte stream of a deterministic report, and the field-name test pins
//! the schema shape to [`SERVE_SCHEMA_VERSION`].

use gbdt_bench::serve_report::{
    serve_diff_gate, serve_self_check, ServeRecord, ServeReport, ServeSetup, SERVE_SCHEMA_VERSION,
};
use serde::Serialize;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/serve_report.json"
);

/// A deterministic report with hand-pinned quantities (no training, no
/// simulation — every float is a literal).
fn golden_report() -> ServeReport {
    let rec = |mode: &str, predict: &str, batches: u64, rps: f64| ServeRecord {
        dataset: "NUS-WIDE".to_string(),
        mode: mode.to_string(),
        predict: predict.to_string(),
        rows: 60,
        batches,
        latency_p50_ns: 1250.5,
        latency_p99_ns: 4900.25,
        throughput_rps: rps,
        serve_ns: 75_000.0,
        upload_ns: 14_000.5,
        resident_bytes: 2428,
    };
    ServeReport {
        schema_version: SERVE_SCHEMA_VERSION,
        device: "SimRTX4090".to_string(),
        setup: ServeSetup {
            trees: 3,
            depth: 4,
            bins: 32,
            scale: 0.25,
            seed: 42,
            smoke: true,
            batch: 256,
            rows: 60,
        },
        instance_predict_ns: 1225.0,
        tree_predict_ns: 4891.5,
        batched_speedup: 57.5,
        bit_identical: true,
        records: vec![
            rec("single", "instance", 60, 832_000.0),
            rec("batched", "instance", 1, 47_900_000.0),
            rec("batched", "tree", 1, 12_200_000.0),
        ],
    }
}

/// Byte-identical to the committed fixture. Regenerate (deliberately)
/// with `UPDATE_GOLDEN=1 cargo test -p gbdt-bench --test serve_schema`
/// and bump `SERVE_SCHEMA_VERSION` if the layout moved.
#[test]
fn serve_json_matches_golden_fixture() {
    let json = golden_report().to_json();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture: run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, want,
        "SERVE json drifted from tests/golden/serve_report.json; if \
         intentional, bump SERVE_SCHEMA_VERSION and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

/// The serialized field names are pinned to schema version 1.
#[test]
fn serve_schema_field_names_are_pinned_to_version() {
    assert_eq!(
        SERVE_SCHEMA_VERSION, 1,
        "schema version changed: update the pinned field lists below"
    );
    let v = golden_report().to_value();
    let obj = v.as_object().expect("report object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema_version",
            "device",
            "setup",
            "instance_predict_ns",
            "tree_predict_ns",
            "batched_speedup",
            "bit_identical",
            "records",
        ],
        "ServeReport fields changed — bump SERVE_SCHEMA_VERSION"
    );

    let setup = obj
        .iter()
        .find(|(k, _)| k == "setup")
        .and_then(|(_, v)| v.as_object())
        .expect("setup object");
    let skeys: Vec<&str> = setup.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        skeys,
        ["trees", "depth", "bins", "scale", "seed", "smoke", "batch", "rows"],
        "ServeSetup fields changed — bump SERVE_SCHEMA_VERSION"
    );

    let records = obj
        .iter()
        .find(|(k, _)| k == "records")
        .and_then(|(_, v)| v.as_array())
        .expect("records array");
    let r0 = records[0].as_object().expect("record object");
    let rkeys: Vec<&str> = r0.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        rkeys,
        [
            "dataset",
            "mode",
            "predict",
            "rows",
            "batches",
            "latency_p50_ns",
            "latency_p99_ns",
            "throughput_rps",
            "serve_ns",
            "upload_ns",
            "resident_bytes",
        ],
        "ServeRecord fields changed — bump SERVE_SCHEMA_VERSION"
    );
}

/// from_json is a strict validator: wrong version, missing fields and
/// unknown mode/predict keys are parse errors, not silent defaults.
#[test]
fn from_json_rejects_schema_violations() {
    let good = golden_report().to_json();
    assert!(ServeReport::from_json(&good).is_ok());

    let bumped = good.replace("\"schema_version\":1", "\"schema_version\":2");
    let err = ServeReport::from_json(&bumped).expect_err("must reject");
    assert!(err.contains("schema_version"), "{err}");

    let missing = good.replace("\"throughput_rps\":", "\"throughput\":");
    assert!(ServeReport::from_json(&missing).is_err());

    let bad_mode = good.replace("\"mode\":\"single\"", "\"mode\":\"streamed\"");
    let err = ServeReport::from_json(&bad_mode).expect_err("must reject");
    assert!(err.contains("unknown mode"), "{err}");

    assert!(ServeReport::from_json("{not json").is_err());
}

/// Round-trip stability plus self-diff and self-check cleanliness: the
/// fixture is a healthy report and diffs against itself with zero
/// failures.
#[test]
fn serve_json_round_trips_and_gates_clean() {
    let r = golden_report();
    let json = r.to_json();
    let back = ServeReport::from_json(&json).expect("round-trip");
    assert_eq!(back.to_json(), json);
    assert!(serve_self_check(&back).is_empty());
    assert!(serve_diff_gate(&back, &r).is_empty());
}
