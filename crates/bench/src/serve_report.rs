//! Machine-readable serving-benchmark records (`SERVE_repro.json`) and
//! the regression gates CI runs over them.
//!
//! `repro serve` measures the [`gbdt_core::serve`] subsystem on a
//! NUS-WIDE-shaped model: the offline `predict_on_device` cost of both
//! parallelization schemes, plus micro-batched serving throughput and
//! latency percentiles for single-row vs batched submission. Everything
//! gated here is *simulated* and therefore deterministic; host noise
//! never appears in the schema.
//!
//! Two gates consume a [`ServeReport`]:
//! * [`serve_self_check`] — absolute invariants of any healthy run:
//!   batched throughput at least [`MIN_BATCH_SPEEDUP`]× single-row,
//!   bit-identical outputs, and tree-level prediction strictly costlier
//!   than instance-level (the cost-model bug this subsystem's tests
//!   pinned down);
//! * [`serve_diff_gate`] — relative drift against the committed
//!   `SERVE_baseline.json`: throughput within [`THROUGHPUT_REL_TOL`]
//!   and resident bytes exactly stable (both directions — a silent
//!   serving speedup must be blessed into the baseline like any
//!   regression).

use serde::{Deserialize, Serialize};

/// Schema version of [`ServeReport`]. Bump rule matches
/// [`crate::report::BENCH_SCHEMA_VERSION`]: renames, removals, or
/// meaning changes bump it and CI's committed baseline is regenerated.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// Minimum batched-over-single-row throughput ratio a healthy run must
/// show (the issue's ≥5× acceptance criterion).
pub const MIN_BATCH_SPEEDUP: f64 = 5.0;

/// Maximum tolerated relative throughput drift vs the baseline.
pub const THROUGHPUT_REL_TOL: f64 = 0.10;

/// The hyper-parameters a serving report was produced under (identity,
/// so baselines refuse to diff against a different setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSetup {
    /// Boosted trees in the served model.
    pub trees: u64,
    /// Maximum tree depth.
    pub depth: u64,
    /// Histogram bins used in training.
    pub bins: u64,
    /// Dataset scale multiplier over `PaperDataset::bench_shape`.
    pub scale: f64,
    /// RNG seed for data generation and training.
    pub seed: u64,
    /// Whether this was the reduced `--smoke` configuration.
    pub smoke: bool,
    /// `max_batch` of the batched runs (single-row runs always use 1).
    pub batch: u64,
    /// Rows served per run (the test split size).
    pub rows: u64,
}

/// One serving run: a (submission mode, predict scheme) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Dataset name (paper's Table 1 naming).
    pub dataset: String,
    /// Submission mode: `single` (max_batch = 1) or `batched`.
    pub mode: String,
    /// Parallelization scheme: `instance` or `tree`.
    pub predict: String,
    /// Rows served.
    pub rows: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Median request latency, simulated ns.
    pub latency_p50_ns: f64,
    /// 99th-percentile request latency, simulated ns.
    pub latency_p99_ns: f64,
    /// Served rows per simulated second.
    pub throughput_rps: f64,
    /// Simulated ns charged to `Phase::Serve` during the run.
    pub serve_ns: f64,
    /// Simulated ns charged to `Phase::Transfer` by the SoA upload.
    pub upload_ns: f64,
    /// Device-resident bytes of the uploaded ensemble.
    pub resident_bytes: u64,
}

/// A full schema-versioned serving report (`SERVE_repro.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Schema version ([`SERVE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Device the simulated times were modeled on.
    pub device: String,
    /// Run hyper-parameters.
    pub setup: ServeSetup,
    /// Offline `predict_on_device` cost, instance-level scheme.
    pub instance_predict_ns: f64,
    /// Offline `predict_on_device` cost, tree-level scheme (must be
    /// strictly higher: it pays the T×n×d partial-matrix reduction).
    pub tree_predict_ns: f64,
    /// Batched-over-single-row throughput ratio (instance scheme).
    pub batched_speedup: f64,
    /// Whether every serving run reproduced `Model::predict` exactly.
    pub bit_identical: bool,
    /// One record per (mode, predict) run.
    pub records: Vec<ServeRecord>,
}

impl ServeReport {
    /// Serialize to the canonical JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serve floats are finite")
    }

    /// Parse and validate: strict field presence plus a schema-version
    /// check.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: ServeReport = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if r.schema_version != SERVE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {}",
                r.schema_version, SERVE_SCHEMA_VERSION
            ));
        }
        for rec in &r.records {
            let ok_mode = matches!(rec.mode.as_str(), "single" | "batched");
            let ok_predict = matches!(rec.predict.as_str(), "instance" | "tree");
            if !ok_mode || !ok_predict {
                return Err(format!(
                    "record {}/{}/{} has an unknown mode or predict key",
                    rec.dataset, rec.mode, rec.predict
                ));
            }
        }
        Ok(r)
    }

    /// Find a record by (mode, predict) identity.
    pub fn find(&self, mode: &str, predict: &str) -> Option<&ServeRecord> {
        self.records
            .iter()
            .find(|r| r.mode == mode && r.predict == predict)
    }
}

/// Absolute invariants of a healthy serving run; returns human-readable
/// failures (empty ⇒ pass). Run on every fresh report, baseline or not.
pub fn serve_self_check(report: &ServeReport) -> Vec<String> {
    let mut fails = Vec::new();
    if !report.bit_identical {
        fails.push("serving outputs are not bit-identical to Model::predict".to_string());
    }
    if report.batched_speedup < MIN_BATCH_SPEEDUP {
        fails.push(format!(
            "batched speedup {:.2}x is below the required {MIN_BATCH_SPEEDUP:.0}x",
            report.batched_speedup
        ));
    }
    if report.tree_predict_ns <= report.instance_predict_ns {
        fails.push(format!(
            "tree-level predict {:.0} ns must strictly exceed instance-level {:.0} ns \
             (the T x n x d reduction is not free)",
            report.tree_predict_ns, report.instance_predict_ns
        ));
    }
    fails
}

/// Compare `current` against `baseline`; returns human-readable
/// failures (empty ⇒ gate passes). Gates only deterministic simulated
/// quantities: throughput drift and resident-byte stability.
pub fn serve_diff_gate(current: &ServeReport, baseline: &ServeReport) -> Vec<String> {
    let mut fails = Vec::new();
    if current.schema_version != baseline.schema_version {
        fails.push(format!(
            "schema_version mismatch: current {} vs baseline {}",
            current.schema_version, baseline.schema_version
        ));
        return fails;
    }
    if current.setup != baseline.setup {
        fails.push(format!(
            "setup mismatch (runs are not comparable): current {:?} vs baseline {:?}",
            current.setup, baseline.setup
        ));
        return fails;
    }
    for b in &baseline.records {
        let id = format!("{}/{}/{}", b.dataset, b.mode, b.predict);
        let Some(c) = current.find(&b.mode, &b.predict) else {
            fails.push(format!("{id}: record missing from current run"));
            continue;
        };
        if b.throughput_rps > 0.0 {
            let rel = (c.throughput_rps - b.throughput_rps).abs() / b.throughput_rps;
            if rel > THROUGHPUT_REL_TOL {
                fails.push(format!(
                    "{id}: throughput drifted {:.1}% ({:.0} -> {:.0} rows/s; tol {:.0}%)",
                    100.0 * rel,
                    b.throughput_rps,
                    c.throughput_rps,
                    100.0 * THROUGHPUT_REL_TOL
                ));
            }
        }
        if c.resident_bytes != b.resident_bytes {
            fails.push(format!(
                "{id}: resident bytes changed {} -> {} (same setup must produce the \
                 same compiled layout)",
                b.resident_bytes, c.resident_bytes
            ));
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> ServeSetup {
        ServeSetup {
            trees: 3,
            depth: 4,
            bins: 32,
            scale: 0.25,
            seed: 42,
            smoke: true,
            batch: 256,
            rows: 75,
        }
    }

    fn rec(mode: &str, predict: &str, rps: f64) -> ServeRecord {
        ServeRecord {
            dataset: "NUS-WIDE".to_string(),
            mode: mode.to_string(),
            predict: predict.to_string(),
            rows: 75,
            batches: if mode == "single" { 75 } else { 1 },
            latency_p50_ns: 1500.0,
            latency_p99_ns: 2500.0,
            throughput_rps: rps,
            serve_ns: 90_000.0,
            upload_ns: 4_000.0,
            resident_bytes: 10_240,
        }
    }

    fn report() -> ServeReport {
        ServeReport {
            schema_version: SERVE_SCHEMA_VERSION,
            device: "SimRTX4090".to_string(),
            setup: setup(),
            instance_predict_ns: 10_000.0,
            tree_predict_ns: 15_000.0,
            batched_speedup: 8.0,
            bit_identical: true,
            records: vec![
                rec("single", "instance", 100_000.0),
                rec("batched", "instance", 800_000.0),
                rec("batched", "tree", 600_000.0),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = report();
        let back = ServeReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back.schema_version, r.schema_version);
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.batched_speedup, 8.0);
        assert!(back.find("batched", "tree").is_some());
        assert!(back.find("single", "tree").is_none());
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn from_json_rejects_wrong_version_and_unknown_keys() {
        let mut r = report();
        r.schema_version = SERVE_SCHEMA_VERSION + 1;
        let err = ServeReport::from_json(&r.to_json()).expect_err("must reject");
        assert!(err.contains("schema_version"), "{err}");
        let mut r = report();
        r.records[0].mode = "streamed".to_string();
        let err = ServeReport::from_json(&r.to_json()).expect_err("must reject");
        assert!(err.contains("unknown mode"), "{err}");
        assert!(ServeReport::from_json("{not json").is_err());
    }

    #[test]
    fn self_check_passes_a_healthy_report() {
        assert!(serve_self_check(&report()).is_empty());
    }

    #[test]
    fn self_check_catches_each_invariant() {
        let mut r = report();
        r.bit_identical = false;
        assert!(serve_self_check(&r)[0].contains("bit-identical"));
        let mut r = report();
        r.batched_speedup = 3.0;
        assert!(serve_self_check(&r)[0].contains("below the required"));
        let mut r = report();
        r.tree_predict_ns = r.instance_predict_ns;
        assert!(serve_self_check(&r)[0].contains("strictly exceed"));
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let r = report();
        assert!(serve_diff_gate(&r, &r).is_empty());
    }

    #[test]
    fn gate_fails_on_throughput_drift_in_either_direction() {
        let base = report();
        let mut slow = report();
        slow.records[1].throughput_rps *= 0.85;
        let fails = serve_diff_gate(&slow, &base);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("throughput drifted"), "{fails:?}");
        let mut fast = report();
        fast.records[1].throughput_rps *= 1.2;
        assert!(!serve_diff_gate(&fast, &base).is_empty());
        let mut wiggle = report();
        wiggle.records[1].throughput_rps *= 1.05;
        assert!(serve_diff_gate(&wiggle, &base).is_empty());
    }

    #[test]
    fn gate_fails_on_resident_byte_change_and_missing_record() {
        let base = report();
        let mut grown = report();
        grown.records[2].resident_bytes += 64;
        assert!(serve_diff_gate(&grown, &base)[0].contains("resident bytes"));
        let mut pruned = report();
        pruned.records.pop();
        let fails = serve_diff_gate(&pruned, &base);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("missing"), "{fails:?}");
    }

    #[test]
    fn gate_refuses_mismatched_setup() {
        let base = report();
        let mut other = report();
        other.setup.batch = 128;
        assert!(serve_diff_gate(&other, &base)[0].contains("setup"));
    }
}
