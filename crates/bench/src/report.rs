//! Machine-readable benchmark records (`BENCH_repro.json`) and the
//! regression diff gate CI runs against `BENCH_baseline.json`.
//!
//! The schema is versioned and deliberately boring: flat records, one
//! per (dataset, histogram method), each carrying the *deterministic*
//! quantities — simulated seconds, per-phase simulated nanoseconds,
//! histogram share, model quality — plus informational host wall-clock
//! (never gated: the host is noisy, the simulator is not).
//!
//! Gate semantics (`diff_gate`):
//! * missing baseline record in the current run → fail;
//! * histogram-share relative drift beyond [`HIST_SHARE_REL_TOL`] → fail
//!   (this is the paper's Figure 4 quantity — the repo's perf north
//!   star — so both regressions *and* silent speedups must be looked at
//!   and blessed into the baseline);
//! * quality regression beyond tolerance → fail (`accuracy%` drops more
//!   than [`ACCURACY_ABS_TOL`] points, or `rmse` grows more than
//!   [`RMSE_REL_TOL`] relative) — quality improvements pass.

use gbdt_core::HistogramMethod;
use gpusim::{LedgerSummary, Phase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version of [`BenchReport`]. Bump rule: renaming/removing a
/// field or changing a field's meaning bumps this (and CI's committed
/// baseline must be regenerated); purely additive optional fields may
/// keep it, but the golden schema test must be updated either way.
/// v3: `phase_ns` gained the `Serve` key (serving subsystem phase).
/// v4: records gained `overlap_saved_ns` (simulated ns recovered by
/// multi-stream overlap) and the setup gained `streams` — overlap is
/// *reported* by the gate, never gated (see [`overlap_notes`]).
/// v5: records gained the ledger health counters `dropped_records` and
/// `negative_charges` — surfaced by [`health_notes`], never gated (a
/// shed record keeps subtotals exact; a clamped negative charge is a
/// cost-model bug to investigate, not a perf regression).
pub const BENCH_SCHEMA_VERSION: u32 = 5;

/// Maximum tolerated relative drift of the histogram share before the
/// diff gate fails (the issue's >10 % criterion).
pub const HIST_SHARE_REL_TOL: f64 = 0.10;

/// Maximum tolerated drop in `accuracy%` (absolute points).
pub const ACCURACY_ABS_TOL: f64 = 1.0;

/// Maximum tolerated relative growth of `rmse`.
pub const RMSE_REL_TOL: f64 = 0.05;

/// Stable JSON key for a phase. The match is exhaustive on purpose —
/// adding a `Phase` variant must not compile until the bench schema
/// names it (repo-lint enforces the same textually).
pub fn phase_key(p: Phase) -> &'static str {
    match p {
        Phase::Binning => "Binning",
        Phase::Gradient => "Gradient",
        Phase::Sketch => "Sketch",
        Phase::Histogram => "Histogram",
        Phase::SplitEval => "SplitEval",
        Phase::Partition => "Partition",
        Phase::LeafValue => "LeafValue",
        Phase::Predict => "Predict",
        Phase::Serve => "Serve",
        Phase::Transfer => "Transfer",
        Phase::Comm => "Comm",
        Phase::Idle => "Idle",
        Phase::Other => "Other",
    }
}

/// Stable key for a histogram method (JSON record identity).
pub fn method_key(m: HistogramMethod) -> &'static str {
    match m {
        HistogramMethod::GlobalMemory => "gmem",
        HistogramMethod::SharedMemory => "smem",
        HistogramMethod::SortReduce => "sortreduce",
        HistogramMethod::Adaptive => "adaptive",
    }
}

/// The hyper-parameters a report was produced under (identity of the
/// grid, so baselines can refuse to diff against a different setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSetup {
    /// Boosted trees per run.
    pub trees: u64,
    /// Maximum tree depth.
    pub depth: u64,
    /// Histogram bins.
    pub bins: u64,
    /// Dataset scale multiplier over `PaperDataset::bench_shape`.
    pub scale: f64,
    /// RNG seed for data generation and training.
    pub seed: u64,
    /// Whether this was the reduced `--smoke` grid.
    pub smoke: bool,
    /// Streams per device (`1` = the serial schedule). Part of setup
    /// identity: a streamed grid's timeline is not comparable to a
    /// serial baseline's.
    pub streams: u64,
}

/// One (dataset, histogram method) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Dataset name (paper's Table 1 naming).
    pub dataset: String,
    /// Histogram method key (see [`method_key`]).
    pub hist_method: String,
    /// Gradient-sketch label (`OutputSketch::label()`): `none`, or
    /// `top{k}` / `rand{k}` / `proj{k}`. Part of record identity.
    pub sketch: String,
    /// Metric name (`accuracy%` or `rmse`).
    pub metric_name: String,
    /// Metric value on the held-out test split.
    pub metric: f64,
    /// Simulated device seconds for the fit.
    pub sim_seconds: f64,
    /// Host wall-clock seconds the simulation took. Informational
    /// only — never gated (host noise must not fail CI).
    pub host_seconds: f64,
    /// Fraction of simulated time in the Histogram phase (Figure 4).
    pub hist_share: f64,
    /// Simulated nanoseconds per phase; every phase key is present
    /// (0.0 when unused) so downstream tooling never key-checks.
    pub phase_ns: BTreeMap<String, f64>,
    /// Number of ledger charges during the fit.
    pub kernel_count: u64,
    /// Simulated nanoseconds recovered by multi-stream overlap (serial
    /// charge sum minus makespan). Exactly `0.0` on a serial schedule.
    /// Informational: reported by [`overlap_notes`], never gated — the
    /// timeline is already covered by `sim_seconds`/`hist_share`.
    pub overlap_saved_ns: f64,
    /// Ledger records shed past the retention limit during the fit
    /// (phase subtotals stay exact). Health counter: surfaced by
    /// [`health_notes`], never gated.
    pub dropped_records: u64,
    /// Charges clamped at the ledger's non-negativity floor during the
    /// fit — each one is a cost-model bug made visible. Health counter:
    /// surfaced by [`health_notes`], never gated.
    pub negative_charges: u64,
}

/// A full schema-versioned benchmark report (`BENCH_repro.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Device the simulated times were modeled on.
    pub device: String,
    /// Grid hyper-parameters.
    pub setup: BenchSetup,
    /// One record per (dataset, histogram method).
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Serialize to the canonical JSON form (insertion-ordered keys in
    /// struct-declaration order; deterministic float formatting).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bench floats are finite")
    }

    /// Parse and *validate* a report: strict field presence (the
    /// vendored deserializer errors on missing non-optional fields)
    /// plus a schema-version check.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: BenchReport = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if r.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {}",
                r.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        for rec in &r.records {
            for p in Phase::ALL {
                if !rec.phase_ns.contains_key(phase_key(p)) {
                    return Err(format!(
                        "record {}/{} is missing phase key `{}`",
                        rec.dataset,
                        rec.hist_method,
                        phase_key(p)
                    ));
                }
            }
        }
        Ok(r)
    }

    /// Find a record by (dataset, method, sketch) identity.
    pub fn find(&self, dataset: &str, hist_method: &str, sketch: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.dataset == dataset && r.hist_method == hist_method && r.sketch == sketch)
    }
}

/// Build one record from a fit's ledger delta and test metric.
#[allow(clippy::too_many_arguments)]
pub fn make_record(
    dataset: &str,
    method: HistogramMethod,
    sketch: &str,
    sim: &LedgerSummary,
    host_seconds: f64,
    metric_name: &str,
    metric: f64,
) -> BenchRecord {
    let mut phase_ns = BTreeMap::new();
    for p in Phase::ALL {
        phase_ns.insert(
            phase_key(p).to_string(),
            sim.by_phase.get(&p).copied().unwrap_or(0.0),
        );
    }
    BenchRecord {
        dataset: dataset.to_string(),
        hist_method: method_key(method).to_string(),
        sketch: sketch.to_string(),
        metric_name: metric_name.to_string(),
        metric,
        sim_seconds: sim.total_ns * 1e-9,
        host_seconds,
        hist_share: sim.fraction(Phase::Histogram),
        phase_ns,
        kernel_count: sim.kernel_count,
        overlap_saved_ns: sim.overlap_saved_ns,
        dropped_records: sim.dropped_records,
        negative_charges: sim.negative_charges,
    }
}

/// Ledger health warnings for a run: one line per record with a nonzero
/// `dropped_records` or `negative_charges` counter. Report-never-gate:
/// both conditions deserve a human's eye (lost trace detail; a
/// cost-model expression that went negative) but neither changes the
/// gated quantities, so CI prints them and stays green.
pub fn health_notes(current: &BenchReport) -> Vec<String> {
    let mut notes = Vec::new();
    for r in &current.records {
        let id = format!("{}/{}/{}", r.dataset, r.hist_method, r.sketch);
        if r.dropped_records > 0 {
            notes.push(format!(
                "{id}: ledger shed {} records past its retention limit (subtotals stay exact)",
                r.dropped_records
            ));
        }
        if r.negative_charges > 0 {
            notes.push(format!(
                "{id}: {} charges clamped at the ledger's non-negativity floor (cost-model bug?)",
                r.negative_charges
            ));
        }
    }
    notes
}

/// Informational overlap report for `--check` runs: one line per record
/// whose `overlap_saved_ns` moved against the baseline. Never gates —
/// overlap savings are a start-timestamp rearrangement, not a cost
/// change, so drift here is surfaced for a human and nothing more.
pub fn overlap_notes(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut notes = Vec::new();
    for b in &baseline.records {
        let Some(c) = current.find(&b.dataset, &b.hist_method, &b.sketch) else {
            continue;
        };
        if c.overlap_saved_ns != b.overlap_saved_ns {
            notes.push(format!(
                "{}/{}/{}: overlap_saved_ns {:.0} -> {:.0} (informational)",
                b.dataset, b.hist_method, b.sketch, b.overlap_saved_ns, c.overlap_saved_ns
            ));
        }
    }
    notes
}

/// Compare `current` against `baseline`; returns a list of human-
/// readable failures (empty ⇒ gate passes). Gates only deterministic
/// quantities: hist-share drift and model quality.
pub fn diff_gate(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut fails = Vec::new();
    if current.schema_version != baseline.schema_version {
        fails.push(format!(
            "schema_version mismatch: current {} vs baseline {}",
            current.schema_version, baseline.schema_version
        ));
        return fails;
    }
    if current.setup != baseline.setup {
        fails.push(format!(
            "setup mismatch (grids are not comparable): current {:?} vs baseline {:?}",
            current.setup, baseline.setup
        ));
        return fails;
    }
    for b in &baseline.records {
        let id = format!("{}/{}/{}", b.dataset, b.hist_method, b.sketch);
        let Some(c) = current.find(&b.dataset, &b.hist_method, &b.sketch) else {
            fails.push(format!("{id}: record missing from current run"));
            continue;
        };
        // Histogram-share drift, relative to the baseline share.
        if b.hist_share > 0.0 {
            let rel = (c.hist_share - b.hist_share).abs() / b.hist_share;
            if rel > HIST_SHARE_REL_TOL {
                fails.push(format!(
                    "{id}: hist-share drifted {:.1}% ({:.4} -> {:.4}; tol {:.0}%)",
                    100.0 * rel,
                    b.hist_share,
                    c.hist_share,
                    100.0 * HIST_SHARE_REL_TOL
                ));
            }
        }
        // Quality regression (improvements pass).
        if c.metric_name != b.metric_name {
            fails.push(format!(
                "{id}: metric changed from {} to {}",
                b.metric_name, c.metric_name
            ));
            continue;
        }
        let regressed = match b.metric_name.as_str() {
            "accuracy%" => c.metric < b.metric - ACCURACY_ABS_TOL,
            "rmse" => c.metric > b.metric * (1.0 + RMSE_REL_TOL),
            other => {
                fails.push(format!("{id}: unknown metric `{other}` cannot be gated"));
                continue;
            }
        };
        if regressed {
            fails.push(format!(
                "{id}: {} regressed {:.4} -> {:.4}",
                b.metric_name, b.metric, c.metric
            ));
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> BenchSetup {
        BenchSetup {
            trees: 3,
            depth: 4,
            bins: 32,
            scale: 0.25,
            seed: 42,
            smoke: true,
            streams: 1,
        }
    }

    fn rec(dataset: &str, method: &str, metric_name: &str, metric: f64, share: f64) -> BenchRecord {
        let mut phase_ns = BTreeMap::new();
        for p in Phase::ALL {
            phase_ns.insert(phase_key(p).to_string(), 0.0);
        }
        phase_ns.insert("Histogram".to_string(), share * 1e6);
        BenchRecord {
            dataset: dataset.to_string(),
            hist_method: method.to_string(),
            sketch: "none".to_string(),
            metric_name: metric_name.to_string(),
            metric,
            sim_seconds: 1e-3,
            host_seconds: 0.5,
            hist_share: share,
            phase_ns,
            kernel_count: 10,
            overlap_saved_ns: 0.0,
            dropped_records: 0,
            negative_charges: 0,
        }
    }

    fn report(records: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            device: "SimRTX4090".to_string(),
            setup: setup(),
            records,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7)]);
        let back = BenchReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back.schema_version, r.schema_version);
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].dataset, "mnist");
        assert_eq!(back.records[0].metric, 90.0);
        assert_eq!(back.records[0].phase_ns.len(), Phase::ALL.len());
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let mut r = report(vec![]);
        r.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&r.to_json()).expect_err("must reject");
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn from_json_rejects_missing_phase_key() {
        let mut record = rec("mnist", "gmem", "rmse", 1.0, 0.5);
        record.phase_ns.remove("Comm");
        let r = report(vec![record]);
        let err = BenchReport::from_json(&r.to_json()).expect_err("must reject");
        assert!(err.contains("Comm"), "{err}");
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let r = report(vec![
            rec("mnist", "gmem", "accuracy%", 90.0, 0.7),
            rec("rf1", "adaptive", "rmse", 0.5, 0.6),
        ]);
        assert!(diff_gate(&r, &r).is_empty());
    }

    #[test]
    fn gate_fails_on_hist_share_drift_beyond_tolerance() {
        let base = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.70)]);
        // 8.6% drift passes…
        let ok = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.64)]);
        assert!(diff_gate(&ok, &base).is_empty());
        // …12.9% drift fails, in either direction.
        let slow = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.79)]);
        let fails = diff_gate(&slow, &base);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("hist-share"), "{fails:?}");
        let fast = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.61)]);
        assert!(!diff_gate(&fast, &base).is_empty());
    }

    #[test]
    fn gate_fails_on_quality_regression_only() {
        let base = report(vec![
            rec("mnist", "gmem", "accuracy%", 90.0, 0.7),
            rec("rf1", "gmem", "rmse", 1.0, 0.7),
        ]);
        // Improvements pass.
        let better = report(vec![
            rec("mnist", "gmem", "accuracy%", 95.0, 0.7),
            rec("rf1", "gmem", "rmse", 0.9, 0.7),
        ]);
        assert!(diff_gate(&better, &base).is_empty());
        // Small wiggle inside tolerance passes.
        let wiggle = report(vec![
            rec("mnist", "gmem", "accuracy%", 89.5, 0.7),
            rec("rf1", "gmem", "rmse", 1.02, 0.7),
        ]);
        assert!(diff_gate(&wiggle, &base).is_empty());
        // Beyond tolerance fails.
        let worse = report(vec![
            rec("mnist", "gmem", "accuracy%", 88.0, 0.7),
            rec("rf1", "gmem", "rmse", 1.2, 0.7),
        ]);
        let fails = diff_gate(&worse, &base);
        assert_eq!(fails.len(), 2, "{fails:?}");
    }

    #[test]
    fn gate_fails_on_missing_record_and_setup_mismatch() {
        let base = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7)]);
        let empty = report(vec![]);
        assert_eq!(diff_gate(&empty, &base).len(), 1);
        let mut other = base.clone();
        other.setup.trees = 99;
        assert!(diff_gate(&other, &base)[0].contains("setup"));
    }

    #[test]
    fn sketch_is_part_of_record_identity() {
        let mut sketched = rec("mnist", "gmem", "accuracy%", 90.0, 0.7);
        sketched.sketch = "top4".to_string();
        let r = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7), sketched]);
        assert!(r.find("mnist", "gmem", "none").is_some());
        assert!(r.find("mnist", "gmem", "top4").is_some());
        assert!(r.find("mnist", "gmem", "proj4").is_none());
        // A baseline sketched record missing from current fails the gate
        // with the sketch label in the message.
        let current = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7)]);
        let fails = diff_gate(&current, &r);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("top4"), "{fails:?}");
    }

    #[test]
    fn make_record_fills_every_phase_key() {
        let mut sim = LedgerSummary::default();
        sim.total_ns = 100.0;
        sim.by_phase.insert(Phase::Histogram, 80.0);
        sim.by_phase.insert(Phase::SplitEval, 20.0);
        sim.kernel_count = 7;
        let r = make_record(
            "mnist",
            HistogramMethod::Adaptive,
            "top4",
            &sim,
            0.1,
            "accuracy%",
            91.0,
        );
        assert_eq!(r.hist_method, "adaptive");
        assert_eq!(r.sketch, "top4");
        assert_eq!(r.phase_ns.len(), Phase::ALL.len());
        assert_eq!(r.phase_ns["Histogram"], 80.0);
        assert_eq!(r.phase_ns["Comm"], 0.0);
        assert!((r.hist_share - 0.8).abs() < 1e-12);
        assert_eq!(r.kernel_count, 7);
    }

    #[test]
    fn make_record_carries_overlap_savings() {
        let mut sim = LedgerSummary::default();
        sim.total_ns = 100.0;
        sim.overlap_saved_ns = 37.5;
        let r = make_record(
            "mnist",
            HistogramMethod::Adaptive,
            "none",
            &sim,
            0.1,
            "accuracy%",
            91.0,
        );
        assert_eq!(r.overlap_saved_ns, 37.5);
    }

    #[test]
    fn health_counters_are_reported_but_never_gated() {
        let base = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7)]);
        let mut sick = base.clone();
        sick.records[0].dropped_records = 3;
        sick.records[0].negative_charges = 1;
        // The gate stays green against a clean baseline…
        assert!(diff_gate(&sick, &base).is_empty());
        // …while the health channel names both counters.
        let notes = health_notes(&sick);
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("shed 3 records"), "{notes:?}");
        assert!(notes[1].contains("clamped"), "{notes:?}");
        // A healthy run stays silent.
        assert!(health_notes(&base).is_empty());
        // The counters survive the JSON round-trip.
        let back = BenchReport::from_json(&sick.to_json()).expect("roundtrip");
        assert_eq!(back.records[0].dropped_records, 3);
        assert_eq!(back.records[0].negative_charges, 1);
    }

    #[test]
    fn overlap_drift_is_reported_but_never_gated() {
        let base = report(vec![rec("mnist", "gmem", "accuracy%", 90.0, 0.7)]);
        let mut moved = base.clone();
        moved.records[0].overlap_saved_ns = 4.2e6;
        // The gate stays green…
        assert!(diff_gate(&moved, &base).is_empty());
        // …while the informational channel names the drift.
        let notes = overlap_notes(&moved, &base);
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert!(notes[0].contains("overlap_saved_ns"), "{notes:?}");
        // No drift, no note.
        assert!(overlap_notes(&base, &base).is_empty());
    }
}
