//! # gbdt-bench — experiment harness
//!
//! Shared machinery for regenerating every table and figure of the
//! paper's evaluation (§4): system runners, task-appropriate metrics,
//! scaled dataset construction and fixed-width table rendering. The
//! `repro` binary drives it; the Criterion benches reuse it.
//!
//! **Timing domains.** GPU systems (ours, the SO baselines, sk-boost)
//! report *simulated* device seconds from the `gpusim` cost model; the
//! CPU baselines (mo-fu, mo-sp) report *measured host wall-clock*. The
//! two domains are printed side by side exactly as the paper's tables
//! mix GPU and CPU rows, but EXPERIMENTS.md compares shapes, not
//! absolute cross-domain ratios.

#![warn(missing_docs)]

pub mod report;
pub mod serve_report;

use gbdt_baselines::{
    CpuMoTrainer, CpuStorage, GbdtSoTrainer, GrowthPolicy, SketchBoostTrainer, SketchStrategy,
};
use gbdt_core::loss::loss_for_task;
use gbdt_core::{accuracy, rmse, GpuTrainer, HistogramMethod, MultiGpuTrainer, TrainConfig};
use gbdt_data::{Dataset, DenseMatrix, PaperDataset, Task};
use gpusim::{Device, DeviceGroup, DeviceProps, LedgerSummary};
use serde::Serialize;
use std::sync::Arc;

/// A device modeling SketchBoost's actual substrate: Py-Boost drives
/// CUDA through Python/CuPy, whose per-operation dispatch overhead is
/// an order of magnitude above a native C++ launch, and its histogram
/// kernel is a plain global-atomic one without warp-level packing.
/// Without this, "sk-boost" would unrealistically inherit our own
/// optimized pipeline and beat the paper's ordering.
pub fn pyboost_device() -> Arc<Device> {
    let mut props = DeviceProps::rtx4090();
    props.name = "SimRTX4090-pyboost".into();
    props.cost.launch_overhead_sec = 2.0e-5;
    Device::new(0, props)
}

/// Which clock a result was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimeDomain {
    /// Simulated device time (gpusim cost model).
    Simulated,
    /// Host wall-clock.
    HostWall,
}

/// The systems compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    /// The paper's system (this repo's GPU GBDT-MO trainer).
    Ours,
    /// Ours with feature-parallel multi-GPU training (`k` devices).
    OursMultiGpu(usize),
    /// XGBoost-style: level-wise single-output ensembles.
    XgBoost,
    /// LightGBM-style: leaf-wise single-output ensembles.
    LightGbm,
    /// CatBoost-style: oblivious single-output ensembles.
    CatBoost,
    /// SketchBoost with Top-Outputs sketching.
    SkBoost,
    /// CPU GBDT-MO over dense storage ("mo-fu").
    MoFu,
    /// CPU GBDT-MO over CSC storage ("mo-sp").
    MoSp,
}

impl SystemId {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> String {
        match self {
            SystemId::Ours => "ours".into(),
            SystemId::OursMultiGpu(k) => format!("ours×{k}"),
            SystemId::XgBoost => "xgboost".into(),
            SystemId::LightGbm => "lightgbm".into(),
            SystemId::CatBoost => "catboost".into(),
            SystemId::SkBoost => "sk-boost".into(),
            SystemId::MoFu => "mo-fu".into(),
            SystemId::MoSp => "mo-sp".into(),
        }
    }

    /// The paper's GPU baselines for Tables 2–3, in column order.
    pub fn gpu_systems() -> Vec<SystemId> {
        vec![
            SystemId::CatBoost,
            SystemId::LightGbm,
            SystemId::XgBoost,
            SystemId::SkBoost,
            SystemId::Ours,
        ]
    }
}

/// One system × dataset result.
#[derive(Debug, Clone, Serialize)]
pub struct RunOutcome {
    /// System name.
    pub system: String,
    /// Dataset name.
    pub dataset: String,
    /// Training time in seconds ([`TimeDomain`] says which clock).
    pub seconds: f64,
    /// Which clock `seconds` is on.
    pub domain: TimeDomain,
    /// Metric name (`accuracy%` or `rmse`).
    pub metric_name: &'static str,
    /// Metric value on the held-out test set.
    pub metric: f64,
    /// Phase breakdown (simulated systems only).
    #[serde(skip)]
    pub ledger: Option<LedgerSummary>,
}

/// Scaled-down training configuration for the harness.
/// `--full` runs restore the paper's §4.1 defaults (100 trees, depth 7,
/// 256 bins).
pub fn bench_config(trees: usize, depth: usize, bins: usize) -> TrainConfig {
    TrainConfig {
        num_trees: trees,
        max_depth: depth,
        max_bins: bins,
        min_instances: 20,
        learning_rate: 1.0,
        ..TrainConfig::default()
    }
}

/// Default harness configuration (scaled from the paper's 100×7×256).
pub fn default_config() -> TrainConfig {
    bench_config(20, 5, 64)
}

/// Task-appropriate test metric on raw scores, as in Tables 3–4:
/// accuracy (%) for multiclass, RMSE for regression, RMSE over
/// predicted probabilities for multilabel.
pub fn metric_of(task: Task, raw_scores: &[f32], test: &Dataset) -> (&'static str, f64) {
    match task {
        Task::MultiClass => ("accuracy%", 100.0 * accuracy(raw_scores, &test.labels())),
        Task::MultiRegression => ("rmse", rmse(raw_scores, test.targets())),
        Task::MultiLabel => {
            let loss = loss_for_task(task);
            let mut probs = raw_scores.to_vec();
            for row in probs.chunks_mut(test.d()) {
                loss.transform_row(row);
            }
            ("rmse", rmse(&probs, test.targets()))
        }
    }
}

/// Train `system` on `train`, evaluate on `test`.
pub fn run_system(
    system: SystemId,
    dataset_name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
) -> RunOutcome {
    let task = train.task();
    let (seconds, domain, scores, ledger) = match system {
        SystemId::Ours => {
            let r = GpuTrainer::new(Device::rtx4090(), config.clone()).fit_report(train);
            (
                r.sim_seconds,
                TimeDomain::Simulated,
                r.model.predict(test.features()),
                Some(r.sim),
            )
        }
        SystemId::OursMultiGpu(k) => {
            let r =
                MultiGpuTrainer::new(DeviceGroup::rtx4090s(k), config.clone()).fit_report(train);
            (
                r.sim_seconds,
                TimeDomain::Simulated,
                r.model.predict(test.features()),
                Some(r.sim),
            )
        }
        SystemId::XgBoost | SystemId::LightGbm | SystemId::CatBoost => {
            let policy = match system {
                SystemId::XgBoost => GrowthPolicy::LevelWise,
                SystemId::LightGbm => GrowthPolicy::LeafWise,
                _ => GrowthPolicy::Oblivious,
            };
            let r = GbdtSoTrainer::new(Device::rtx4090(), config.clone(), policy).fit_report(train);
            (
                r.sim_seconds,
                TimeDomain::Simulated,
                r.model.predict(test.features()),
                Some(r.sim),
            )
        }
        SystemId::SkBoost => {
            let mut cfg = config.clone();
            cfg.hist.method = HistogramMethod::GlobalMemory;
            cfg.hist.warp_packing = false;
            let r = SketchBoostTrainer::new(
                pyboost_device(),
                cfg,
                SketchStrategy::TopOutputs,
                SketchBoostTrainer::DEFAULT_SKETCH_DIM,
            )
            .fit_report(train);
            (
                r.sim_seconds,
                TimeDomain::Simulated,
                r.model.predict(test.features()),
                Some(r.sim),
            )
        }
        SystemId::MoFu | SystemId::MoSp => {
            let storage = if system == SystemId::MoFu {
                CpuStorage::Dense
            } else {
                CpuStorage::Sparse
            };
            let r = CpuMoTrainer::new(config.clone(), storage).fit_report(train);
            (
                r.wall_seconds,
                TimeDomain::HostWall,
                r.model.predict(test.features()),
                None,
            )
        }
    };
    let (metric_name, metric) = metric_of(task, &scores, test);
    RunOutcome {
        system: system.name(),
        dataset: dataset_name.to_string(),
        seconds,
        domain,
        metric_name,
        metric,
        ledger,
    }
}

/// Generate a paper dataset at the harness's reduced shape (optionally
/// rescaled) and split 80/20.
pub fn bench_dataset(ds: PaperDataset, scale_mult: f64, seed: u64) -> (Dataset, Dataset, String) {
    let (scale, m_cap, d_cap) = ds.bench_shape();
    let data = ds.generate(scale * scale_mult, m_cap, d_cap, seed);
    let (train, test) = data.split(0.2, seed.wrapping_add(1));
    (train, test, ds.shape().name.to_string())
}

/// Predict with a core model and compute the test metric (utility for
/// ablation benches).
pub fn model_metric(model: &gbdt_core::Model, test: &Dataset) -> f64 {
    let (_, v) = metric_of(test.task(), &model.predict(test.features()), test);
    v
}

/// Raw scores helper for external models.
pub fn predict_scores(model: &gbdt_core::Model, features: &DenseMatrix) -> Vec<f32> {
    model.predict(features)
}

/// Fixed-width table renderer (first column left-aligned).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", cell, w = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_every_system_on_a_tiny_dataset() {
        let (train, test, name) = bench_dataset(PaperDataset::Otto, 0.3, 1);
        let cfg = bench_config(3, 3, 16);
        for system in [
            SystemId::Ours,
            SystemId::OursMultiGpu(2),
            SystemId::XgBoost,
            SystemId::LightGbm,
            SystemId::CatBoost,
            SystemId::SkBoost,
            SystemId::MoFu,
            SystemId::MoSp,
        ] {
            let r = run_system(system, &name, &train, &test, &cfg);
            assert!(r.seconds > 0.0, "{}: no time booked", r.system);
            assert!(r.metric.is_finite());
            match system {
                SystemId::MoFu | SystemId::MoSp => assert_eq!(r.domain, TimeDomain::HostWall),
                _ => assert_eq!(r.domain, TimeDomain::Simulated),
            }
        }
    }

    #[test]
    fn metric_matches_task_kind() {
        let (train, test, _) = bench_dataset(PaperDataset::Rf1, 0.3, 2);
        assert_eq!(train.task(), Task::MultiRegression);
        let cfg = bench_config(3, 3, 16);
        let r = run_system(SystemId::Ours, "RF1", &train, &test, &cfg);
        assert_eq!(r.metric_name, "rmse");

        let (train, test, _) = bench_dataset(PaperDataset::Otto, 0.3, 2);
        let r = run_system(SystemId::Ours, "Otto", &train, &test, &cfg);
        assert_eq!(r.metric_name, "accuracy%");
        assert!(r.metric >= 0.0 && r.metric <= 100.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["dataset", "a", "b"],
            &[
                vec!["MNIST".into(), "1.0".into(), "2.0".into()],
                vec!["Caltech101".into(), "10.5".into(), "0.1".into()],
            ],
        );
        assert!(t.contains("MNIST"));
        assert!(t.contains("Caltech101"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
    }

    #[test]
    fn fmt_secs_scales_units() {
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(3.21), "3.21");
        assert_eq!(fmt_secs(123.4), "123");
    }

    #[test]
    fn pyboost_device_is_slower_per_launch() {
        // The sk-boost substrate models Python/CuPy dispatch overhead:
        // same kernel, more time.
        use gpusim::cost::KernelCost;
        let native = gpusim::Device::rtx4090();
        let pyboost = pyboost_device();
        let k = KernelCost::streaming(1e6, 1e6);
        native.charge_kernel("k", gpusim::Phase::Other, &k);
        pyboost.charge_kernel("k", gpusim::Phase::Other, &k);
        assert!(
            pyboost.now_ns() > native.now_ns() * 5.0,
            "pyboost {} vs native {}",
            pyboost.now_ns(),
            native.now_ns()
        );
    }

    #[test]
    fn bench_dataset_scales_and_names() {
        let (train, test, name) = bench_dataset(PaperDataset::Delicious, 1.0, 3);
        assert_eq!(name, "Delicious");
        assert!(train.n() > test.n());
        let (bigger, _, _) = bench_dataset(PaperDataset::Delicious, 2.0, 3);
        assert!(bigger.n() > train.n());
    }
}
