//! `repro` — regenerate every table and figure of the paper's
//! evaluation section on the simulated device.
//!
//! ```text
//! repro <command> [--trees N] [--depth N] [--bins N] [--scale F]
//!                 [--gpus K] [--seed S] [--full]
//!
//! commands:
//!   datasets   Table 1  dataset inventory
//!   table2     Table 2  training time, single & dual GPU
//!   table3     Table 3  test accuracy / RMSE of the GPU systems
//!   table4     Table 4  CPU (mo-fu / mo-sp) vs ours + speedup
//!   fig4       Fig. 4   histogram share of total training time
//!   fig5       Fig. 5   training time vs number of trees
//!   fig6a      Fig. 6a  histogram building methods (±warp opt)
//!   fig6b      Fig. 6b  training time vs number of classes
//!   fig7       Fig. 7   training time vs tree depth
//!   ablations  design-choice ablations from DESIGN.md
//!   hostbench  host wall-clock of the level-wise grower (subtraction
//!              × parallel_level_hist), simulated time held fixed
//!   sanitize   one boosting round per histogram method under full
//!              memcheck+racecheck, plus a determinism audit; exits
//!              nonzero if any violation is found
//!   bench      machine-readable perf/quality grid (per hist method ×
//!              dataset): writes schema-versioned BENCH_repro.json with
//!              per-phase simulated ns, hist-share %, host wall-clock
//!              and model quality; `--baseline F --check` diff-gates
//!              against a committed baseline (exit 1 on drift)
//!   chaos      fault-injection matrix: seeded fault plans against
//!              single- and multi-GPU training plus a checkpoint/resume
//!              smoke; every completed run must be bit-identical to the
//!              fault-free reference and every failure a typed error;
//!              exits nonzero on any divergence or panic-class outcome
//!   serve      batched-serving benchmark: compiles a NUS-WIDE-shaped
//!              model, uploads it as device-resident SoA arrays, and
//!              drives a burst of single-row submissions through the
//!              micro-batching BatchServer at max_batch 1 vs --batch;
//!              writes schema-versioned SERVE_repro.json and enforces
//!              the ≥5× batched-speedup, bit-identity and tree>instance
//!              cost invariants; `--baseline F --check` diff-gates
//!   report     unified run report: trains and serves one instrumented
//!              run with the telemetry registry, profiler and fault
//!              injector all attached, verifies the registry's per-phase
//!              nanoseconds reconcile bitwise with the ledger, and joins
//!              telemetry + ProfileSummary + ledger counters +
//!              FaultReport + serve stats into one human-readable table
//!              and one machine-readable REPORT_repro.json
//!              (TELEMETRY_SCHEMA_VERSION); `--prom F` also writes the
//!              Prometheus text exposition
//!   all        everything above
//! ```
//!
//! `bench` flags: `--smoke` (reduced CI grid), `--out F` (default
//! BENCH_repro.json), `--baseline F`, `--check`, `--trace F` (Chrome
//! trace of the first profiled run; open in chrome://tracing).
//!
//! `--full` restores the paper's §4.1 hyper-parameters (100 trees,
//! depth 7, 256 bins) — expect minutes of host time. Without it the
//! harness runs a scaled configuration (20 trees, depth 5, 64 bins)
//! over the reduced dataset shapes in `PaperDataset::bench_shape`.

use gbdt_bench::{
    bench_config, bench_dataset, fmt_secs, render_table, run_system, RunOutcome, SystemId,
};
use gbdt_core::{GpuTrainer, HistogramMethod, MultiGpuTrainer, OutputSketch, TrainConfig};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::PaperDataset;
use gpusim::{Device, DeviceGroup, Phase};

#[derive(Debug, Clone)]
struct Opts {
    trees: usize,
    depth: usize,
    bins: usize,
    scale: f64,
    gpus: usize,
    seed: u64,
    full: bool,
    smoke: bool,
    out: String,
    baseline: Option<String>,
    check: bool,
    update_baseline: bool,
    sketch: OutputSketch,
    trace: Option<String>,
    batch: usize,
    streams: usize,
    prom: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            trees: 20,
            depth: 5,
            bins: 64,
            scale: 1.0,
            gpus: 2,
            seed: 42,
            full: false,
            smoke: false,
            out: "BENCH_repro.json".to_string(),
            baseline: None,
            check: false,
            update_baseline: false,
            sketch: OutputSketch::None,
            trace: None,
            batch: 256,
            streams: 1,
            prom: None,
        }
    }
}

impl Opts {
    fn config(&self) -> TrainConfig {
        if self.full {
            bench_config(100, 7, 256)
        } else {
            bench_config(self.trees, self.depth, self.bins)
        }
    }
}

const USAGE: &str = "usage: repro <datasets|table2|table3|table4|fig4|fig5|fig6a|fig6b|fig7|ablations|hostbench|sanitize|bench|serve|report|chaos|all> [flags]\n\
flags: --trees N --depth N --bins N --scale F --gpus K --seed S --full\n\
bench: --smoke --out FILE --baseline FILE --check --update-baseline\n\
       --sketch LABEL (none|topK|randK|projK, e.g. top4) --trace FILE\n\
       --streams N (device streams per GPU; 1 = serial schedule)\n\
serve: --smoke --batch N --out FILE (default SERVE_repro.json)\n\
       --baseline FILE --check --update-baseline\n\
report: --smoke --batch N --out FILE (default REPORT_repro.json)\n\
        --prom FILE (Prometheus text exposition of the run's registry)\n\
chaos: --smoke (reduced sweep) --seed S --gpus K";

/// Parse a sketch label (`OutputSketch::label()` inverse): `none`, or
/// `top{k}` / `rand{k}` / `proj{k}`.
fn parse_sketch(label: &str) -> Result<OutputSketch, String> {
    let bad = |_| format!("invalid sketch label `{label}` (want none|topK|randK|projK)");
    if label == "none" {
        Ok(OutputSketch::None)
    } else if let Some(k) = label.strip_prefix("top") {
        Ok(OutputSketch::TopOutputs(k.parse().map_err(bad)?))
    } else if let Some(k) = label.strip_prefix("rand") {
        Ok(OutputSketch::RandomSampling(k.parse().map_err(bad)?))
    } else if let Some(k) = label.strip_prefix("proj") {
        Ok(OutputSketch::RandomProjection(k.parse().map_err(bad)?))
    } else {
        Err(format!(
            "invalid sketch label `{label}` (want none|topK|randK|projK)"
        ))
    }
}

/// Parse a flag value, naming the flag in the error.
fn parse_value<T: std::str::FromStr>(value: String, name: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {name}"))
}

/// Parse `repro`'s CLI: command word, then flags. Errors (unknown flag,
/// missing or unparsable value) report what went wrong; `main` prints
/// the usage text and exits nonzero.
fn parse_args(mut args: impl Iterator<Item = String>) -> Result<(String, Opts), String> {
    let cmd = args.next().unwrap_or_else(|| "help".to_string());
    let mut opts = Opts::default();
    while let Some(a) = args.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--trees" => opts.trees = parse_value(grab("--trees")?, "--trees")?,
            "--depth" => opts.depth = parse_value(grab("--depth")?, "--depth")?,
            "--bins" => opts.bins = parse_value(grab("--bins")?, "--bins")?,
            "--scale" => opts.scale = parse_value(grab("--scale")?, "--scale")?,
            "--gpus" => opts.gpus = parse_value(grab("--gpus")?, "--gpus")?,
            "--seed" => opts.seed = parse_value(grab("--seed")?, "--seed")?,
            "--full" => opts.full = true,
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = grab("--out")?,
            "--baseline" => opts.baseline = Some(grab("--baseline")?),
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--sketch" => opts.sketch = parse_sketch(&grab("--sketch")?)?,
            "--trace" => opts.trace = Some(grab("--trace")?),
            "--batch" => opts.batch = parse_value(grab("--batch")?, "--batch")?,
            "--streams" => opts.streams = parse_value(grab("--streams")?, "--streams")?,
            "--prom" => opts.prom = Some(grab("--prom")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((cmd, opts))
}

fn main() {
    let (cmd, opts) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd.as_str() {
        "datasets" => datasets(),
        "table2" => table2_3(&opts, true, false),
        "table3" => table2_3(&opts, false, true),
        "table4" => table4(&opts),
        "fig4" => fig4(&opts),
        "fig5" => fig5(&opts),
        "fig6a" => fig6a(&opts),
        "fig6b" => fig6b(&opts),
        "fig7" => fig7(&opts),
        "ablations" => ablations(&opts),
        "hostbench" => hostbench(&opts),
        "sanitize" => {
            if !sanitize_cmd(&opts) {
                std::process::exit(1);
            }
        }
        "bench" => {
            if !bench_cmd(&opts) {
                std::process::exit(1);
            }
        }
        "serve" => {
            if !serve_cmd(&opts) {
                std::process::exit(1);
            }
        }
        "report" => {
            if !report_cmd(&opts) {
                std::process::exit(1);
            }
        }
        "chaos" => {
            if !chaos_cmd(&opts) {
                std::process::exit(1);
            }
        }
        "all" => {
            datasets();
            table2_3(&opts, true, true);
            table4(&opts);
            fig4(&opts);
            fig5(&opts);
            fig6a(&opts);
            fig6b(&opts);
            fig7(&opts);
            ablations(&opts);
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("error: unknown command `{other}`");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Table 2's dataset row order.
const TABLE2_ORDER: [PaperDataset; 9] = [
    PaperDataset::Mnist,
    PaperDataset::Caltech101,
    PaperDataset::MnistIn,
    PaperDataset::NusWide,
    PaperDataset::Otto,
    PaperDataset::SfCrime,
    PaperDataset::Helena,
    PaperDataset::Rf1,
    PaperDataset::Delicious,
];

/// Fig. 4–7's four representative datasets.
const FIG_DATASETS: [PaperDataset; 4] = [
    PaperDataset::Mnist,
    PaperDataset::Caltech101,
    PaperDataset::MnistIn,
    PaperDataset::NusWide,
];

fn datasets() {
    println!("== Table 1: datasets (paper shapes; harness scales are in bench_shape) ==");
    println!("{}", PaperDataset::table1());
}

fn table2_3(opts: &Opts, show_time: bool, show_metric: bool) {
    let cfg = opts.config();
    let systems = SystemId::gpu_systems();
    let mut time_rows_single = Vec::new();
    let mut time_rows_dual = Vec::new();
    let mut metric_rows = Vec::new();

    for ds in TABLE2_ORDER {
        let (train, test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let mut outcomes: Vec<RunOutcome> = systems
            .iter()
            .map(|&s| run_system(s, &name, &train, &test, &cfg))
            .collect();
        let dual = run_system(
            SystemId::OursMultiGpu(opts.gpus),
            &name,
            &train,
            &test,
            &cfg,
        );
        let mut t_row = vec![name.clone()];
        let mut m_row = vec![name.clone()];
        for o in &outcomes {
            t_row.push(fmt_secs(o.seconds));
            m_row.push(format!("{:.2}", o.metric));
        }
        time_rows_single.push(t_row);
        metric_rows.push(m_row);
        outcomes.push(dual);
        time_rows_dual.push(vec![
            name,
            fmt_secs(outcomes[outcomes.len() - 2].seconds),
            fmt_secs(outcomes.last().unwrap().seconds),
            format!(
                "{:.2}×",
                outcomes[outcomes.len() - 2].seconds / outcomes.last().unwrap().seconds
            ),
        ]);
        eprint!(".");
    }
    eprintln!();

    if show_time {
        println!("== Table 2 (single GPU): training time, simulated seconds ==");
        println!(
            "{}",
            render_table(
                &["Dataset", "catboost", "lightgbm", "xgboost", "sk-boost", "ours"],
                &time_rows_single
            )
        );
        println!("== Table 2 ({} GPUs): ours, single vs multi ==", opts.gpus);
        println!(
            "{}",
            render_table(
                &[
                    "Dataset",
                    "ours(1)",
                    &format!("ours({})", opts.gpus),
                    "speedup"
                ],
                &time_rows_dual
            )
        );
    }
    if show_metric {
        println!("== Table 3: test accuracy% / RMSE on GPU systems ==");
        println!(
            "{}",
            render_table(
                &["Dataset", "catboost", "lightgbm", "xgboost", "sk-boost", "ours"],
                &metric_rows
            )
        );
    }
}

fn table4(opts: &Opts) {
    let cfg = opts.config();
    let datasets = [
        PaperDataset::Mnist,
        PaperDataset::Caltech101,
        PaperDataset::MnistIn,
        PaperDataset::NusWide,
    ];
    let mut rows = Vec::new();
    for ds in datasets {
        let (train, test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let mofu = run_system(SystemId::MoFu, &name, &train, &test, &cfg);
        let mosp = run_system(SystemId::MoSp, &name, &train, &test, &cfg);
        let ours = run_system(SystemId::Ours, &name, &train, &test, &cfg);
        rows.push(vec![
            name,
            fmt_secs(mofu.seconds),
            fmt_secs(mosp.seconds),
            fmt_secs(ours.seconds),
            format!("{:.1}×", mosp.seconds / ours.seconds),
            format!("{:.2}", mofu.metric),
            format!("{:.2}", mosp.metric),
            format!("{:.2}", ours.metric),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("== Table 4: CPU (measured wall) vs ours (simulated) ==");
    println!("   NOTE: the speedup column divides host wall-clock by simulated GPU");
    println!("   seconds — a cross-domain ratio; see EXPERIMENTS.md for caveats.");
    println!(
        "{}",
        render_table(
            &["Dataset", "mo-fu(s)", "mo-sp(s)", "ours(s)", "vs mo-sp", "mo-fu", "mo-sp", "ours"],
            &rows
        )
    );
}

fn fig4(opts: &Opts) {
    let cfg = opts.config();
    let datasets = [
        PaperDataset::Delicious,
        PaperDataset::NusWide,
        PaperDataset::Mnist,
        PaperDataset::Caltech101,
        PaperDataset::MnistIn,
    ];
    let mut rows = Vec::new();
    for ds in datasets {
        let (train, _test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let report = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit_report(&train);
        let total = report.sim_seconds;
        let hist = report
            .sim
            .by_phase
            .get(&Phase::Histogram)
            .copied()
            .unwrap_or(0.0)
            * 1e-9;
        rows.push(vec![
            name,
            fmt_secs(total),
            fmt_secs(hist),
            format!("{:.1}%", 100.0 * hist / total),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("== Fig. 4: histogram building time vs total training time ==");
    println!(
        "{}",
        render_table(&["Dataset", "total(s)", "hist(s)", "hist share"], &rows)
    );
}

fn fig5(opts: &Opts) {
    let tree_counts: Vec<usize> = if opts.full {
        vec![100, 200, 300, 400, 500]
    } else {
        vec![10, 20, 30, 40, 50]
    };
    let systems = [
        SystemId::MoFu,
        SystemId::MoSp,
        SystemId::CatBoost,
        SystemId::LightGbm,
        SystemId::XgBoost,
        SystemId::SkBoost,
        SystemId::Ours,
    ];
    println!("== Fig. 5: training time vs #trees ==");
    for ds in FIG_DATASETS {
        let (train, test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let mut rows = Vec::new();
        for &t in &tree_counts {
            let mut cfg = opts.config();
            cfg.num_trees = t;
            let mut row = vec![format!("{t}")];
            for &s in &systems {
                let r = run_system(s, &name, &train, &test, &cfg);
                row.push(fmt_secs(r.seconds));
            }
            rows.push(row);
            eprint!(".");
        }
        eprintln!();
        println!("-- {name} --");
        println!(
            "{}",
            render_table(
                &[
                    "#trees", "mo-fu", "mo-sp", "catboost", "lightgbm", "xgboost", "sk-boost",
                    "ours"
                ],
                &rows
            )
        );
    }
}

fn fig6a(opts: &Opts) {
    let cfg = opts.config();
    let variants: [(&str, HistogramMethod, bool); 5] = [
        ("gmem", HistogramMethod::GlobalMemory, false),
        ("smem", HistogramMethod::SharedMemory, false),
        ("all-reduce", HistogramMethod::SortReduce, false),
        ("gmem+wo", HistogramMethod::GlobalMemory, true),
        ("smem+wo", HistogramMethod::SharedMemory, true),
    ];
    let mut rows = Vec::new();
    for ds in FIG_DATASETS {
        let (train, _test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let mut row = vec![name];
        for (_, method, packing) in variants {
            let mut c = cfg.clone();
            c.hist.method = method;
            c.hist.warp_packing = packing;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            row.push(fmt_secs(r.sim_seconds));
            eprint!(".");
        }
        rows.push(row);
    }
    eprintln!();
    println!("== Fig. 6a: histogram building methods (training time, simulated s) ==");
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "gmem",
                "smem",
                "all-reduce",
                "gmem+wo",
                "smem+wo"
            ],
            &rows
        )
    );
}

fn fig6b(opts: &Opts) {
    // Paper §4.3.3: synthetic datasets via the sklearn-style generator,
    // 100 trees of depth 6 (scaled here unless --full).
    let class_counts: Vec<usize> = if opts.full {
        vec![5, 50, 100, 250, 500]
    } else {
        vec![5, 25, 50, 100]
    };
    let mut cfg = opts.config();
    cfg.max_depth = if opts.full { 6 } else { 4 };
    let systems = [
        SystemId::CatBoost,
        SystemId::XgBoost,
        SystemId::SkBoost,
        SystemId::Ours,
    ];
    let n = (2000.0 * opts.scale) as usize;
    let mut rows = Vec::new();
    for &classes in &class_counts {
        let data = make_classification(&ClassificationSpec {
            instances: n.max(300),
            features: 20,
            classes,
            informative: 10,
            class_sep: 1.8,
            seed: opts.seed,
            ..Default::default()
        });
        let (train, test) = data.split(0.2, opts.seed);
        let mut row = vec![format!("{classes}")];
        for &s in &systems {
            let r = run_system(s, "synthetic", &train, &test, &cfg);
            row.push(fmt_secs(r.seconds));
            eprint!(".");
        }
        rows.push(row);
    }
    eprintln!();
    println!("== Fig. 6b: training time vs #classes (synthetic) ==");
    println!(
        "{}",
        render_table(
            &["#classes", "catboost", "xgboost", "sk-boost", "ours"],
            &rows
        )
    );
}

fn fig7(opts: &Opts) {
    let depths: Vec<usize> = if opts.full {
        vec![4, 5, 6, 7, 8]
    } else {
        vec![3, 4, 5, 6]
    };
    let systems = [
        SystemId::MoFu,
        SystemId::MoSp,
        SystemId::XgBoost,
        SystemId::SkBoost,
        SystemId::Ours,
    ];
    println!("== Fig. 7: training time vs tree depth ==");
    for ds in FIG_DATASETS {
        let (train, test, name) = bench_dataset(ds, opts.scale, opts.seed);
        let mut rows = Vec::new();
        for &depth in &depths {
            let mut cfg = opts.config();
            cfg.max_depth = depth;
            let mut row = vec![format!("{depth}")];
            for &s in &systems {
                let r = run_system(s, &name, &train, &test, &cfg);
                row.push(fmt_secs(r.seconds));
            }
            rows.push(row);
            eprint!(".");
        }
        eprintln!();
        println!("-- {name} --");
        println!(
            "{}",
            render_table(
                &["depth", "mo-fu", "mo-sp", "xgboost", "sk-boost", "ours"],
                &rows
            )
        );
    }

    // The paper notes CPU baselines "often run out of memory at greater
    // depths" and that our method "avoids out-of-memory failures
    // mostly": estimate full-paper-shape footprints per depth against a
    // 24 GB RTX 4090.
    println!("-- estimated device footprint at FULL paper shapes (24 GB card) --");
    let vram = 24usize * (1 << 30);
    let mut rows = Vec::new();
    for ds in [
        PaperDataset::Delicious,
        PaperDataset::Caltech101,
        PaperDataset::Mnist,
    ] {
        let s = ds.shape();
        // Our single reusable histogram buffer keeps the footprint flat
        // in depth (the paper: "our method remains stable"); a design
        // that retains per-frontier histograms (subtraction mode) shows
        // the depth blow-up that OOMs other systems.
        for (label, subtraction) in [("ours", false), ("retained-hist", true)] {
            let mut row = vec![format!("{} ({label})", s.name)];
            for &depth in &depths {
                let mut cfg = bench_config(100, depth, 256);
                cfg.max_depth = depth;
                cfg.hist.subtraction = subtraction;
                let est = gbdt_core::memory::estimate_training_bytes(
                    s.instances,
                    s.features,
                    s.outputs,
                    &cfg,
                );
                row.push(format!(
                    "{}{}",
                    gbdt_core::memory::human(est.total_bytes),
                    if est.fits(vram) { "" } else { " ⚠OOM" }
                ));
            }
            rows.push(row);
        }
    }
    let headers: Vec<String> = std::iter::once("Dataset".to_string())
        .chain(depths.iter().map(|d| format!("depth {d}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
}

fn ablations(opts: &Opts) {
    let base_cfg = opts.config();
    let (train, test, name) = bench_dataset(PaperDataset::Caltech101, opts.scale, opts.seed);
    println!("== Ablations (dataset: {name}) ==");

    // 1. Histogram-method selection: adaptive vs fixed.
    {
        let mut rows = Vec::new();
        for (label, method) in [
            ("adaptive", HistogramMethod::Adaptive),
            ("gmem", HistogramMethod::GlobalMemory),
            ("smem", HistogramMethod::SharedMemory),
            ("sort-reduce", HistogramMethod::SortReduce),
        ] {
            let mut c = base_cfg.clone();
            c.hist.method = method;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            rows.push(vec![label.to_string(), fmt_secs(r.sim_seconds)]);
        }
        println!("-- adaptive vs fixed histogram method --");
        println!("{}", render_table(&["method", "time(s)"], &rows));
    }

    // 2. Warp-level bin packing.
    {
        let mut rows = Vec::new();
        for packing in [false, true] {
            let mut c = base_cfg.clone();
            c.hist.warp_packing = packing;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            rows.push(vec![
                if packing { "packed (+wo)" } else { "unpacked" }.to_string(),
                fmt_secs(r.sim_seconds),
            ]);
        }
        println!("-- bin packing (§3.4.1) --");
        println!("{}", render_table(&["bins layout", "time(s)"], &rows));
    }

    // 3. Histogram subtraction.
    {
        let mut rows = Vec::new();
        for sub in [false, true] {
            let mut c = base_cfg.clone();
            c.hist.subtraction = sub;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            rows.push(vec![
                if sub {
                    "parent−child"
                } else {
                    "rebuild both"
                }
                .to_string(),
                fmt_secs(r.sim_seconds),
            ]);
        }
        println!("-- histogram subtraction --");
        println!("{}", render_table(&["children hists", "time(s)"], &rows));
    }

    // 4. Sparsity-aware accumulation.
    {
        let mut rows = Vec::new();
        for sparse in [false, true] {
            let mut c = base_cfg.clone();
            c.hist.sparse_aware = sparse;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            let m = gbdt_bench::model_metric(&r.model, &test);
            rows.push(vec![
                if sparse {
                    "CSC (sparse-aware)"
                } else {
                    "dense bins"
                }
                .to_string(),
                fmt_secs(r.sim_seconds),
                format!("{m:.2}"),
            ]);
        }
        println!("-- sparsity-aware histogram input (§3.2) --");
        println!("{}", render_table(&["storage", "time(s)", "metric"], &rows));
    }

    // 4b. Quantized (bf16) gradients: memory-traffic vs accuracy.
    {
        let mut rows = Vec::new();
        for quantized in [false, true] {
            let mut c = base_cfg.clone();
            c.hist.quantized_gradients = quantized;
            let r = GpuTrainer::new(Device::rtx4090(), c.clone()).fit_report(&train);
            let m = gbdt_bench::model_metric(&r.model, &test);
            let est =
                gbdt_core::memory::estimate_training_bytes(train.n(), train.m(), train.d(), &c);
            rows.push(vec![
                if quantized { "bf16" } else { "f32" }.to_string(),
                fmt_secs(r.sim_seconds),
                format!("{m:.2}"),
                gbdt_core::memory::human(est.gradient_bytes),
            ]);
        }
        println!("-- gradient precision --");
        println!(
            "{}",
            render_table(&["g/h storage", "time(s)", "metric", "grad bytes"], &rows)
        );
    }

    // 5. Adaptive segments-per-block constant C (§3.1.3).
    {
        let mut rows = Vec::new();
        for c_val in [0.0, 1.0, 4.0, 16.0] {
            let mut c = base_cfg.clone();
            c.segments_per_block_c = c_val;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            rows.push(vec![format!("C={c_val}"), fmt_secs(r.sim_seconds)]);
        }
        println!("-- segments-per-block constant (§3.1.3) --");
        println!("{}", render_table(&["C", "time(s)"], &rows));
    }

    // 5b. CUDA-stream overlap of per-node histogram kernels.
    {
        let mut rows = Vec::new();
        for streams in [1usize, 2, 4, 8] {
            let mut c = base_cfg.clone();
            c.streams = streams;
            let r = GpuTrainer::new(Device::rtx4090(), c).fit_report(&train);
            rows.push(vec![format!("{streams}"), fmt_secs(r.sim_seconds)]);
        }
        println!("-- stream-parallel node histograms --");
        println!("{}", render_table(&["streams", "time(s)"], &rows));
    }

    // 5c. Exclusive feature bundling (EFB) on a sparse dataset.
    {
        let (sparse_train, sparse_test, ds_name) =
            bench_dataset(PaperDataset::Delicious, opts.scale, opts.seed);
        let plain = GpuTrainer::new(Device::rtx4090(), base_cfg.clone()).fit_report(&sparse_train);
        let plain_metric = gbdt_bench::model_metric(&plain.model, &sparse_test);

        let csc = gbdt_data::CscMatrix::from_dense(sparse_train.features());
        let plan = gbdt_data::bundling::plan_bundles(&csc, 0.01);
        let bundled_features = plan.apply(sparse_train.features());
        let bundled_train = gbdt_data::Dataset::new(
            bundled_features,
            sparse_train.targets().to_vec(),
            sparse_train.d(),
            sparse_train.task(),
        );
        let bundled_test = gbdt_data::Dataset::new(
            plan.apply(sparse_test.features()),
            sparse_test.targets().to_vec(),
            sparse_test.d(),
            sparse_test.task(),
        );
        let bundled =
            GpuTrainer::new(Device::rtx4090(), base_cfg.clone()).fit_report(&bundled_train);
        let bundled_metric = gbdt_bench::model_metric(&bundled.model, &bundled_test);
        println!("-- exclusive feature bundling ({ds_name}) --");
        println!(
            "{}",
            render_table(
                &["features", "columns", "time(s)", "metric"],
                &[
                    vec![
                        "raw".into(),
                        format!("{}", sparse_train.m()),
                        fmt_secs(plain.sim_seconds),
                        format!("{plain_metric:.3}"),
                    ],
                    vec![
                        "bundled".into(),
                        format!("{}", plan.num_bundles()),
                        fmt_secs(bundled.sim_seconds),
                        format!("{bundled_metric:.3}"),
                    ],
                ]
            )
        );
    }

    // 5d. Device generations (the paper's §4.3 sensitivity study ran
    // on an RTX 3090; the main results on RTX 4090s).
    {
        use gpusim::DeviceProps;
        let mut rows = Vec::new();
        for (name, props) in [
            ("RTX 3090", DeviceProps::rtx3090()),
            ("RTX 4090", DeviceProps::rtx4090()),
            ("A100", DeviceProps::a100()),
            ("H100", DeviceProps::h100()),
        ] {
            let r = GpuTrainer::new(Device::new(0, props), base_cfg.clone()).fit_report(&train);
            rows.push(vec![name.to_string(), fmt_secs(r.sim_seconds)]);
        }
        println!("-- device generations --");
        println!("{}", render_table(&["device", "time(s)"], &rows));
    }

    // 6. Multi-GPU scaling (§3.4.2), feature-parallel vs data-parallel.
    {
        use gbdt_core::MultiGpuStrategy;
        let mut rows = Vec::new();
        let mut t1 = 0.0;
        for k in [1usize, 2, 4, 8] {
            let fp = MultiGpuTrainer::with_strategy(
                DeviceGroup::rtx4090s(k),
                base_cfg.clone(),
                MultiGpuStrategy::FeatureParallel,
            )
            .fit_report(&train);
            let dp = MultiGpuTrainer::with_strategy(
                DeviceGroup::rtx4090s(k),
                base_cfg.clone(),
                MultiGpuStrategy::DataParallel,
            )
            .fit_report(&train);
            if k == 1 {
                t1 = fp.sim_seconds;
            }
            rows.push(vec![
                format!("{k}"),
                fmt_secs(fp.sim_seconds),
                format!("{:.2}×", t1 / fp.sim_seconds),
                fmt_secs(dp.sim_seconds),
            ]);
        }
        println!("-- multi-GPU scaling: feature-parallel (paper) vs data-parallel --");
        println!(
            "{}",
            render_table(&["#GPUs", "feat-par", "speedup", "data-par"], &rows)
        );
        println!(
            "   (data-parallel all-reduces the full m×bins×d histogram per level —\n\
             \x20   the communication blow-up that motivates the paper's feature partitioning)\n"
        );
    }
}

/// Host-side cost of the level-wise grower on a synthetic multi-output
/// workload: `host_seconds` (wall-clock of the simulation itself) for
/// every combination of the subtraction trick and the
/// `parallel_level_hist` toggle. Simulated seconds are printed next to
/// each row — identical within a subtraction setting by construction
/// (the toggle moves host arithmetic only, never device charges).
fn hostbench(opts: &Opts) {
    let spec = ClassificationSpec {
        instances: (4_000.0 * opts.scale).round() as usize,
        features: 64,
        classes: 24,
        informative: 24,
        class_sep: 1.2,
        seed: opts.seed,
        ..Default::default()
    };
    let train = make_classification(&spec);
    let mut rows = Vec::new();
    for subtraction in [false, true] {
        for parallel in [false, true] {
            let mut cfg = opts.config();
            cfg.max_depth = cfg.max_depth.max(8); // deep frontier: many live hists
            cfg.hist.subtraction = subtraction;
            cfg.parallel_level_hist = parallel;
            // Median of 3 runs to steady the wall-clock.
            let mut host = Vec::new();
            let mut sim = 0.0;
            for _ in 0..3 {
                let r = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit_report(&train);
                host.push(r.host_seconds);
                sim = r.sim_seconds;
            }
            host.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.push(vec![
                if subtraction {
                    "parent−child"
                } else {
                    "rebuild both"
                }
                .to_string(),
                if parallel { "parallel" } else { "serial" }.to_string(),
                format!("{:.3}", host[1]),
                fmt_secs(sim),
            ]);
        }
    }
    println!(
        "== hostbench: level histogram build, n={} m={} d={} ==",
        spec.instances, spec.features, spec.classes
    );
    println!(
        "{}",
        render_table(
            &["children hists", "level build", "host(s)", "sim(s)"],
            &rows
        )
    );
}

/// `repro sanitize` — run one boosting round per histogram method under
/// full memcheck+racecheck, print the per-kernel violation report, then
/// replay one round twice as a determinism audit. Returns `false` (exit
/// 1 from `main`) if any violation or divergence is found.
fn sanitize_cmd(opts: &Opts) -> bool {
    use gpusim::sanitize::{audit_determinism, digest_f32s};
    use gpusim::SanitizeMode;

    let ds = make_classification(&ClassificationSpec {
        instances: (600.0 * opts.scale).max(50.0) as usize,
        features: 10,
        classes: 5,
        informative: 8,
        class_sep: 1.5,
        flip_y: 0.02,
        seed: opts.seed,
        ..Default::default()
    });
    let base = opts.config().with_trees(1);

    println!("== sanitize: one boosting round, full memcheck+racecheck ==");
    let mut ok = true;
    for (label, method) in [
        ("gmem", HistogramMethod::GlobalMemory),
        ("smem", HistogramMethod::SharedMemory),
        ("sort-reduce", HistogramMethod::SortReduce),
        ("adaptive", HistogramMethod::Adaptive),
    ] {
        let device = Device::rtx4090();
        device.enable_sanitizer(SanitizeMode::Full);
        let _ = GpuTrainer::new(device.clone(), base.clone().with_hist_method(method)).fit(&ds);
        let report = device.sanitize_report().expect("sanitizer enabled");
        let verdict = if report.is_clean() {
            "clean"
        } else {
            "VIOLATIONS"
        };
        println!("-- method {label}: {verdict} --");
        println!("{}", report.table());
        ok &= report.is_clean();
    }

    println!("== sanitize: sketched smoke train (sketch mode × hist method) ==");
    // Every sketch mode crossed with every histogram method, one tree
    // each, under full memcheck+racecheck: the sketch kernels (column
    // norms, top-k select, gather, projection) and the full-d leaf
    // refit all carry sanitizer traces that must come back clean.
    let sketch_k = 2; // d = 5 outputs above → a genuine k < d sketch
    for (slabel, sketch) in [
        ("top", OutputSketch::TopOutputs(sketch_k)),
        ("rand", OutputSketch::RandomSampling(sketch_k)),
        ("proj", OutputSketch::RandomProjection(sketch_k)),
    ] {
        for (mlabel, method) in [
            ("gmem", HistogramMethod::GlobalMemory),
            ("smem", HistogramMethod::SharedMemory),
            ("sort-reduce", HistogramMethod::SortReduce),
            ("adaptive", HistogramMethod::Adaptive),
        ] {
            let device = Device::rtx4090();
            device.enable_sanitizer(SanitizeMode::Full);
            let _ = GpuTrainer::new(
                device.clone(),
                base.clone().with_hist_method(method).with_sketch(sketch),
            )
            .fit(&ds);
            let report = device.sanitize_report().expect("sanitizer enabled");
            let verdict = if report.is_clean() {
                "clean"
            } else {
                "VIOLATIONS"
            };
            println!("-- sketch {slabel}{sketch_k} × {mlabel}: {verdict} --");
            if !report.is_clean() {
                println!("{}", report.table());
            }
            ok &= report.is_clean();
        }
    }

    println!("== sanitize: determinism audit (adaptive, 2 runs) ==");
    let props = Device::rtx4090().props().clone();
    let cfg = base.with_hist_method(HistogramMethod::Adaptive);
    let audit = audit_determinism(&props, |dev| {
        let model = GpuTrainer::new(dev.clone(), cfg.clone()).fit(&ds);
        digest_f32s(&model.predict(ds.features()))
    });
    println!("{}", audit.table());
    ok &= audit.is_deterministic();

    println!("== sanitize: determinism audit (adaptive + top2 sketch, 2 runs) ==");
    let cfg_sketch = opts
        .config()
        .with_trees(1)
        .with_hist_method(HistogramMethod::Adaptive)
        .with_sketch(OutputSketch::TopOutputs(2));
    let audit = audit_determinism(&props, |dev| {
        let model = GpuTrainer::new(dev.clone(), cfg_sketch.clone()).fit(&ds);
        digest_f32s(&model.predict(ds.features()))
    });
    println!("{}", audit.table());
    ok &= audit.is_deterministic();

    if ok {
        println!("sanitize: OK — zero violations, deterministic replay");
    } else {
        println!("sanitize: FAILED — see report above");
    }
    ok
}

/// Fault-injection matrix: seeded fault plans driven through single-
/// and multi-GPU training, printing per-outcome counts and enforcing
/// the chaos contract — every completed run bit-identical to the
/// fault-free reference, every failure a typed [`TrainError`].
fn chaos_cmd(opts: &Opts) -> bool {
    use gbdt_core::{Checkpoint, RetryPolicy, TrainError};
    use gpusim::FaultPlan;

    let ds = make_classification(&ClassificationSpec {
        instances: (400.0 * opts.scale).max(50.0) as usize,
        features: 10,
        classes: 4,
        informative: 7,
        class_sep: 1.5,
        seed: opts.seed,
        ..Default::default()
    });
    let cfg = opts.config().with_retry(RetryPolicy::retries(2));
    let (single_seeds, multi_seeds) = if opts.smoke {
        (30u64, 10u64)
    } else {
        (120, 40)
    };
    let mut ok = true;

    println!("== chaos: single-GPU seeded sweep ({single_seeds} plans) ==");
    let reference = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
    let ref_pred = reference.predict(ds.features());
    let (mut clean, mut recovered, mut exhausted, mut lost, mut diverged) = (0u32, 0, 0, 0, 0);
    for seed in 0..single_seeds {
        let device = Device::rtx4090();
        device.enable_faults(FaultPlan::seeded(opts.seed.wrapping_add(seed), 150));
        let trainer = GpuTrainer::try_new(device.clone(), cfg.clone()).expect("valid config");
        match trainer.try_fit(&ds) {
            Ok(model) => {
                if model.predict(ds.features()) == ref_pred {
                    let report = device.fault_report().expect("injector attached");
                    if report.transient_injected > 0 {
                        recovered += 1;
                    } else {
                        clean += 1;
                    }
                } else {
                    diverged += 1;
                }
            }
            Err(TrainError::RetriesExhausted { .. }) => exhausted += 1,
            Err(TrainError::DeviceLost { .. }) => lost += 1,
            Err(e) => {
                println!("  seed {seed}: UNEXPECTED error class: {e}");
                diverged += 1;
            }
        }
    }
    println!(
        "  clean {clean}  recovered {recovered}  retries-exhausted {exhausted}  \
         device-lost {lost}  DIVERGED {diverged}"
    );
    ok &= diverged == 0;

    println!(
        "== chaos: multi-GPU seeded sweep ({multi_seeds} plans × {} GPUs) ==",
        opts.gpus
    );
    let reference = MultiGpuTrainer::new(DeviceGroup::rtx4090s(opts.gpus), cfg.clone()).fit(&ds);
    let ref_pred = reference.predict(ds.features());
    let (mut survived, mut degraded, mut failed, mut diverged) = (0u32, 0, 0, 0);
    for seed in 0..multi_seeds {
        let group = DeviceGroup::rtx4090s(opts.gpus);
        for (i, dev) in group.devices().iter().enumerate() {
            let s = opts.seed.wrapping_add(seed * 31 + i as u64);
            dev.enable_faults(FaultPlan::seeded(s, 120));
        }
        let trainer = MultiGpuTrainer::try_new(group.clone(), cfg.clone()).expect("valid config");
        match trainer.try_fit(&ds) {
            Ok(model) => {
                if model.predict(ds.features()) == ref_pred {
                    let losses: u64 = group
                        .devices()
                        .iter()
                        .filter_map(|d| d.fault_report())
                        .map(|r| r.device_lost)
                        .sum();
                    if losses > 0 {
                        degraded += 1;
                    } else {
                        survived += 1;
                    }
                } else {
                    diverged += 1;
                }
            }
            Err(
                TrainError::RetriesExhausted { .. }
                | TrainError::DeviceLost { .. }
                | TrainError::AllDevicesLost { .. },
            ) => failed += 1,
            Err(e) => {
                println!("  seed {seed}: UNEXPECTED error class: {e}");
                diverged += 1;
            }
        }
    }
    println!(
        "  intact {survived}  degraded {degraded}  typed-failure {failed}  DIVERGED {diverged}"
    );
    ok &= diverged == 0;

    println!("== chaos: checkpoint/resume smoke ==");
    let trainer = GpuTrainer::try_new(Device::rtx4090(), cfg.clone()).expect("valid config");
    match trainer.try_fit_checkpointed(&ds) {
        Ok((full, checkpoints)) => {
            let mid = &checkpoints[checkpoints.len() / 2];
            let roundtrip = Checkpoint::from_bytes(&mid.to_bytes());
            match roundtrip
                .and_then(|ck| gbdt_core::Model::resume_from(Device::rtx4090(), &ck, &ds))
            {
                Ok(resumed) if resumed.model.trees == full.model.trees => {
                    println!(
                        "  resume from tree {} of {}: bit-identical",
                        checkpoints.len() / 2 + 1,
                        checkpoints.len()
                    );
                }
                Ok(_) => {
                    println!("  resume DIVERGED from the uninterrupted run");
                    ok = false;
                }
                Err(e) => {
                    println!("  resume FAILED: {e}");
                    ok = false;
                }
            }
        }
        Err(e) => {
            println!("  checkpointed fit FAILED: {e}");
            ok = false;
        }
    }

    if ok {
        println!("chaos: OK — all completions bit-identical, all failures typed");
    } else {
        println!("chaos: FAILED — see report above");
    }
    ok
}

/// The machine-readable perf/quality grid behind `BENCH_repro.json`:
/// per histogram method × dataset, reporting *deterministic* simulated
/// phase breakdowns + hist share + quality (and informational host
/// wall-clock). With `--baseline F --check`, diff-gates the run against
/// the committed baseline and returns `false` on drift.
fn bench_cmd(opts: &Opts) -> bool {
    use gbdt_bench::metric_of;
    use gbdt_bench::report::{diff_gate, make_record, BenchReport, BenchSetup};

    // Grid: smoke keeps a clf/multilabel/reg triple at reduced scale so
    // CI stays fast; the regular grid runs the Fig. 4 datasets plus Rf1
    // for regression coverage.
    let (datasets, scale_mult, mut cfg) = if opts.smoke {
        let grid = vec![
            PaperDataset::Mnist,
            PaperDataset::NusWide,
            PaperDataset::Rf1,
        ];
        (grid, opts.scale * 0.25, bench_config(3, 4, 32))
    } else {
        let grid = vec![
            PaperDataset::Mnist,
            PaperDataset::Caltech101,
            PaperDataset::MnistIn,
            PaperDataset::NusWide,
            PaperDataset::Rf1,
        ];
        (grid, opts.scale, opts.config())
    };
    cfg.streams = opts.streams;
    let setup = BenchSetup {
        trees: cfg.num_trees as u64,
        depth: cfg.max_depth as u64,
        bins: cfg.max_bins as u64,
        scale: scale_mult,
        seed: opts.seed,
        smoke: opts.smoke,
        streams: opts.streams as u64,
    };
    let methods = [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ];

    println!("== bench: perf/quality grid (hist method × dataset) ==");
    println!(
        "{:<12} {:<10} {:<8} {:>10} {:>10} {:>9} {:>12}",
        "dataset", "method", "sketch", "sim (s)", "host (s)", "hist%", "metric"
    );
    let mut records = Vec::new();
    let mut trace_pending = opts.trace.as_deref();
    for ds in datasets {
        let (train, test, name) = bench_dataset(ds, scale_mult, opts.seed);
        for method in methods {
            let device = Device::rtx4090();
            let tracing_this_run = trace_pending.is_some();
            if tracing_this_run {
                device.enable_profiler();
            }
            let r = GpuTrainer::new(
                device.clone(),
                cfg.clone()
                    .with_hist_method(method)
                    .with_sketch(opts.sketch),
            )
            .fit_report(&train);
            if let Some(path) = trace_pending.take() {
                let trace = device.chrome_trace().expect("profiler enabled");
                if let Err(e) = std::fs::write(path, trace) {
                    eprintln!("error: cannot write trace {path}: {e}");
                    return false;
                }
                println!("(wrote Chrome trace of {name}/{method:?} to {path})");
            }
            let (metric_name, metric) =
                metric_of(train.task(), &r.model.predict(test.features()), &test);
            let rec = make_record(
                &name,
                method,
                opts.sketch.label().as_str(),
                &r.sim,
                r.host_seconds,
                metric_name,
                metric,
            );
            println!(
                "{:<12} {:<10} {:<8} {:>10.4} {:>10.3} {:>8.1}% {:>12.4}",
                rec.dataset,
                rec.hist_method,
                rec.sketch,
                rec.sim_seconds,
                rec.host_seconds,
                100.0 * rec.hist_share,
                rec.metric
            );
            records.push(rec);
        }
    }

    // Wide-output sketch comparison (the issue's headline number): on
    // the widest-output grid dataset (d ≥ 16) train the adaptive method
    // under every sketch mode at k = d/4 and report the simulated-ns
    // reduction against a dense reference. Runs at the *unreduced*
    // `--scale` even under `--smoke` (the smoke grid floors NUS-WIDE at
    // 300 instances, where fixed per-tree overheads mask the n × d → n
    // × k histogram saving); the dataset is small enough that this
    // stays CI-fast. Only meaningful when the main grid ran dense
    // (`--sketch none`, the default).
    if opts.sketch.is_none() {
        let ds = PaperDataset::NusWide;
        let (train, test, name) = bench_dataset(ds, opts.scale, opts.seed);
        // Distinct record identity: the main grid may carry the same
        // (dataset, method, sketch) triple at the reduced smoke scale.
        let name = format!("{name}@1x");
        let d = train.d();
        let k = (d / 4).max(1);
        let dense_dev = Device::rtx4090();
        let dense = GpuTrainer::new(
            dense_dev.clone(),
            cfg.clone().with_hist_method(HistogramMethod::Adaptive),
        )
        .fit_report(&train);
        let (dense_metric_name, dense_metric) =
            metric_of(train.task(), &dense.model.predict(test.features()), &test);
        let dense_rec = make_record(
            &name,
            HistogramMethod::Adaptive,
            "none",
            &dense.sim,
            dense.host_seconds,
            dense_metric_name,
            dense_metric,
        );
        let dense_sim = dense_rec.sim_seconds;
        println!("== bench: sketch comparison ({name}, adaptive, d={d}, k={k}) ==");
        println!(
            "{:<12} {:<10} {:<8} {:>10.4} {:>10.3} {:>8.1}% {:>12.4}",
            dense_rec.dataset,
            dense_rec.hist_method,
            dense_rec.sketch,
            dense_rec.sim_seconds,
            dense_rec.host_seconds,
            100.0 * dense_rec.hist_share,
            dense_rec.metric
        );
        records.push(dense_rec);
        for sketch in [
            OutputSketch::TopOutputs(k),
            OutputSketch::RandomSampling(k),
            OutputSketch::RandomProjection(k),
        ] {
            let device = Device::rtx4090();
            let r = GpuTrainer::new(
                device.clone(),
                cfg.clone()
                    .with_hist_method(HistogramMethod::Adaptive)
                    .with_sketch(sketch),
            )
            .fit_report(&train);
            let (metric_name, metric) =
                metric_of(train.task(), &r.model.predict(test.features()), &test);
            let rec = make_record(
                &name,
                HistogramMethod::Adaptive,
                sketch.label().as_str(),
                &r.sim,
                r.host_seconds,
                metric_name,
                metric,
            );
            let speedup = if dense_sim > 0.0 {
                100.0 * (1.0 - rec.sim_seconds / dense_sim)
            } else {
                0.0
            };
            println!(
                "{:<12} {:<10} {:<8} {:>10.4} {:>10.3} {:>8.1}% {:>12.4}   (sim-ns -{speedup:.1}%)",
                rec.dataset,
                rec.hist_method,
                rec.sketch,
                rec.sim_seconds,
                rec.host_seconds,
                100.0 * rec.hist_share,
                rec.metric
            );
            records.push(rec);
        }
    }
    // Multi-GPU stream overlap: the headline win of the stream/event
    // timeline. Train the data-parallel strategy (per-level full-
    // histogram all-reduce — the communication-heaviest path) serial vs
    // streamed on the same device group; the streamed schedule must
    // produce the identical model while the all-reduce drains behind
    // the next level's histogram builds. Savings are printed (and land
    // in each record's `overlap_saved_ns` when `--streams > 1`), never
    // gated.
    {
        use gbdt_core::MultiGpuStrategy;
        let gpus = opts.gpus.max(2);
        let streams = opts.streams.max(4);
        let (train, _, name) = bench_dataset(PaperDataset::NusWide, scale_mult, opts.seed);
        let serial = MultiGpuTrainer::with_strategy(
            DeviceGroup::rtx4090s(gpus),
            cfg.clone().with_streams(1),
            MultiGpuStrategy::DataParallel,
        )
        .fit_report(&train);
        let streamed = MultiGpuTrainer::with_strategy(
            DeviceGroup::rtx4090s(gpus),
            cfg.clone().with_streams(streams),
            MultiGpuStrategy::DataParallel,
        )
        .fit_report(&train);
        if serial.model.predict(train.features()) != streamed.model.predict(train.features()) {
            eprintln!("error: streamed multi-GPU schedule changed the model on {name}");
            return false;
        }
        let cut = 100.0 * (1.0 - streamed.sim_seconds / serial.sim_seconds);
        println!(
            "== bench: multi-GPU stream overlap ({name}, data-parallel, {gpus} GPUs) ==\n\
             serial {:.4}s -> {streams} streams {:.4}s  (sim-ns -{cut:.1}%, overlap_saved {:.0} ns; models bit-identical)",
            serial.sim_seconds, streamed.sim_seconds, streamed.sim.overlap_saved_ns
        );
    }

    let report = BenchReport {
        schema_version: gbdt_bench::report::BENCH_SCHEMA_VERSION,
        device: Device::rtx4090().props().name.clone(),
        setup,
        records,
    };
    // Ledger health: report-never-gate. Shed records or clamped
    // negative charges deserve a human's eye on every run, baseline or
    // not, without ever failing CI.
    for note in gbdt_bench::report::health_notes(&report) {
        println!("bench: note — {note}");
    }
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        return false;
    }
    println!("(wrote {} records to {})", report.records.len(), opts.out);

    // Schema self-validation: the freshly written file must round-trip
    // through the strict reader (schema version + full phase-key set).
    match std::fs::read_to_string(&opts.out).map_err(|e| e.to_string()) {
        Ok(text) => {
            if let Err(e) = BenchReport::from_json(&text) {
                eprintln!("error: {} failed schema validation: {e}", opts.out);
                return false;
            }
        }
        Err(e) => {
            eprintln!("error: cannot re-read {}: {e}", opts.out);
            return false;
        }
    }

    if opts.update_baseline {
        let Some(path) = &opts.baseline else {
            eprintln!("error: --update-baseline requires --baseline FILE");
            return false;
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot rewrite baseline {path}: {e}");
            return false;
        }
        println!("(rewrote baseline {path} from this run)");
    }

    if opts.check {
        let Some(path) = &opts.baseline else {
            eprintln!("error: --check requires --baseline FILE");
            return false;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return false;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: invalid baseline {path}: {e}");
                return false;
            }
        };
        for note in gbdt_bench::report::overlap_notes(&report, &baseline) {
            println!("bench: note — {note}");
        }
        let fails = diff_gate(&report, &baseline);
        if fails.is_empty() {
            println!("bench: OK — within tolerance of {path}");
        } else {
            eprintln!("bench: FAILED regression gate vs {path}:");
            for f in &fails {
                eprintln!("  {f}");
            }
            return false;
        }
    }
    true
}

/// `repro serve`: the batched-serving benchmark. Trains a NUS-WIDE-
/// shaped model, compares `predict_on_device` under both
/// parallelization schemes (the tree-level scheme must charge strictly
/// more — it pays the T×n×d partial reduction), compiles + validates +
/// uploads the ensemble, then drives a burst of single-row submissions
/// through the `BatchServer` at `max_batch` 1 vs `--batch`, checking
/// bit-identity against `Model::predict` throughout.
fn serve_cmd(opts: &Opts) -> bool {
    use gbdt_bench::serve_report::{
        serve_diff_gate, serve_self_check, ServeRecord, ServeReport, ServeSetup,
        SERVE_SCHEMA_VERSION,
    };
    use gbdt_core::predict::predict_on_device;
    use gbdt_core::{BatchConfig, BatchServer, DeviceEnsemble, PredictMode, ServedBatch};

    if opts.batch == 0 {
        eprintln!("error: --batch must be positive");
        return false;
    }
    let (scale_mult, cfg) = if opts.smoke {
        (opts.scale * 0.25, bench_config(3, 4, 32))
    } else {
        (opts.scale, opts.config())
    };
    let (train, test, name) = bench_dataset(PaperDataset::NusWide, scale_mult, opts.seed);
    let model = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&train);
    let reference = model.predict(test.features());
    let n = test.features().rows();
    let d = model.d;
    let mut bit_identical = true;

    println!("== serve: batched serving of a compiled ensemble ({name}) ==");

    // Offline scheme comparison on fresh devices. The tree-level column
    // existing strictly above the instance-level one is the fixed
    // under-charge made visible.
    let mut predict_ns = Vec::new();
    for mode in [PredictMode::InstanceLevel, PredictMode::TreeLevel] {
        let device = Device::rtx4090();
        let t0 = device.now_ns();
        let scores = predict_on_device(&device, &model.trees, &model.base, test.features(), mode);
        bit_identical &= scores == reference;
        predict_ns.push(device.now_ns() - t0);
    }
    println!(
        "predict_on_device ({n} rows, d={d}): instance {:.0} ns, tree {:.0} ns ({:.2}x)",
        predict_ns[0],
        predict_ns[1],
        predict_ns[1] / predict_ns[0].max(1.0)
    );

    let compiled = model.compile();
    if let Err(e) = compiled.validate() {
        eprintln!("error: compiled ensemble failed validation: {e}");
        return false;
    }

    let runs = [
        ("single", "instance", 1usize, PredictMode::InstanceLevel),
        (
            "batched",
            "instance",
            opts.batch,
            PredictMode::InstanceLevel,
        ),
        ("batched", "tree", opts.batch, PredictMode::TreeLevel),
    ];
    let mut records = Vec::new();
    let mut table_rows = Vec::new();
    for (mode_key, predict_key, max_batch, pmode) in runs {
        let device = Device::rtx4090();
        let ens = DeviceEnsemble::upload(device.clone(), &compiled);
        let upload_ns = device
            .summary()
            .by_phase
            .get(&Phase::Transfer)
            .copied()
            .unwrap_or(0.0);
        let resident_bytes = ens.resident_bytes() as u64;
        let mut server = match BatchServer::new(
            ens,
            BatchConfig {
                max_batch,
                mode: pmode,
                ..BatchConfig::default()
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: invalid batch config: {e}");
                return false;
            }
        };
        // Burst arrival: every row is already queued when the upload
        // finishes, so throughput measures pure kernel efficiency.
        let t0 = device.now_ns();
        let mut out = vec![0.0f32; n * d];
        let mut deliver = |b: ServedBatch| {
            let start = b.first_id as usize * d;
            out[start..start + b.scores.len()].copy_from_slice(&b.scores);
        };
        for i in 0..n {
            for b in server.submit(t0, test.features().row(i)) {
                deliver(b);
            }
        }
        if let Some(b) = server.flush() {
            deliver(b);
        }
        bit_identical &= out == reference;
        let stats = server.stats();
        let serve_ns = device
            .summary()
            .by_phase
            .get(&Phase::Serve)
            .copied()
            .unwrap_or(0.0);
        table_rows.push(vec![
            mode_key.to_string(),
            predict_key.to_string(),
            format!("{max_batch}"),
            format!("{}", stats.batches),
            format!("{:.0}", stats.p50_ns),
            format!("{:.0}", stats.p99_ns),
            format!("{:.0}", stats.throughput_rps),
        ]);
        records.push(ServeRecord {
            dataset: name.clone(),
            mode: mode_key.to_string(),
            predict: predict_key.to_string(),
            rows: n as u64,
            batches: stats.batches,
            latency_p50_ns: stats.p50_ns,
            latency_p99_ns: stats.p99_ns,
            throughput_rps: stats.throughput_rps,
            serve_ns,
            upload_ns,
            resident_bytes,
        });
    }
    println!(
        "{}",
        render_table(
            &["mode", "predict", "batch", "batches", "p50 (ns)", "p99 (ns)", "rows/s"],
            &table_rows
        )
    );
    println!(
        "resident ensemble: {} bytes (upload {:.0} ns)",
        records[0].resident_bytes, records[0].upload_ns
    );
    let batched_speedup =
        records[1].throughput_rps / records[0].throughput_rps.max(f64::MIN_POSITIVE);
    println!(
        "batched speedup: {batched_speedup:.1}x over single-row; bit-identical: {bit_identical}"
    );

    let report = ServeReport {
        schema_version: SERVE_SCHEMA_VERSION,
        device: Device::rtx4090().props().name.clone(),
        setup: ServeSetup {
            trees: cfg.num_trees as u64,
            depth: cfg.max_depth as u64,
            bins: cfg.max_bins as u64,
            scale: scale_mult,
            seed: opts.seed,
            smoke: opts.smoke,
            batch: opts.batch as u64,
            rows: n as u64,
        },
        instance_predict_ns: predict_ns[0],
        tree_predict_ns: predict_ns[1],
        batched_speedup,
        bit_identical,
        records,
    };

    let fails = serve_self_check(&report);
    if !fails.is_empty() {
        eprintln!("serve: FAILED self-check:");
        for f in &fails {
            eprintln!("  {f}");
        }
        return false;
    }

    // `--out` defaults to the bench report's name; serve writes its own
    // file unless the flag was passed explicitly.
    let out = if opts.out == "BENCH_repro.json" {
        "SERVE_repro.json".to_string()
    } else {
        opts.out.clone()
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {out}: {e}");
        return false;
    }
    println!("(wrote {} records to {out})", report.records.len());
    match std::fs::read_to_string(&out).map_err(|e| e.to_string()) {
        Ok(text) => {
            if let Err(e) = ServeReport::from_json(&text) {
                eprintln!("error: {out} failed schema validation: {e}");
                return false;
            }
        }
        Err(e) => {
            eprintln!("error: cannot re-read {out}: {e}");
            return false;
        }
    }

    if opts.update_baseline {
        let Some(path) = &opts.baseline else {
            eprintln!("error: --update-baseline requires --baseline FILE");
            return false;
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot rewrite baseline {path}: {e}");
            return false;
        }
        println!("(rewrote baseline {path} from this run)");
    }

    if opts.check {
        let Some(path) = &opts.baseline else {
            eprintln!("error: --check requires --baseline FILE");
            return false;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return false;
            }
        };
        let baseline = match ServeReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: invalid baseline {path}: {e}");
                return false;
            }
        };
        let fails = serve_diff_gate(&report, &baseline);
        if fails.is_empty() {
            println!("serve: OK — within tolerance of {path}");
        } else {
            eprintln!("serve: FAILED regression gate vs {path}:");
            for f in &fails {
                eprintln!("  {f}");
            }
            return false;
        }
    }
    true
}

/// `repro report`: the unified observability surface. One instrumented
/// run — training plus a serving burst on the *same* device — with the
/// telemetry registry, hierarchical profiler and (eventless) fault
/// injector all attached, then a bitwise reconciliation of the
/// registry's `phase_ns` against the ledger's `by_phase`: the registry
/// observes every charge through the same clamp, in the same order, so
/// the two accumulations must agree to the last bit or the telemetry
/// layer has perturbed or missed something. The joined report lands as
/// a human-readable set of tables and one machine-readable JSON
/// document under `TELEMETRY_SCHEMA_VERSION`.
fn report_cmd(opts: &Opts) -> bool {
    use gbdt_core::{BatchConfig, BatchServer, DeviceEnsemble, PredictMode, ServedBatch};
    use gpusim::{FaultPlan, TELEMETRY_SCHEMA_VERSION};
    use serde::{Serialize, Value};

    if opts.batch == 0 {
        eprintln!("error: --batch must be positive");
        return false;
    }
    let (scale_mult, mut cfg) = if opts.smoke {
        (opts.scale * 0.25, bench_config(3, 4, 32))
    } else {
        (opts.scale, opts.config())
    };
    cfg.streams = opts.streams;
    let (train, test, name) = bench_dataset(PaperDataset::NusWide, scale_mult, opts.seed);

    // One device carries the whole run so every observer sees the same
    // timeline. The fault injector gets an *empty* plan: it observes
    // (and counts) every charge without ever firing, so the report's
    // FaultReport section is populated on a healthy run too.
    let device = Device::rtx4090();
    let tel = device.enable_telemetry();
    device.enable_profiler();
    device.enable_faults(FaultPlan::default());

    println!("== report: unified instrumented run ({name}) ==");
    let r = GpuTrainer::new(device.clone(), cfg.clone()).fit_report(&train);

    // Serving burst on the same device, mirroring `repro serve`'s
    // batched leg.
    let compiled = r.model.compile();
    if let Err(e) = compiled.validate() {
        eprintln!("error: compiled ensemble failed validation: {e}");
        return false;
    }
    let ens = DeviceEnsemble::upload(device.clone(), &compiled);
    let mut server = match BatchServer::new(
        ens,
        BatchConfig {
            max_batch: opts.batch,
            mode: PredictMode::InstanceLevel,
            ..BatchConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: invalid batch config: {e}");
            return false;
        }
    };
    let n = test.features().rows();
    let d = r.model.d;
    let reference = r.model.predict(test.features());
    let t0 = device.now_ns();
    let mut out = vec![0.0f32; n * d];
    let mut deliver = |b: ServedBatch| {
        let start = b.first_id as usize * d;
        out[start..start + b.scores.len()].copy_from_slice(&b.scores);
    };
    for i in 0..n {
        for b in server.submit(t0, test.features().row(i)) {
            deliver(b);
        }
    }
    if let Some(b) = server.flush() {
        deliver(b);
    }
    if out != reference {
        eprintln!("error: served scores diverged from Model::predict");
        return false;
    }
    let stats = server.stats();

    // Bitwise phase reconciliation: same key set, same bits.
    let ledger = device.summary();
    let snap = tel.snapshot();
    let mut recon_rows = Vec::new();
    let mut recon_ok = true;
    for (phase, &ledger_ns) in &ledger.by_phase {
        let tel_ns = snap.phase_ns.get(phase.name()).copied();
        let ok = tel_ns.map(f64::to_bits) == Some(ledger_ns.to_bits());
        recon_ok &= ok;
        recon_rows.push(vec![
            phase.name().to_string(),
            format!("{ledger_ns:.0}"),
            tel_ns.map_or("MISSING".to_string(), |v| format!("{v:.0}")),
            if ok {
                "ok".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    for key in snap.phase_ns.keys() {
        if !ledger.by_phase.keys().any(|p| p.name() == key) {
            recon_ok = false;
            recon_rows.push(vec![
                key.clone(),
                "MISSING".to_string(),
                format!("{:.0}", snap.phase_ns[key]),
                "MISMATCH".to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["phase", "ledger (ns)", "telemetry (ns)", "recon"],
            &recon_rows
        )
    );

    let counter_rows: Vec<Vec<String>> = snap
        .counters
        .iter()
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    println!("{}", render_table(&["counter", "value"], &counter_rows));
    let gauge_rows: Vec<Vec<String>> = snap
        .gauges
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v:.4}")])
        .collect();
    println!("{}", render_table(&["gauge", "value"], &gauge_rows));

    let profile = device.profile_summary().expect("profiler enabled");
    let fault = device.fault_report().expect("injector attached");
    println!(
        "train: {:.4} sim-s ({:.3} host-s), {} kernels, {} ledger drops, {} negative charges",
        r.sim_seconds,
        r.host_seconds,
        ledger.kernel_count,
        ledger.dropped_records,
        ledger.negative_charges
    );
    println!(
        "serve: {} requests in {} batches, p50 {:.0} ns, p99 {:.0} ns, {:.0} rows/s",
        stats.served, stats.batches, stats.p50_ns, stats.p99_ns, stats.throughput_rps
    );
    println!(
        "faults: {} charges seen, {} transient, {} lost",
        fault.charges_seen, fault.transient_injected, fault.device_lost
    );
    println!(
        "recorder: {} charges, {} faults, {} spans observed; reconciliation {}",
        snap.charges_recorded,
        snap.faults_recorded,
        snap.spans_recorded,
        if recon_ok { "OK (bitwise)" } else { "FAILED" }
    );

    // Machine-readable join. `telemetry` embeds the registry's own
    // schema-versioned envelope; the top level repeats the version so
    // consumers can gate before descending.
    let doc = Value::Object(vec![
        (
            "telemetry_schema_version".to_string(),
            Value::UInt(TELEMETRY_SCHEMA_VERSION as u64),
        ),
        (
            "setup".to_string(),
            Value::Object(vec![
                ("dataset".to_string(), Value::String(name.clone())),
                ("trees".to_string(), Value::UInt(cfg.num_trees as u64)),
                ("depth".to_string(), Value::UInt(cfg.max_depth as u64)),
                ("bins".to_string(), Value::UInt(cfg.max_bins as u64)),
                ("scale".to_string(), Value::Float(scale_mult)),
                ("seed".to_string(), Value::UInt(opts.seed)),
                ("smoke".to_string(), Value::Bool(opts.smoke)),
                ("batch".to_string(), Value::UInt(opts.batch as u64)),
                ("streams".to_string(), Value::UInt(opts.streams as u64)),
            ]),
        ),
        ("reconciliation_ok".to_string(), Value::Bool(recon_ok)),
        ("telemetry".to_string(), tel.to_value()),
        ("profile".to_string(), profile.to_value()),
        ("ledger".to_string(), ledger.to_value()),
        (
            "fault_report".to_string(),
            Value::Object(vec![
                ("charges_seen".to_string(), Value::UInt(fault.charges_seen)),
                (
                    "transient_injected".to_string(),
                    Value::UInt(fault.transient_injected),
                ),
                ("device_lost".to_string(), Value::UInt(fault.device_lost)),
                (
                    "flips_planned".to_string(),
                    Value::UInt(fault.flips_planned),
                ),
                (
                    "flips_applied".to_string(),
                    Value::UInt(fault.flips_applied),
                ),
                (
                    "charges_dropped_after_loss".to_string(),
                    Value::UInt(fault.charges_dropped_after_loss),
                ),
            ]),
        ),
        (
            "serve".to_string(),
            Value::Object(vec![
                ("served".to_string(), Value::UInt(stats.served)),
                ("batches".to_string(), Value::UInt(stats.batches)),
                ("p50_ns".to_string(), Value::Float(stats.p50_ns)),
                ("p90_ns".to_string(), Value::Float(stats.p90_ns)),
                ("p99_ns".to_string(), Value::Float(stats.p99_ns)),
                ("max_ns".to_string(), Value::Float(stats.max_ns)),
                (
                    "throughput_rps".to_string(),
                    Value::Float(stats.throughput_rps),
                ),
            ]),
        ),
    ]);

    // `--out` defaults to the bench report's name; report writes its
    // own file unless the flag was passed explicitly.
    let out = if opts.out == "BENCH_repro.json" {
        "REPORT_repro.json".to_string()
    } else {
        opts.out.clone()
    };
    let json = serde_json::to_string(&doc).expect("report floats are finite");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return false;
    }
    println!("(wrote unified run report to {out})");
    // Round-trip: the file on disk must parse and carry the version.
    match std::fs::read_to_string(&out)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str::<Value>(&text).map_err(|e| e.to_string()))
    {
        Ok(parsed) => {
            let version = parsed
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "telemetry_schema_version"))
                .map(|(_, v)| v.clone());
            if version != Some(Value::UInt(TELEMETRY_SCHEMA_VERSION as u64)) {
                eprintln!("error: {out} lost its telemetry_schema_version tag");
                return false;
            }
        }
        Err(e) => {
            eprintln!("error: {out} failed JSON round-trip: {e}");
            return false;
        }
    }

    if let Some(path) = &opts.prom {
        if let Err(e) = std::fs::write(path, tel.prometheus()) {
            eprintln!("error: cannot write {path}: {e}");
            return false;
        }
        println!("(wrote Prometheus exposition to {path})");
    }

    if recon_ok {
        println!("report: OK — telemetry reconciles bitwise with the ledger");
    } else {
        eprintln!("report: FAILED — telemetry/ledger phase mismatch (see table above)");
    }
    recon_ok
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    fn argv(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_command_and_flags() {
        let (cmd, opts) =
            parse_args(argv(&["fig4", "--trees", "7", "--scale", "0.5", "--full"])).unwrap();
        assert_eq!(cmd, "fig4");
        assert_eq!(opts.trees, 7);
        assert_eq!(opts.scale, 0.5);
        assert!(opts.full);
    }

    #[test]
    fn empty_args_default_to_help() {
        let (cmd, _) = parse_args(argv(&[])).unwrap();
        assert_eq!(cmd, "help");
    }

    #[test]
    fn parses_sketch_and_update_baseline_flags() {
        let (cmd, opts) = parse_args(argv(&[
            "bench",
            "--sketch",
            "top4",
            "--update-baseline",
            "--baseline",
            "BENCH_baseline.json",
        ]))
        .unwrap();
        assert_eq!(cmd, "bench");
        assert_eq!(opts.sketch, OutputSketch::TopOutputs(4));
        assert!(opts.update_baseline);
        assert_eq!(parse_sketch("none").unwrap(), OutputSketch::None);
        assert_eq!(
            parse_sketch("rand8").unwrap(),
            OutputSketch::RandomSampling(8)
        );
        assert_eq!(
            parse_sketch("proj16").unwrap(),
            OutputSketch::RandomProjection(16)
        );
        // Round-trips through the config label.
        for label in ["none", "top4", "rand8", "proj16"] {
            assert_eq!(parse_sketch(label).unwrap().label(), label);
        }
        assert!(parse_sketch("topk").is_err());
        assert!(parse_sketch("banana").is_err());
    }

    #[test]
    fn parses_report_flags() {
        let (cmd, opts) =
            parse_args(argv(&["report", "--smoke", "--prom", "metrics.prom"])).unwrap();
        assert_eq!(cmd, "report");
        assert!(opts.smoke);
        assert_eq!(opts.prom.as_deref(), Some("metrics.prom"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_args(argv(&["fig4", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_args(argv(&["fig4", "--trees"])).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
        assert!(err.contains("--trees"), "{err}");
    }

    #[test]
    fn unparsable_value_is_an_error() {
        let err = parse_args(argv(&["fig4", "--trees", "many"])).unwrap_err();
        assert!(err.contains("invalid value"), "{err}");
        assert!(err.contains("many"), "{err}");
    }
}
