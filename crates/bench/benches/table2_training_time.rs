//! Table 2 — training time of every GPU system on representative
//! datasets. GPU rows report *simulated device seconds* (via
//! `iter_custom`); re-run `repro table2` for the full 9-dataset table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset, run_system, SystemId};
use gbdt_data::PaperDataset;
use std::time::Duration;

fn sim_duration(seconds: f64) -> Duration {
    Duration::from_secs_f64(seconds.max(1e-12))
}

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_training_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let cfg = bench_config(5, 4, 64);

    for ds in [
        PaperDataset::Mnist,
        PaperDataset::NusWide,
        PaperDataset::Delicious,
    ] {
        let (train, test, name) = bench_dataset(ds, 1.0, 42);
        for system in SystemId::gpu_systems() {
            group.bench_with_input(
                BenchmarkId::new(system.name(), &name),
                &system,
                |b, &system| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let r = run_system(system, &name, &train, &test, &cfg);
                            total += sim_duration(r.seconds);
                        }
                        total
                    })
                },
            );
        }
        // Dual-GPU row.
        group.bench_with_input(BenchmarkId::new("ours-dual", &name), &(), |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = run_system(SystemId::OursMultiGpu(2), &name, &train, &test, &cfg);
                    total += sim_duration(r.seconds);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
