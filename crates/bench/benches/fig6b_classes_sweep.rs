//! Fig. 6b — training time vs the number of classes on synthetic data:
//! the single-output baselines scale with `d`, GBDT-MO and SketchBoost
//! do not (or barely).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, run_system, SystemId};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use std::time::Duration;

fn fig6b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_classes_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let cfg = bench_config(5, 4, 64);

    for classes in [4usize, 16, 64] {
        let data = make_classification(&ClassificationSpec {
            instances: 1000,
            features: 20,
            classes,
            informative: 10,
            seed: 42,
            ..Default::default()
        });
        let (train, test) = data.split(0.2, 42);
        for system in [SystemId::Ours, SystemId::SkBoost, SystemId::XgBoost] {
            group.bench_with_input(
                BenchmarkId::new(system.name(), classes),
                &system,
                |b, &system| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let r = run_system(system, "synthetic", &train, &test, &cfg);
                            total += Duration::from_secs_f64(r.seconds.max(1e-12));
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6b);
criterion_main!(benches);
