//! Table 4 — CPU GBDT-MO (mo-fu / mo-sp, measured wall-clock) against
//! the GPU system (simulated seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_baselines::{CpuMoTrainer, CpuStorage};
use gbdt_bench::{bench_config, bench_dataset, run_system, SystemId};
use gbdt_data::PaperDataset;
use std::time::Duration;

fn table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_cpu_vs_gpu");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let cfg = bench_config(5, 4, 64);

    for ds in [PaperDataset::Mnist, PaperDataset::NusWide] {
        let (train, test, name) = bench_dataset(ds, 0.5, 42);

        // CPU rows: ordinary wall-clock measurement of the real fit.
        for storage in [CpuStorage::Dense, CpuStorage::Sparse] {
            let label = if storage == CpuStorage::Dense {
                "mo-fu"
            } else {
                "mo-sp"
            };
            group.bench_with_input(BenchmarkId::new(label, &name), &storage, |b, &storage| {
                b.iter(|| CpuMoTrainer::new(cfg.clone(), storage).fit(&train))
            });
        }
        // GPU row: simulated seconds.
        group.bench_with_input(BenchmarkId::new("ours", &name), &(), |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = run_system(SystemId::Ours, &name, &train, &test, &cfg);
                    total += Duration::from_secs_f64(r.seconds.max(1e-12));
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table4);
criterion_main!(benches);
