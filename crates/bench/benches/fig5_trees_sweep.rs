//! Fig. 5 — training time vs the number of trees (near-linear scaling
//! for our system; CPU baselines diverge much faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset, run_system, SystemId};
use gbdt_data::PaperDataset;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_trees_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let (train, test, name) = bench_dataset(PaperDataset::Mnist, 1.0, 42);

    for trees in [5usize, 10, 20] {
        let cfg = bench_config(trees, 4, 64);
        for system in [SystemId::Ours, SystemId::SkBoost, SystemId::XgBoost] {
            group.bench_with_input(
                BenchmarkId::new(system.name(), trees),
                &system,
                |b, &system| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let r = run_system(system, &name, &train, &test, &cfg);
                            total += Duration::from_secs_f64(r.seconds.max(1e-12));
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
