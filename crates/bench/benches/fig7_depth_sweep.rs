//! Fig. 7 — training time vs maximum tree depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset, run_system, SystemId};
use gbdt_data::PaperDataset;
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_depth_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let (train, test, name) = bench_dataset(PaperDataset::Caltech101, 1.0, 42);

    for depth in [3usize, 5, 7] {
        let cfg = bench_config(5, depth, 64);
        for system in [SystemId::Ours, SystemId::SkBoost] {
            group.bench_with_input(
                BenchmarkId::new(system.name(), depth),
                &system,
                |b, &system| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let r = run_system(system, &name, &train, &test, &cfg);
                            total += Duration::from_secs_f64(r.seconds.max(1e-12));
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
