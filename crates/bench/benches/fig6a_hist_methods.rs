//! Fig. 6a — the five histogram-building variants (gmem / smem /
//! sort-and-reduce, ± warp-level optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset};
use gbdt_core::{GpuTrainer, HistogramMethod};
use gbdt_data::PaperDataset;
use gpusim::Device;
use std::time::Duration;

fn fig6a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_hist_methods");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let (train, _test, name) = bench_dataset(PaperDataset::NusWide, 1.0, 42);

    let variants: [(&str, HistogramMethod, bool); 5] = [
        ("gmem", HistogramMethod::GlobalMemory, false),
        ("smem", HistogramMethod::SharedMemory, false),
        ("all-reduce", HistogramMethod::SortReduce, false),
        ("gmem+wo", HistogramMethod::GlobalMemory, true),
        ("smem+wo", HistogramMethod::SharedMemory, true),
    ];
    for (label, method, packing) in variants {
        let mut cfg = bench_config(5, 4, 64);
        cfg.hist.method = method;
        cfg.hist.warp_packing = packing;
        group.bench_with_input(BenchmarkId::new(label, &name), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit_report(&train);
                    total += Duration::from_secs_f64(r.sim_seconds.max(1e-12));
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig6a);
criterion_main!(benches);
