//! Ablations of the design choices DESIGN.md calls out: adaptive
//! method selection, warp-level bin packing, histogram subtraction,
//! sparsity-aware accumulation, and multi-GPU scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset};
use gbdt_core::{GpuTrainer, HistogramMethod, MultiGpuTrainer, TrainConfig};
use gbdt_data::PaperDataset;
use gpusim::{Device, DeviceGroup};
use std::time::Duration;

fn sim<F: Fn() -> f64>(b: &mut criterion::Bencher<'_>, run: F) {
    b.iter_custom(|iters| {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            total += Duration::from_secs_f64(run().max(1e-12));
        }
        total
    })
}

fn single(cfg: &TrainConfig, train: &gbdt_data::Dataset) -> f64 {
    GpuTrainer::new(Device::rtx4090(), cfg.clone())
        .fit_report(train)
        .sim_seconds
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let (train, _test, _) = bench_dataset(PaperDataset::Caltech101, 1.0, 42);
    let base = bench_config(5, 4, 64);

    // Adaptive vs fixed histogram method.
    for method in [
        HistogramMethod::Adaptive,
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
    ] {
        let mut cfg = base.clone();
        cfg.hist.method = method;
        group.bench_with_input(
            BenchmarkId::new("hist_method", format!("{method:?}")),
            &cfg,
            |b, cfg| sim(b, || single(cfg, &train)),
        );
    }

    // Bin packing.
    for packing in [true, false] {
        let mut cfg = base.clone();
        cfg.hist.warp_packing = packing;
        group.bench_with_input(BenchmarkId::new("bin_packing", packing), &cfg, |b, cfg| {
            sim(b, || single(cfg, &train))
        });
    }

    // Histogram subtraction.
    for subtraction in [true, false] {
        let mut cfg = base.clone();
        cfg.hist.subtraction = subtraction;
        group.bench_with_input(
            BenchmarkId::new("subtraction", subtraction),
            &cfg,
            |b, cfg| sim(b, || single(cfg, &train)),
        );
    }

    // Sparsity-aware accumulation.
    for sparse in [true, false] {
        let mut cfg = base.clone();
        cfg.hist.sparse_aware = sparse;
        group.bench_with_input(BenchmarkId::new("sparse_aware", sparse), &cfg, |b, cfg| {
            sim(b, || single(cfg, &train))
        });
    }

    // Multi-GPU scaling.
    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("gpus", k), &k, |b, &k| {
            sim(b, || {
                MultiGpuTrainer::new(DeviceGroup::rtx4090s(k), base.clone())
                    .fit_report(&train)
                    .sim_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
