//! Fig. 4 — histogram building as a fraction of total training time.
//! Two measurements per dataset: total simulated time and the
//! histogram-phase share of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_bench::{bench_config, bench_dataset};
use gbdt_core::GpuTrainer;
use gbdt_data::PaperDataset;
use gpusim::{Device, Phase};
use std::time::Duration;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_hist_fraction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let cfg = bench_config(5, 4, 64);

    for ds in [
        PaperDataset::Delicious,
        PaperDataset::Mnist,
        PaperDataset::Caltech101,
    ] {
        let (train, _test, name) = bench_dataset(ds, 1.0, 42);
        group.bench_with_input(BenchmarkId::new("total", &name), &(), |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit_report(&train);
                    total += Duration::from_secs_f64(r.sim_seconds.max(1e-12));
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("histogram_phase", &name), &(), |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit_report(&train);
                    let hist_ns = r
                        .sim
                        .by_phase
                        .get(&Phase::Histogram)
                        .copied()
                        .unwrap_or(0.0);
                    total += Duration::from_secs_f64((hist_ns * 1e-9).max(1e-12));
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
