//! repo-lint v2: token-level static analysis for the simulated-GPU codebase.
//!
//! Zero external dependencies. Three layers:
//!
//! 1. [`lexer`] — a small Rust lexer (nested block comments, raw strings,
//!    char literals vs lifetimes) so rules see tokens, never text.
//! 2. [`file`] — per-file facts: function table with call sets, every
//!    `charge_kernel`/`charge_ns` site with statically resolved names,
//!    sanitizer `scope("…")` literals, `#[cfg(test)]` masking, and
//!    `lint:allow(rule): reason` waivers.
//! 3. [`contract`] — the cross-file kernel contract: canonical names, bench
//!    phase schema, profiler-scope reachability, sanitizer coverage, and the
//!    DESIGN.md kernel inventory — plus determinism-hazard lints.
//!
//! Diagnostics are emitted both human-readable and as versioned JSON
//! ([`report::LINT_SCHEMA_VERSION`]); ci.sh gates on a clean workspace run
//! and golden-tests the JSON for the `bad_repo` fixture.

pub mod contract;
pub mod file;
pub mod lexer;
pub mod report;

pub use contract::{lint_phase_schema, phase_variants, Workspace};
pub use file::{apply_waivers, SourceFile};
pub use report::{Finding, Report, LINT_SCHEMA_VERSION};

use std::path::{Path, PathBuf};

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    if root.is_file() {
        out.push(root.to_path_buf());
        return;
    }
    let Ok(rd) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".rs") || name.ends_with(".rs.txt") {
                out.push(p);
            }
        }
    }
}

/// Style-only mode: lint explicit roots (files or directories) with the
/// per-file rules — no cross-file contract. This is what `repo-lint <paths>`
/// runs and what the ci.sh fixture self-check relies on.
pub fn lint_roots(roots: &[PathBuf]) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        let mut paths = Vec::new();
        collect_rs_files(root, &mut paths);
        for p in paths {
            let display = p.to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(&p)?;
            files.push(SourceFile::parse(&display, &src));
        }
    }
    let mut findings = Vec::new();
    for sf in &files {
        findings.extend(sf.style_findings());
        findings.extend(sf.hazard_findings());
    }
    let refs: Vec<&SourceFile> = files.iter().collect();
    apply_waivers(&mut findings, &refs);
    let mut report = Report::default();
    report.summary.files_scanned = files.len() as u32;
    report.diagnostics = findings;
    report.finalize();
    Ok(report)
}

/// Full-contract mode: load the workspace rooted at `root` (real repo or a
/// `.rs.txt` fixture tree with the same `crates/*/src` layout) and run every
/// check.
pub fn lint_workspace(root: &Path) -> Report {
    Workspace::load(root).check()
}
