//! Per-file analysis: turns a lexed token stream into the facts the rules
//! consume — a function table with call sets, every `charge_kernel` /
//! `charge_ns` site (with statically resolved kernel names), sanitizer
//! `scope("…")` literals, `#[cfg(test)]` masking, and `lint:allow` waivers.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::{Finding, RULE_IDS};
use std::collections::BTreeSet;

/// A `lint:allow(rule): reason` waiver parsed from a comment. Waivers are
/// only recognized inside comments (never string literals), so source text
/// cannot spoof one.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub line: u32,
    pub rule: String,
    /// `None` when the waiver names no reason — such waivers suppress nothing
    /// and are themselves reported as `waiver_without_reason`.
    pub reason: Option<String>,
}

/// One `charge_kernel(…)` or `charge_ns(…)` call site.
#[derive(Debug, Clone)]
pub struct ChargeSite {
    pub line: u32,
    /// Line of the closing `)` — waivers anywhere in `[line-1, end_line]`
    /// attach to findings at this site.
    pub end_line: u32,
    pub fn_idx: Option<usize>,
    pub is_ns: bool,
    /// Statically resolved kernel names: one for a literal first argument,
    /// several when a local `let name = if … { "a" } else { "b" }` binding
    /// feeds the call, empty when the name is dynamic (e.g. a fn parameter).
    pub names: Vec<String>,
    pub phase: Option<String>,
    pub is_test: bool,
}

/// One telemetry metric call site (`counter_add` / `counter_inc` /
/// `gauge_set` / `hist_observe`).
#[derive(Debug, Clone)]
pub struct MetricSite {
    pub line: u32,
    /// Line of the closing `)` — waivers attach over `[line-1, end_line]`
    /// exactly as for charge sites.
    pub end_line: u32,
    /// Statically resolved metric names: literal first argument, or every
    /// literal a local `let name = …` binding can take; empty when the name
    /// is dynamic (a parameter or helper-function result).
    pub names: Vec<String>,
    pub is_test: bool,
}

#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    pub line: u32,
    pub start: usize,
    pub end: usize,
    pub is_test: bool,
    pub calls: BTreeSet<String>,
    pub opens_prof: bool,
    pub has_charge: bool,
    pub has_trace: bool,
}

pub struct SourceFile {
    /// Display path, `/`-separated, as it should appear in diagnostics.
    pub path: String,
    pub toks: Vec<Tok>,
    /// Token-level `#[cfg(test)]` / `#[test]` mask.
    pub masked: Vec<bool>,
    pub fns: Vec<FnInfo>,
    pub waivers: Vec<Waiver>,
    pub charges: Vec<ChargeSite>,
    /// Telemetry registry call sites, for the metric-name contract.
    pub metrics: Vec<MetricSite>,
    /// Kernel names opened via a literal sanitizer `.scope("name")` outside
    /// test code — evidence the kernel has an access-trace replay.
    pub scope_names: BTreeSet<String>,
}

fn ident_at<'a>(toks: &'a [Tok], i: usize) -> Option<&'a str> {
    toks.get(i).and_then(|t| t.ident())
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// For an identifier at `i`, return the index of the `(` that makes it a
/// call, skipping one turbofish (`::<…>`). `None` if not a call.
fn call_paren(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, '<') {
        let mut depth = 0i32;
        let mut k = j + 2;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    if punct_at(toks, j, '(') {
        Some(j)
    } else {
        None
    }
}

fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && punct_at(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`, noting whether it mentions
        // `test` (covers #[test], #[cfg(test)], #[cfg(all(test, …))]).
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut has_test = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) if s == "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            let mut d = 1i32;
            j += 2;
            while j < toks.len() && d > 0 {
                match toks[j].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Mask through the end of the item: either a `;` at depth 0 or the
        // matching `}` of the item's first top-level brace.
        let mut pdepth = 0i32;
        let mut bdepth = 0i32;
        let mut end = toks.len();
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => pdepth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => pdepth -= 1,
                TokKind::Punct('{') => bdepth += 1,
                TokKind::Punct('}') => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                TokKind::Punct(';') if pdepth == 0 && bdepth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

fn collect_fns(toks: &[Tok], masked: &[bool]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if ident_at(toks, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            // `fn(…)` function-pointer type, not a definition.
            i += 1;
            continue;
        };
        // Find the body `{` (or trailing `;` for trait decls) at paren depth 0.
        let mut pdepth = 0i32;
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => pdepth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => pdepth -= 1,
                TokKind::Punct('{') if pdepth == 0 => {
                    body = Some(j);
                    break;
                }
                TokKind::Punct(';') if pdepth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let end = match body {
            Some(b) => {
                let mut depth = 0i32;
                let mut k = b;
                loop {
                    if k >= toks.len() {
                        break toks.len().saturating_sub(1);
                    }
                    match toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j.min(toks.len().saturating_sub(1)),
        };
        fns.push(FnInfo {
            name: name.to_string(),
            line: toks[i].line,
            start: i,
            end,
            is_test: masked[i],
            calls: BTreeSet::new(),
            opens_prof: false,
            has_charge: false,
            has_trace: false,
        });
        i += 2;
    }
    fns
}

/// Innermost function whose span contains token `i`.
fn enclosing_fn(fns: &[FnInfo], i: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.start <= i && i <= f.end)
        .max_by_key(|(_, f)| f.start)
        .map(|(idx, _)| idx)
}

/// Resolve a local `let name = …;` binding feeding a charge call: every
/// string literal between the `=` and the statement-ending `;` is a candidate
/// kernel name (handles `let name = if cond { "a" } else { "b" };`).
fn resolve_binding(toks: &[Tok], fn_start: usize, site: usize, var: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = fn_start;
    while i + 2 < site {
        if ident_at(toks, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(toks, j) == Some("mut") {
            j += 1;
        }
        if ident_at(toks, j) != Some(var) {
            i += 1;
            continue;
        }
        // Skip type annotation to the `=`.
        while j < site && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
            j += 1;
        }
        if !punct_at(toks, j, '=') {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < site {
            match &toks[k].kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Str(s) => names.push(s.clone()),
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
    names.sort();
    names.dedup();
    names
}

fn parse_waivers(comments: &[crate::lexer::Comment]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        let mut consumed = 0usize;
        while let Some(pos) = rest.find("lint:allow(") {
            let abs = consumed + pos;
            let line = c.line + c.text[..abs].matches('\n').count() as u32;
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let tail = after[close + 1..].trim_start();
            let reason = tail
                .strip_prefix(':')
                .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
                .filter(|r| !r.is_empty());
            out.push(Waiver { line, rule, reason });
            let advance = pos + "lint:allow(".len() + close + 1;
            consumed += advance;
            rest = &rest[advance..];
        }
    }
    out
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let toks = lexed.toks;
        let masked = compute_test_mask(&toks);
        let mut fns = collect_fns(&toks, &masked);
        let waivers = parse_waivers(&lexed.comments);
        let mut charges = Vec::new();
        let mut metrics = Vec::new();
        let mut scope_names = BTreeSet::new();

        let mut i = 0usize;
        while i < toks.len() {
            let Some(id) = ident_at(&toks, i) else {
                i += 1;
                continue;
            };
            // Skip definitions and macro invocations.
            if i > 0 && ident_at(&toks, i - 1) == Some("fn") {
                i += 1;
                continue;
            }
            if punct_at(&toks, i + 1, '!') {
                i += 1;
                continue;
            }
            let Some(open) = call_paren(&toks, i) else {
                i += 1;
                continue;
            };
            let fi = enclosing_fn(&fns, i);
            if let Some(fi) = fi {
                fns[fi].calls.insert(id.to_string());
                if id == "prof_scope" {
                    fns[fi].opens_prof = true;
                }
                if id.starts_with("trace") || id == "sanitizer" {
                    fns[fi].has_trace = true;
                }
            }
            let is_charge = id == "charge_kernel" || id == "charge_ns";
            let is_scope = id == "scope" && i > 0 && punct_at(&toks, i - 1, '.');
            let is_metric = matches!(
                id,
                "counter_add" | "counter_inc" | "gauge_set" | "hist_observe"
            );
            if !is_charge && !is_scope && !is_metric {
                i += 1;
                continue;
            }
            // Split call arguments at depth-1 commas.
            let mut depth = 1i32;
            let mut k = open + 1;
            let mut args: Vec<Vec<usize>> = vec![Vec::new()];
            let mut close = toks.len().saturating_sub(1);
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                        depth += 1;
                        args.last_mut().unwrap().push(k);
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                        args.last_mut().unwrap().push(k);
                    }
                    TokKind::Punct(',') if depth == 1 => args.push(Vec::new()),
                    _ => args.last_mut().unwrap().push(k),
                }
                k += 1;
            }
            // Resolve the name argument.
            let arg0 = &args[0];
            let names = if arg0.len() == 1 {
                match &toks[arg0[0]].kind {
                    TokKind::Str(s) => vec![s.clone()],
                    TokKind::Ident(v) => {
                        let fn_start = fi.map(|f| fns[f].start).unwrap_or(0);
                        resolve_binding(&toks, fn_start, i, v)
                    }
                    _ => Vec::new(),
                }
            } else {
                Vec::new()
            };
            if is_scope {
                if !masked[i] {
                    for n in &names {
                        scope_names.insert(n.clone());
                    }
                }
                i = open;
                continue;
            }
            if is_metric {
                metrics.push(MetricSite {
                    line: toks[i].line,
                    end_line: toks[close.min(toks.len() - 1)].line,
                    names,
                    is_test: masked[i],
                });
                i = open;
                continue;
            }
            if let Some(fi) = fi {
                fns[fi].has_charge = true;
            }
            // Any `Phase::Variant` mention inside the call.
            let mut phase = None;
            for w in open..close {
                if ident_at(&toks, w) == Some("Phase")
                    && punct_at(&toks, w + 1, ':')
                    && punct_at(&toks, w + 2, ':')
                {
                    if let Some(v) = ident_at(&toks, w + 3) {
                        phase = Some(v.to_string());
                        break;
                    }
                }
            }
            charges.push(ChargeSite {
                line: toks[i].line,
                end_line: toks[close.min(toks.len() - 1)].line,
                fn_idx: fi,
                is_ns: id == "charge_ns",
                names,
                phase,
                is_test: masked[i],
            });
            i = open;
        }

        SourceFile {
            path: path.to_string(),
            toks,
            masked,
            fns,
            waivers,
            charges,
            metrics,
            scope_names,
        }
    }

    /// v1 style rules, now token-accurate: `.unwrap()` in library code,
    /// `as_mut_slice` outside the buffer module, `run_blocks` in a function
    /// that never charges the device ledger.
    pub fn style_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        let toks = &self.toks;
        let is_buffer_module = self
            .path
            .replace('\\', "/")
            .ends_with("gpusim/src/buffer.rs");
        for i in 0..toks.len() {
            if self.masked[i] {
                continue;
            }
            let Some(id) = ident_at(toks, i) else {
                continue;
            };
            match id {
                "unwrap" => {
                    if i > 0
                        && punct_at(toks, i - 1, '.')
                        && punct_at(toks, i + 1, '(')
                        && punct_at(toks, i + 2, ')')
                    {
                        out.push(Finding::new(
                            "unwrap_in_lib",
                            &self.path,
                            toks[i].line,
                            "`.unwrap()` in library code; return a Result or use expect with an invariant message".to_string(),
                        ));
                    }
                }
                "as_mut_slice" => {
                    if !is_buffer_module {
                        out.push(Finding::new(
                            "raw_buffer_mut",
                            &self.path,
                            toks[i].line,
                            "raw `as_mut_slice` outside gpusim/src/buffer.rs; device memory must be mutated through checked views".to_string(),
                        ));
                    }
                }
                "run_blocks" => {
                    if ident_at(toks, i.wrapping_sub(1)) == Some("fn") {
                        continue;
                    }
                    if call_paren(toks, i).is_none() {
                        continue;
                    }
                    let charged = enclosing_fn(&self.fns, i)
                        .map(|f| self.fns[f].has_charge)
                        .unwrap_or(false);
                    if !charged {
                        out.push(Finding::new(
                            "uncharged_launch",
                            &self.path,
                            toks[i].line,
                            "`run_blocks` in a function that never charges the device ledger; simulated launches must be accounted".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Determinism-hazard lints for device-charged library code:
    /// `HashMap`/`HashSet` (iteration order varies run to run) and unordered
    /// parallel float reductions (`par_iter().…sum()`).
    pub fn hazard_findings(&self) -> Vec<Finding> {
        const PAR: &[&str] = &[
            "par_iter",
            "par_iter_mut",
            "into_par_iter",
            "par_chunks",
            "par_chunks_mut",
            "par_windows",
            "par_bridge",
            "par_split",
            "par_drain",
        ];
        const REDUCE: &[&str] = &["sum", "product", "reduce", "reduce_with"];
        let mut out = Vec::new();
        let mut seen_lines = BTreeSet::new();
        let toks = &self.toks;
        for i in 0..toks.len() {
            if self.masked[i] {
                continue;
            }
            let Some(id) = ident_at(toks, i) else {
                continue;
            };
            if (id == "HashMap" || id == "HashSet") && seen_lines.insert(toks[i].line) {
                out.push(Finding::new(
                    "hashmap_iteration",
                    &self.path,
                    toks[i].line,
                    format!(
                        "`{id}` in device-charged library code; iteration order is nondeterministic — use BTreeMap/BTreeSet or a sorted layout to keep runs bit-identical"
                    ),
                ));
                continue;
            }
            if !PAR.contains(&id) || call_paren(toks, i).is_none() {
                continue;
            }
            // Scan the rest of the expression at relative depth 0 for a
            // floating-point-unfriendly reduction. Closure bodies sit at
            // depth > 0, so per-item `iter().sum()` inside a map is fine.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut steps = 0usize;
            while j < toks.len() && steps < 300 {
                match &toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                        if depth == 0 && toks[j].is_punct('}') {
                            break;
                        }
                    }
                    TokKind::Punct(';') | TokKind::Punct(',') if depth == 0 => break,
                    TokKind::Ident(m) if depth == 0 => {
                        if REDUCE.contains(&m.as_str()) && call_paren(toks, j).is_some() {
                            out.push(Finding::new(
                                "unordered_float_reduce",
                                &self.path,
                                toks[j].line,
                                format!(
                                    "parallel `{id}` chain ends in `{m}`; unordered reduction makes float results depend on thread scheduling — reduce per-chunk sequentially, then combine in index order"
                                ),
                            ));
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
                steps += 1;
            }
        }
        out
    }
}

/// Attach waivers to findings. A valid waiver (known rule + reason) marks a
/// finding waived when it sits on the finding's own lines or directly above
/// them — a contiguous block of waiver comment lines counts as one position,
/// so several rules can be waived for the same site, stacked. Waivers
/// without a reason or naming an unknown rule suppress nothing and are
/// reported as `waiver_without_reason`.
pub fn apply_waivers(findings: &mut Vec<Finding>, files: &[&SourceFile]) {
    for f in findings.iter_mut() {
        let Some(sf) = files.iter().find(|s| s.path == f.file) else {
            continue;
        };
        // Charge- and metric-site findings may span multiple lines;
        // everything else is single-line.
        let span_end = sf
            .charges
            .iter()
            .find(|c| c.line == f.line)
            .map(|c| c.end_line)
            .or_else(|| {
                sf.metrics
                    .iter()
                    .find(|m| m.line == f.line)
                    .map(|m| m.end_line)
            })
            .unwrap_or(f.line);
        let waiver_lines: BTreeSet<u32> = sf.waivers.iter().map(|w| w.line).collect();
        for w in &sf.waivers {
            if w.rule != f.rule || w.reason.is_none() {
                continue;
            }
            // Extend through a contiguous stack of waiver lines below this
            // one, then require adjacency to the finding.
            let mut eff = w.line;
            while waiver_lines.contains(&(eff + 1)) {
                eff += 1;
            }
            if eff + 1 >= f.line && w.line <= span_end {
                f.waived = true;
                f.waiver_reason = w.reason.clone();
                break;
            }
        }
    }
    for sf in files {
        for w in &sf.waivers {
            if w.reason.is_some() && RULE_IDS.contains(&w.rule.as_str()) {
                continue;
            }
            let msg = if RULE_IDS.contains(&w.rule.as_str()) {
                format!(
                    "waiver `lint:allow({})` has no reason; write `lint:allow({}): <why this site is exempt>`",
                    w.rule, w.rule
                )
            } else {
                format!(
                    "waiver names unknown rule `{}`; known rules: {}",
                    w.rule,
                    RULE_IDS.join(", ")
                )
            };
            findings.push(Finding::new("waiver_without_reason", &sf.path, w.line, msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiline_charge_site_is_found_with_phase() {
        let src = "fn go(dev: &Device) {\n    dev.charge_kernel(\n        \"hist_gmem\",\n        Phase::Histogram,\n        &cost,\n    );\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.charges.len(), 1);
        let c = &sf.charges[0];
        assert_eq!(c.names, vec!["hist_gmem"]);
        assert_eq!(c.phase.as_deref(), Some("Histogram"));
        assert_eq!(c.line, 2);
        assert_eq!(c.end_line, 6);
        assert!(!c.is_ns);
    }

    #[test]
    fn charge_site_in_comment_or_string_is_not_a_site() {
        let src = r####"
fn a() {
    // dev.charge_kernel("ghost", Phase::Other, &c);
    /* dev.charge_kernel("ghost2", Phase::Other, &c); */
    let doc = r#"charge_kernel("ghost3", Phase::Other)"#;
    let s = "charge_kernel(\"ghost4\", ...)";
}
"####;
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.charges.is_empty());
    }

    #[test]
    fn local_binding_resolves_both_branch_names() {
        let src = "fn h(ctx: &Ctx) {\n    let name = if ctx.packed { \"hist_gmem_packed\" } else { \"hist_gmem\" };\n    ctx.device.charge_kernel(name, Phase::Histogram, &c);\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.charges.len(), 1);
        assert_eq!(sf.charges[0].names, vec!["hist_gmem", "hist_gmem_packed"]);
    }

    #[test]
    fn parameter_fed_charge_is_dynamic() {
        let src = "fn prim(dev: &Device, name: &'static str) {\n    dev.charge_kernel(name, Phase::Other, &c);\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.charges.len(), 1);
        assert!(sf.charges[0].names.is_empty());
    }

    #[test]
    fn cfg_test_sites_are_masked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(dev: &Device) { dev.charge_kernel(\"k\", Phase::Other, &c); }\n}\nfn real(dev: &Device) { dev.charge_ns(\"dtoh\", Phase::Transfer, 1.0); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let live: Vec<_> = sf.charges.iter().filter(|c| !c.is_test).collect();
        assert_eq!(live.len(), 1);
        assert!(live[0].is_ns);
        assert_eq!(live[0].names, vec!["dtoh"]);
        assert_eq!(sf.charges.len(), 2);
        assert!(sf.charges.iter().any(|c| c.is_test));
    }

    #[test]
    fn fn_table_tracks_prof_trace_and_calls() {
        let src = "fn outer(d: &Device) {\n    let _s = d.prof_scope(\"round\", None);\n    inner(d);\n}\nfn inner(d: &Device) {\n    d.charge_kernel(\"k_one\", Phase::Sketch, &c);\n    trace_k_one(d);\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        let outer = sf.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = sf.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.opens_prof);
        assert!(outer.calls.contains("inner"));
        assert!(inner.has_charge);
        assert!(inner.has_trace);
    }

    #[test]
    fn scope_literals_collected_outside_tests() {
        let src = "fn tr(san: &Sanitizer) {\n    let s = san.scope(\"hist_subtract\");\n    s.touch(0);\n}\n#[cfg(test)]\nmod t { fn x(san: &Sanitizer) { san.scope(\"test_only\"); } }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.scope_names.contains("hist_subtract"));
        assert!(!sf.scope_names.contains("test_only"));
    }

    #[test]
    fn waiver_parsing_reason_and_reasonless() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(sanitize): replay declared in trace module\n    // lint:allow(unwrap_in_lib)\n    x.unwrap()\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.waivers.len(), 2);
        assert_eq!(sf.waivers[0].rule, "sanitize");
        assert_eq!(
            sf.waivers[0].reason.as_deref(),
            Some("replay declared in trace module")
        );
        assert_eq!(sf.waivers[1].rule, "unwrap_in_lib");
        assert!(sf.waivers[1].reason.is_none());
    }

    #[test]
    fn reasonless_waiver_does_not_suppress_and_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint:allow(unwrap_in_lib)\n}\n";
        let sf = SourceFile::parse("lib.rs", src);
        let mut findings = sf.style_findings();
        apply_waivers(&mut findings, &[&sf]);
        assert!(findings
            .iter()
            .any(|f| f.rule == "unwrap_in_lib" && !f.waived));
        assert!(findings.iter().any(|f| f.rule == "waiver_without_reason"));
    }

    #[test]
    fn reasoned_waiver_suppresses_but_is_reported() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(unwrap_in_lib): invariant, x checked by caller\n    x.unwrap()\n}\n";
        let sf = SourceFile::parse("lib.rs", src);
        let mut findings = sf.style_findings();
        apply_waivers(&mut findings, &[&sf]);
        let f = findings.iter().find(|f| f.rule == "unwrap_in_lib").unwrap();
        assert!(f.waived);
        assert_eq!(
            f.waiver_reason.as_deref(),
            Some("invariant, x checked by caller")
        );
        assert!(!findings.iter().any(|f| f.rule == "waiver_without_reason"));
    }

    #[test]
    fn stacked_waivers_cover_one_site() {
        let src = "fn f(g: &Grid, x: Option<u32>) -> u32 {\n    // lint:allow(uncharged_launch): combinator, caller charges\n    // lint:allow(unwrap_in_lib): invariant, x checked by caller\n    g.run_blocks(|b| b); x.unwrap()\n}\n";
        let sf = SourceFile::parse("lib.rs", src);
        let mut findings = sf.style_findings();
        apply_waivers(&mut findings, &[&sf]);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.waived), "{findings:?}");
    }

    #[test]
    fn hashmap_hazard_fires_outside_tests_only() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f32>) {}\n#[cfg(test)]\nmod t { use std::collections::HashMap; }\n";
        let sf = SourceFile::parse("x.rs", src);
        let h = sf.hazard_findings();
        assert_eq!(
            h.iter().filter(|f| f.rule == "hashmap_iteration").count(),
            2
        );
    }

    #[test]
    fn par_sum_fires_but_inner_sequential_sum_does_not() {
        let bad = "fn f(v: &[f32]) -> f32 { v.par_iter().map(|x| x * 0.5).sum() }\n";
        let good = "fn g(v: &[Vec<f32>]) -> Vec<f32> { v.par_iter().map(|r| r.iter().sum::<f32>()).collect() }\n";
        let b = SourceFile::parse("b.rs", bad).hazard_findings();
        assert_eq!(
            b.iter()
                .filter(|f| f.rule == "unordered_float_reduce")
                .count(),
            1
        );
        let g = SourceFile::parse("g.rs", good).hazard_findings();
        assert!(g.iter().all(|f| f.rule != "unordered_float_reduce"));
    }

    #[test]
    fn par_for_each_is_fine() {
        let src = "fn f(v: &mut [f32]) { v.par_iter_mut().for_each(|x| *x += 1.0); }\n";
        let h = SourceFile::parse("x.rs", src).hazard_findings();
        assert!(h.is_empty());
    }

    #[test]
    fn uncharged_launch_flags_only_uncharged_fns() {
        let src = "fn bad(g: &Grid) { g.run_blocks(|b| {}); }\nfn good(g: &Grid, d: &Device) { g.run_blocks(|b| {}); d.charge_kernel(\"k_two\", Phase::Other, &c); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let s = sf.style_findings();
        assert_eq!(s.iter().filter(|f| f.rule == "uncharged_launch").count(), 1);
        assert_eq!(s[0].line, 1);
    }
}
