//! A small hand-rolled Rust lexer.
//!
//! The v1 scanner stripped comments per line and pattern-matched on the
//! remaining text, which meant it could not see a `charge_kernel(` call split
//! across lines and could be fooled by string literals containing Rust-looking
//! text. v2 lexes the source into a token stream first; every downstream rule
//! works on tokens, so comments, raw strings, char literals, and lifetimes can
//! never produce false charge sites.
//!
//! The lexer is deliberately lossy where the rules don't care: numeric
//! suffixes, nested generic disambiguation, and macro bodies are all left to
//! the consumer. What it gets exactly right is the set of boundaries that
//! matter for static analysis: where comments, strings, and char literals
//! start and end.

/// Token kinds. `Punct` carries a single ASCII punctuation character; multi
/// character operators (`::`, `->`, `=>`) appear as consecutive `Punct`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `charge_kernel`, `r#match` → `match`).
    Ident(String),
    /// String literal contents, unescaped only as far as needed (`"…"`,
    /// `r#"…"#`, `b"…"`): the raw contents between the delimiters.
    Str(String),
    /// Char or byte literal (`'a'`, `b'\n'`); contents between the quotes.
    Char(String),
    /// Lifetime (`'a`, `'static`), without the leading quote.
    Lifetime(String),
    /// Numeric literal, verbatim.
    Num(String),
    /// Single punctuation byte.
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment captured during lexing. Only used for `lint:allow` waivers; the
/// token stream itself never contains comment text.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens plus captured comments. Never panics on malformed
/// input: unterminated literals simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let bump_lines = |s: &[char]| -> u32 { s.iter().filter(|&&c| c == '\n').count() as u32 };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#, br#"…"#,
        // b"…", r#ident.
        if c == 'r' || c == 'b' {
            // Look ahead past an optional `b`/`r` prefix combination.
            let mut j = i;
            let mut saw_r = false;
            let mut saw_b = false;
            if chars[j] == 'b' {
                saw_b = true;
                j += 1;
            }
            if j < n && chars[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            if saw_r {
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    let body_start = j + 1;
                    let mut k = body_start;
                    let close = loop {
                        if k >= n {
                            break n;
                        }
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                break k;
                            }
                        }
                        k += 1;
                    };
                    let body: String = chars[body_start..close.min(n)].iter().collect();
                    toks.push(Tok {
                        kind: TokKind::Str(body),
                        line,
                    });
                    line += bump_lines(&chars[i..(close + 1 + hashes).min(n)]);
                    i = (close + 1 + hashes).min(n);
                    continue;
                }
                if hashes == 1 && !saw_b && j < n && is_ident_start(chars[j]) {
                    // Raw identifier r#match: token is the bare name.
                    let start = j;
                    let mut k = j;
                    while k < n && is_ident_continue(chars[k]) {
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident(chars[start..k].iter().collect()),
                        line,
                    });
                    i = k;
                    continue;
                }
                // `r` not introducing a raw string/ident: fall through to the
                // plain identifier path below (e.g. variable named `r`).
            } else if saw_b && j < n && (chars[j] == '"' || chars[j] == '\'') {
                // b"…" or b'…': delegate to the normal string/char scanners by
                // skipping the prefix.
                i = j;
                continue;
            }
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let body_start = i + 1;
            let mut k = body_start;
            while k < n {
                if chars[k] == '\\' {
                    k += 2;
                    continue;
                }
                if chars[k] == '"' {
                    break;
                }
                k += 1;
            }
            let body: String = chars[body_start..k.min(n)].iter().collect();
            line += bump_lines(&chars[i..(k + 1).min(n)]);
            toks.push(Tok {
                kind: TokKind::Str(body),
                line: start_line,
            });
            i = (k + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // 'a' → char; '\n' → char; 'a → lifetime; 'static → lifetime.
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(x) if is_ident_start(x) => after == Some('\''),
                Some(_) => true, // e.g. '(' — degenerate, treat as char
                None => false,
            };
            if is_char {
                let body_start = i + 1;
                let mut k = body_start;
                while k < n {
                    if chars[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if chars[k] == '\'' {
                        break;
                    }
                    k += 1;
                }
                let body: String = chars[body_start..k.min(n)].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Char(body),
                    line,
                });
                i = (k + 1).min(n);
                continue;
            }
            // Lifetime.
            let start = i + 1;
            let mut k = start;
            while k < n && is_ident_continue(chars[k]) {
                k += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime(chars[start..k].iter().collect()),
                line,
            });
            i = k;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut k = i;
            while k < n {
                let d = chars[k];
                if d.is_ascii_alphanumeric() || d == '_' {
                    k += 1;
                    continue;
                }
                // Decimal point only if followed by a digit (so `1..5` and
                // `1.max(2)` don't swallow the dot).
                if d == '.' && k + 1 < n && chars[k + 1].is_ascii_digit() {
                    k += 2;
                    continue;
                }
                // Exponent sign.
                if (d == '+' || d == '-')
                    && k > start
                    && (chars[k - 1] == 'e' || chars[k - 1] == 'E')
                {
                    k += 1;
                    continue;
                }
                break;
            }
            toks.push(Tok {
                kind: TokKind::Num(chars[start..k].iter().collect()),
                line,
            });
            i = k;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            let mut k = i;
            while k < n && is_ident_continue(chars[k]) {
                k += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(chars[start..k].iter().collect()),
                line,
            });
            i = k;
            continue;
        }
        // Anything else: single punctuation char.
        toks.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }

    Lexed { toks, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.toks.iter().filter_map(|t| t.ident()).collect()
    }
    fn strs(l: &Lexed) -> Vec<&str> {
        l.toks.iter().filter_map(|t| t.str_lit()).collect()
    }

    #[test]
    fn line_comment_is_not_tokenized() {
        let l = lex("let x = 1; // charge_kernel(\"fake\", ...)\nlet y = 2;");
        assert!(!idents(&l).contains(&"charge_kernel"));
        assert!(strs(&l).is_empty());
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("charge_kernel"));
    }

    #[test]
    fn nested_block_comments_do_not_leak_charge_sites() {
        let src =
            "/* outer /* charge_kernel(\"ghost\", Phase::Other) */ still comment */ fn f() {}";
        let l = lex(src);
        assert_eq!(idents(&l), vec!["fn", "f"]);
        assert!(strs(&l).is_empty());
    }

    #[test]
    fn block_comment_tracks_lines() {
        let l = lex("/* a\nb\nc */\nfn f() {}");
        let f = l.toks.iter().find(|t| t.ident() == Some("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn raw_string_containing_charge_kernel_is_one_literal() {
        let src = r####"let doc = r#"call charge_kernel("x", Phase::Other, &c) like this"#;"####;
        let l = lex(src);
        assert!(!idents(&l).contains(&"charge_kernel"));
        assert_eq!(strs(&l).len(), 1);
        assert!(strs(&l)[0].contains("charge_kernel"));
    }

    #[test]
    fn raw_string_with_two_hashes_and_embedded_quote_hash() {
        let src = "r##\"has \"# inside\"## + 1";
        let l = lex(src);
        assert_eq!(strs(&l), vec!["has \"# inside"]);
        assert!(l.toks.iter().any(|t| t.is_punct('+')));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("let c: char = 'a'; fn f<'a>(x: &'a str, y: &'static str) {} let n = '\\n';");
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Char(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let lifetimes: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(chars, vec!["a", "\\n"]);
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
    }

    #[test]
    fn string_with_escaped_quote_and_fake_call() {
        let l = lex(r#"let s = "say \"charge_kernel(\" now"; let t = 1;"#);
        assert!(!idents(&l).contains(&"charge_kernel"));
        assert_eq!(strs(&l).len(), 1);
        assert!(idents(&l).contains(&"t"));
    }

    #[test]
    fn raw_ident_and_plain_r_variable() {
        let l = lex("let r#match = 1; let r = 2; let x = r * 3;");
        let ids = idents(&l);
        assert!(ids.contains(&"match"));
        assert_eq!(ids.iter().filter(|&&s| s == "r").count(), 2);
    }

    #[test]
    fn byte_string_and_byte_char() {
        let l = lex("let a = b\"charge_kernel(\"; let b2 = b'x';");
        assert!(!idents(&l).contains(&"charge_kernel"));
        assert_eq!(strs(&l), vec!["charge_kernel("]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("for i in 0..10 { let x = 1.5e-3; let y = 2.max(3); }");
        let nums: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "2", "3"]);
        assert!(idents(&l).contains(&"max"));
    }

    #[test]
    fn multiline_call_is_visible_in_token_stream() {
        let src = "dev.charge_kernel(\n    \"hist_gmem\",\n    Phase::Histogram,\n    &cost,\n);";
        let l = lex(src);
        assert!(idents(&l).contains(&"charge_kernel"));
        assert_eq!(strs(&l), vec!["hist_gmem"]);
        // The name literal is on line 2.
        let s = l.toks.iter().find(|t| t.str_lit().is_some()).unwrap();
        assert_eq!(s.line, 2);
    }
}
