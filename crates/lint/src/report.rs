//! Structured diagnostics: the `Finding` type, rule-id registry, and the
//! hand-rolled versioned JSON writer (the lint crate stays zero-dep, like the
//! BENCH/SERVE report writers).

/// Bump when the JSON layout changes shape. Golden tests pin the serialized
/// bytes for the `bad_repo` fixture, so accidental drift fails CI.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// Every rule id the analyzer can emit. Waivers naming any other rule are
/// rejected with `waiver_without_reason`.
pub const RULE_IDS: &[&str] = &[
    "unwrap_in_lib",
    "raw_buffer_mut",
    "uncharged_launch",
    "phase_in_bench_schema",
    "canonical_kernel_name",
    "metric_name_canonical",
    "prof_coverage",
    "sanitize",
    "design_inventory",
    "hashmap_iteration",
    "unordered_float_reduce",
    "waiver_without_reason",
];

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Set when a `lint:allow(rule): reason` waiver matched: the finding is
    /// reported (JSON + human output) but does not fail the run.
    pub waived: bool,
    pub waiver_reason: Option<String>,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            waived: false,
            waiver_reason: None,
        }
    }

    pub fn human(&self) -> String {
        let tag = if self.waived { " [waived]" } else { "" };
        format!(
            "{}:{}: [{}]{} {}",
            self.file, self.line, self.rule, tag, self.message
        )
    }
}

/// One row of the cross-file kernel symbol table, as surfaced in the JSON
/// report. Only literal (statically resolvable) `charge_kernel` names get a
/// row; raw `charge_ns` duration names are listed separately.
#[derive(Debug, Clone)]
pub struct KernelRow {
    pub name: String,
    /// `Phase::X` variants observed across this kernel's charge sites.
    pub phases: Vec<String>,
    /// Number of charge sites resolving to this name.
    pub sites: u32,
    pub sanitized: bool,
    pub documented: bool,
    pub prof_covered: bool,
}

#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub files_scanned: u32,
    pub findings: u32,
    pub waived: u32,
    pub kernels: u32,
    pub dynamic_charge_sites: u32,
}

#[derive(Debug, Clone, Default)]
pub struct Report {
    pub summary: Summary,
    pub kernels: Vec<KernelRow>,
    pub raw_charge_names: Vec<String>,
    pub diagnostics: Vec<Finding>,
}

impl Report {
    /// Sort diagnostics into the canonical (file, line, rule, message) order
    /// and recompute summary counts. Call once before serializing.
    pub fn finalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
        self.kernels.sort_by(|a, b| a.name.cmp(&b.name));
        self.raw_charge_names.sort();
        self.raw_charge_names.dedup();
        self.summary.findings = self.diagnostics.iter().filter(|f| !f.waived).count() as u32;
        self.summary.waived = self.diagnostics.iter().filter(|f| f.waived).count() as u32;
        self.summary.kernels = self.kernels.len() as u32;
    }

    /// Count of unwaived findings (the exit-code signal).
    pub fn violations(&self) -> usize {
        self.diagnostics.iter().filter(|f| !f.waived).count()
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"lint_schema_version\": {},\n",
            LINT_SCHEMA_VERSION
        ));
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"files_scanned\": {},\n",
            self.summary.files_scanned
        ));
        out.push_str(&format!("    \"findings\": {},\n", self.summary.findings));
        out.push_str(&format!("    \"waived\": {},\n", self.summary.waived));
        out.push_str(&format!("    \"kernels\": {},\n", self.summary.kernels));
        out.push_str(&format!(
            "    \"dynamic_charge_sites\": {}\n",
            self.summary.dynamic_charge_sites
        ));
        out.push_str("  },\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let phases: Vec<String> = k.phases.iter().map(|p| json_str(p)).collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"phases\": [{}], \"sites\": {}, \"sanitized\": {}, \"documented\": {}, \"prof_covered\": {}}}{}\n",
                json_str(&k.name),
                phases.join(", "),
                k.sites,
                k.sanitized,
                k.documented,
                k.prof_covered,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"raw_charge_names\": [");
        let raws: Vec<String> = self.raw_charge_names.iter().map(|s| json_str(s)).collect();
        out.push_str(&raws.join(", "));
        out.push_str("],\n");
        out.push_str("  \"diagnostics\": [\n");
        for (i, f) in self.diagnostics.iter().enumerate() {
            let reason = match &f.waiver_reason {
                Some(r) => json_str(r),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": \"error\", \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}, \"waiver_reason\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                f.waived,
                reason,
                if i + 1 < self.diagnostics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_counts_waived_separately() {
        let mut r = Report::default();
        r.diagnostics
            .push(Finding::new("sanitize", "a.rs", 3, "x".into()));
        let mut w = Finding::new("sanitize", "a.rs", 9, "y".into());
        w.waived = true;
        w.waiver_reason = Some("because".into());
        r.diagnostics.push(w);
        r.finalize();
        assert_eq!(r.summary.findings, 1);
        assert_eq!(r.summary.waived, 1);
        assert_eq!(r.violations(), 1);
        let js = r.to_json();
        assert!(js.contains("\"lint_schema_version\": 1"));
        assert!(js.contains("\"waiver_reason\": \"because\""));
    }
}
