//! The kernel contract: cross-file consistency checks over every charge site.
//!
//! A kernel charged to the device ledger must stay consistent across five
//! artifacts — its ledger charge, its cost formula, its sanitizer access
//! trace, its profiler phase, and its DESIGN.md / bench-schema entry. This
//! module builds a workspace-wide symbol table of charge sites (from the
//! per-file analysis) and enforces:
//!
//! - `canonical_kernel_name` — names are `lower_snake` and no two production
//!   kernel names sit one edit apart (typo guard); sibling families that
//!   legitimately differ by one character carry a reasoned waiver.
//! - `metric_name_canonical` — telemetry registry names (`counter_add` /
//!   `counter_inc` / `gauge_set` / `hist_observe` first arguments) are
//!   dotted `lower_snake` and no two production metric names sit one edit
//!   apart — a typo'd metric silently forks its time series.
//! - `phase_in_bench_schema` — every charged `Phase::…` exists in the enum
//!   and has a `"…"` key in the bench schema (both per-site and enum-level).
//! - `prof_coverage` — every `charge_kernel` site is reachable from a
//!   function that opens a profiler scope (`prof_scope`), so kernel time can
//!   always be attributed to a scope in PROF_repro.json.
//! - `sanitize` — every charged kernel has an access-trace replay (a
//!   same-function `trace*` call or a literal sanitizer `.scope("name")`
//!   somewhere in library code) or a reasoned `lint:allow(sanitize)` waiver.
//! - `design_inventory` — every charged kernel name appears (backticked) in
//!   DESIGN.md's kernel inventory.

use crate::file::{ChargeSite, SourceFile};
use crate::lexer::{lex, TokKind};
use crate::report::{Finding, KernelRow, Report};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Parse the variant names of `enum Phase { … }` from the device module
/// source. Empty when no such enum is present (e.g. style-only fixture runs).
pub fn phase_variants(device_src: &str) -> Vec<String> {
    let lexed = lex(device_src);
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].ident() != Some("enum")
            || toks.get(i + 1).and_then(|t| t.ident()) != Some("Phase")
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            continue;
        }
        let mut out = Vec::new();
        let mut depth = 1i32;
        let mut expect = true;
        let mut j = i + 3;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                    depth += 1;
                    expect = false;
                }
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(',') if depth == 1 => expect = true,
                TokKind::Punct('#') if depth == 1 => {
                    // Variant attribute: skip `#[…]` without consuming the
                    // "expect a variant next" state.
                    if toks.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                        let mut d = 1i32;
                        j += 2;
                        while j < toks.len() && d > 0 {
                            match toks[j].kind {
                                TokKind::Punct('[') => d += 1,
                                TokKind::Punct(']') => d -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        continue;
                    }
                }
                TokKind::Ident(s) if depth == 1 && expect => {
                    out.push(s.clone());
                    expect = false;
                }
                _ => {
                    if depth == 1 {
                        expect = false;
                    }
                }
            }
            j += 1;
        }
        return out;
    }
    Vec::new()
}

/// Enum-level rule `phase_in_bench_schema`: every `Phase` variant must appear
/// as a `"Variant"` string in the bench schema module (`phase_key`). A
/// variant the schema never names would drop out of BENCH_repro.json
/// unnoticed.
pub fn lint_phase_schema(
    device_display: &str,
    device_src: &str,
    report_display: &str,
    report_src: &str,
) -> Vec<Finding> {
    let variants = phase_variants(device_src);
    let keys: BTreeSet<String> = lex(report_src)
        .toks
        .iter()
        .filter_map(|t| t.str_lit().map(|s| s.to_string()))
        .collect();
    let mut findings = Vec::new();
    for v in &variants {
        if !keys.contains(v) {
            findings.push(Finding::new(
                "phase_in_bench_schema",
                report_display,
                1,
                format!(
                    "Phase::{v} (declared in {device_display}) has no \"{v}\" key in the bench schema — add it to phase_key and bump BENCH_SCHEMA_VERSION"
                ),
            ));
        }
    }
    findings
}

/// True when `a` and `b` are exactly one edit (substitution, insertion, or
/// deletion) apart.
fn one_edit_apart(a: &str, b: &str) -> bool {
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (ab, bb) = (a.as_bytes(), b.as_bytes());
    match bb.len() - ab.len() {
        0 => ab.iter().zip(bb).filter(|(x, y)| x != y).count() == 1,
        1 => {
            let mut i = 0usize;
            while i < ab.len() && ab[i] == bb[i] {
                i += 1;
            }
            ab[i..] == bb[i + 1..]
        }
        _ => false,
    }
}

fn is_lower_snake(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    name.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Canonical telemetry metric name: dot-separated `lower_snake` segments
/// (`train.hist_method_shared`), at least one segment, none empty.
fn is_lower_snake_dotted(name: &str) -> bool {
    !name.is_empty() && name.split('.').all(is_lower_snake)
}

/// A workspace to check: device-charged library crates (core, gpusim) whose
/// charge sites carry the full contract, plus observing crates (bench,
/// baselines) whose sites only get name/phase checks.
pub struct Workspace {
    pub charged: Vec<SourceFile>,
    pub observed: Vec<SourceFile>,
    pub design: Option<String>,
    pub device: Option<(String, String)>,
    pub report: Option<(String, String)>,
}

/// Crate roots relative to the workspace root. `.rs.txt` fixture trees use
/// the same layout.
const CHARGED_ROOTS: &[&str] = &["crates/core/src", "crates/gpusim/src"];
const OBSERVED_ROOTS: &[&str] = &["crates/bench/src", "crates/baselines/src"];

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_files(&p, out);
        } else {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".rs") || name.ends_with(".rs.txt") {
                out.push(p);
            }
        }
    }
}

impl Workspace {
    /// Build a workspace from in-memory sources; paths are `/`-separated and
    /// relative to the workspace root (`crates/core/src/…`).
    pub fn from_sources(design: Option<String>, files: Vec<(String, String)>) -> Workspace {
        let mut w = Workspace {
            charged: Vec::new(),
            observed: Vec::new(),
            design,
            device: None,
            report: None,
        };
        for (path, src) in files {
            let trimmed = path.trim_end_matches(".txt");
            if trimmed.ends_with("gpusim/src/device.rs") {
                w.device = Some((path.clone(), src.clone()));
            }
            if trimmed.ends_with("bench/src/report.rs") {
                w.report = Some((path.clone(), src.clone()));
            }
            let sf = SourceFile::parse(&path, &src);
            if CHARGED_ROOTS.iter().any(|r| path.starts_with(r)) {
                w.charged.push(sf);
            } else {
                w.observed.push(sf);
            }
        }
        w
    }

    /// Load a workspace from disk. Missing crate roots are skipped, so
    /// fixture trees only need the files their rules exercise.
    pub fn load(root: &Path) -> Workspace {
        let mut files = Vec::new();
        for sub in CHARGED_ROOTS.iter().chain(OBSERVED_ROOTS) {
            let mut paths = Vec::new();
            collect_files(&root.join(sub), &mut paths);
            for p in paths {
                let display = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                if let Ok(src) = std::fs::read_to_string(&p) {
                    files.push((display, src));
                }
            }
        }
        let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        Workspace::from_sources(design, files)
    }

    fn all_files(&self) -> Vec<&SourceFile> {
        self.charged.iter().chain(self.observed.iter()).collect()
    }

    /// Function names transitively reachable from any profiler-scope opener.
    fn prof_covered_names(&self) -> BTreeSet<String> {
        let mut covered: BTreeSet<String> = BTreeSet::new();
        loop {
            let mut changed = false;
            for sf in self.all_files() {
                for f in &sf.fns {
                    if f.is_test {
                        continue;
                    }
                    if f.opens_prof || covered.contains(&f.name) {
                        for c in &f.calls {
                            changed |= covered.insert(c.clone());
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        covered
    }

    /// Run every check and assemble the structured report (waivers applied,
    /// diagnostics sorted).
    pub fn check(&self) -> Report {
        let mut findings: Vec<Finding> = Vec::new();
        let mut report = Report::default();
        report.summary.files_scanned = (self.charged.len() + self.observed.len()) as u32;

        // Style + determinism hazards: device-charged library crates only.
        for sf in &self.charged {
            findings.extend(sf.style_findings());
            findings.extend(sf.hazard_findings());
        }

        // Phase enum vs bench schema (enum-level).
        let variants: BTreeSet<String> = self
            .device
            .as_ref()
            .map(|(_, src)| phase_variants(src).into_iter().collect())
            .unwrap_or_default();
        let schema_keys: BTreeSet<String> = self
            .report
            .as_ref()
            .map(|(_, src)| {
                lex(src)
                    .toks
                    .iter()
                    .filter_map(|t| t.str_lit().map(|s| s.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        if let (Some((dp, ds)), Some((rp, rs))) = (&self.device, &self.report) {
            findings.extend(lint_phase_schema(dp, ds, rp, rs));
        }

        // Site-level phase checks + canonical-name collection, across charged
        // AND observing crates.
        let mut name_sites: BTreeMap<String, Vec<(&SourceFile, &ChargeSite)>> = BTreeMap::new();
        let mut dynamic_sites = 0u32;
        for sf in self.all_files() {
            for c in &sf.charges {
                if c.is_test {
                    continue;
                }
                if c.names.is_empty() {
                    dynamic_sites += 1;
                } else {
                    for n in &c.names {
                        name_sites.entry(n.clone()).or_default().push((sf, c));
                    }
                }
                if let Some(v) = &c.phase {
                    if !variants.is_empty() && !variants.contains(v) {
                        findings.push(Finding::new(
                            "phase_in_bench_schema",
                            &sf.path,
                            c.line,
                            format!(
                                "charge names Phase::{v}, which is not a variant of the Phase enum"
                            ),
                        ));
                    } else if !schema_keys.is_empty() && !schema_keys.contains(v) {
                        findings.push(Finding::new(
                            "phase_in_bench_schema",
                            &sf.path,
                            c.line,
                            format!(
                                "charge names Phase::{v}, which has no \"{v}\" key in the bench schema — add it to phase_key and bump BENCH_SCHEMA_VERSION"
                            ),
                        ));
                    }
                }
            }
        }
        report.summary.dynamic_charge_sites = dynamic_sites;

        // canonical_kernel_name: charset, then near-duplicate (edit distance
        // 1) detection between distinct production names.
        for (name, sites) in &name_sites {
            if !is_lower_snake(name) {
                let (sf, c) = sites[0];
                findings.push(Finding::new(
                    "canonical_kernel_name",
                    &sf.path,
                    c.line,
                    format!("kernel name \"{name}\" is not lower_snake (`[a-z][a-z0-9_]*`)"),
                ));
            }
        }
        let names: Vec<&String> = name_sites.keys().collect();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let (a, b) = (names[i], names[j]);
                if a.len() < 6 || b.len() < 6 || !one_edit_apart(a, b) {
                    continue;
                }
                // Flag the rarer name (a lone typo'd site, typically); on a
                // tie, the lexicographically later one.
                let (na, nb) = (name_sites[a].len(), name_sites[b].len());
                let flagged = if na < nb { a } else { b };
                let other = if flagged == a { b } else { a };
                for (sf, c) in &name_sites[flagged] {
                    findings.push(Finding::new(
                        "canonical_kernel_name",
                        &sf.path,
                        c.line,
                        format!(
                            "kernel name \"{flagged}\" is one edit away from \"{other}\" — likely a typo; rename, or waive if the two are genuine siblings"
                        ),
                    ));
                }
            }
        }

        // metric_name_canonical: telemetry registry names follow the same
        // discipline as kernel names — dotted lower_snake charset, then
        // near-duplicate (edit distance 1) detection between distinct
        // production metric names. A typo'd metric silently forks a time
        // series, so the rarer spelling is flagged exactly as for kernels.
        let mut metric_sites: BTreeMap<String, Vec<(&SourceFile, &crate::file::MetricSite)>> =
            BTreeMap::new();
        for sf in self.all_files() {
            for m in &sf.metrics {
                if m.is_test {
                    continue;
                }
                for n in &m.names {
                    metric_sites.entry(n.clone()).or_default().push((sf, m));
                }
            }
        }
        for (name, sites) in &metric_sites {
            if !is_lower_snake_dotted(name) {
                let (sf, m) = sites[0];
                findings.push(Finding::new(
                    "metric_name_canonical",
                    &sf.path,
                    m.line,
                    format!(
                        "metric name \"{name}\" is not dotted lower_snake (`[a-z][a-z0-9_]*` segments joined by `.`)"
                    ),
                ));
            }
        }
        let metric_names: Vec<&String> = metric_sites.keys().collect();
        for i in 0..metric_names.len() {
            for j in (i + 1)..metric_names.len() {
                let (a, b) = (metric_names[i], metric_names[j]);
                if a.len() < 6 || b.len() < 6 || !one_edit_apart(a, b) {
                    continue;
                }
                let (na, nb) = (metric_sites[a].len(), metric_sites[b].len());
                let flagged = if na < nb { a } else { b };
                let other = if flagged == a { b } else { a };
                for (sf, m) in &metric_sites[flagged] {
                    findings.push(Finding::new(
                        "metric_name_canonical",
                        &sf.path,
                        m.line,
                        format!(
                            "metric name \"{flagged}\" is one edit away from \"{other}\" — likely a typo forking the time series; rename, or waive if the two are genuine siblings"
                        ),
                    ));
                }
            }
        }

        // Full contract (prof / sanitize / design) for literal charge_kernel
        // sites in the device-charged crates.
        let covered = self.prof_covered_names();
        let mut scope_names: BTreeSet<&str> = BTreeSet::new();
        for sf in &self.charged {
            for s in &sf.scope_names {
                scope_names.insert(s);
            }
        }
        let documented = |name: &str| -> bool {
            match &self.design {
                Some(d) => d.contains(&format!("`{name}`")),
                None => true,
            }
        };
        let mut kernel_rows: BTreeMap<String, KernelRow> = BTreeMap::new();
        let mut design_flagged: BTreeSet<String> = BTreeSet::new();
        let mut raw_names: BTreeSet<String> = BTreeSet::new();
        for sf in &self.charged {
            for c in &sf.charges {
                if c.is_test || c.names.is_empty() {
                    continue;
                }
                if c.is_ns {
                    for n in &c.names {
                        raw_names.insert(n.clone());
                    }
                    continue;
                }
                let f = c.fn_idx.map(|i| &sf.fns[i]);
                let prof_ok = f.is_some_and(|f| f.opens_prof || covered.contains(&f.name));
                if !prof_ok {
                    findings.push(Finding::new(
                        "prof_coverage",
                        &sf.path,
                        c.line,
                        format!(
                            "kernel {:?} is charged outside any profiler scope: no call path from a `prof_scope` opener reaches `{}`",
                            c.names,
                            f.map(|f| f.name.as_str()).unwrap_or("<top level>"),
                        ),
                    ));
                }
                let san_ok = f.is_some_and(|f| f.has_trace)
                    || c.names.iter().all(|n| scope_names.contains(n.as_str()));
                if !san_ok {
                    findings.push(Finding::new(
                        "sanitize",
                        &sf.path,
                        c.line,
                        format!(
                            "kernel {:?} has no sanitizer coverage: add a trace replay (`trace_*` / literal `.scope(\"…\")`) or a `lint:allow(sanitize): <reason>` waiver",
                            c.names
                        ),
                    ));
                }
                for n in &c.names {
                    if !documented(n) && design_flagged.insert(n.clone()) {
                        findings.push(Finding::new(
                            "design_inventory",
                            &sf.path,
                            c.line,
                            format!(
                                "kernel \"{n}\" is missing from DESIGN.md's kernel inventory — document its cost model (or waive with a reason)"
                            ),
                        ));
                    }
                    let row = kernel_rows.entry(n.clone()).or_insert_with(|| KernelRow {
                        name: n.clone(),
                        phases: Vec::new(),
                        sites: 0,
                        sanitized: true,
                        documented: documented(n),
                        prof_covered: true,
                    });
                    row.sites += 1;
                    if let Some(p) = &c.phase {
                        if !row.phases.contains(p) {
                            row.phases.push(p.clone());
                        }
                    }
                    row.sanitized &= san_ok;
                    row.prof_covered &= prof_ok;
                }
            }
        }
        for r in kernel_rows.values_mut() {
            r.phases.sort();
        }
        report.kernels = kernel_rows.into_values().collect();
        report.raw_charge_names = raw_names.into_iter().collect();

        let all = self.all_files();
        crate::file::apply_waivers(&mut findings, &all);
        report.diagnostics = findings;
        report.finalize();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHASE_ENUM: &str = "/// Phases.\npub enum Phase {\n    /// Build histograms.\n    Histogram,\n    Sketch,\n    Other,\n}\n";

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            Some("inventory: `k_fine` is documented.".to_string()),
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics
            .iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn phase_variants_are_parsed_from_enum_body() {
        assert_eq!(
            phase_variants(PHASE_ENUM),
            vec!["Histogram", "Sketch", "Other"]
        );
        assert!(phase_variants("fn no_enum_here() {}\n").is_empty());
    }

    #[test]
    fn phase_variants_skip_variant_attributes() {
        let src = "enum Phase { #[default]\n A, B }";
        assert_eq!(phase_variants(src), vec!["A", "B"]);
    }

    #[test]
    fn one_edit_metric() {
        assert!(one_edit_apart("hist_gmem", "hist_smem"));
        assert!(one_edit_apart("fast_hist", "fast_hist2"));
        assert!(!one_edit_apart("fast_hist", "fast_hist"));
        assert!(!one_edit_apart("grad_hess", "grad_hess_shard"));
    }

    #[test]
    fn contract_clean_kernel_passes() {
        let w = ws(&[(
            "crates/core/src/k.rs",
            "fn round(d: &Device) {\n    let _s = d.prof_scope(\"round\", None);\n    launch(d);\n}\nfn launch(d: &Device) {\n    d.charge_kernel(\"k_fine\", Phase::Histogram, &c);\n    trace_k_fine(d);\n}\n",
        ),
        ("crates/gpusim/src/device.rs", PHASE_ENUM),
        ("crates/bench/src/report.rs", "fn phase_key(p: Phase) -> &'static str { match p { Phase::Histogram => \"Histogram\", Phase::Sketch => \"Sketch\", Phase::Other => \"Other\" } }"),
        ]);
        let r = w.check();
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.kernels.len(), 1);
        assert!(r.kernels[0].sanitized && r.kernels[0].prof_covered && r.kernels[0].documented);
    }

    #[test]
    fn near_duplicate_name_fires_on_rarer_name() {
        let w = ws(&[(
            "crates/core/src/k.rs",
            "fn a(d: &Device) {\n    let _s = d.prof_scope(\"round\", None);\n    d.charge_kernel(\"k_fine_one\", Phase::Other, &c);\n    d.charge_kernel(\"k_fine_one\", Phase::Other, &c);\n    trace_x(d);\n}\nfn b(d: &Device) {\n    let _s = d.prof_scope(\"round\", None);\n    d.charge_kernel(\"k_fime_one\", Phase::Other, &c);\n    trace_x(d);\n}\n",
        )]);
        let r = w.check();
        let canon: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|f| f.rule == "canonical_kernel_name")
            .collect();
        assert_eq!(canon.len(), 1, "{:?}", r.diagnostics);
        assert!(canon[0].message.contains("k_fime_one"));
    }

    #[test]
    fn metric_name_charset_and_near_duplicate_fire() {
        // Bad charset: a capitalized segment.
        let w = ws(&[(
            "crates/core/src/m.rs",
            "fn a(tel: &Telemetry) {\n    tel.counter_inc(\"train.Rounds_total\");\n}\n",
        )]);
        let r = w.check();
        assert!(
            rules(&r).contains(&"metric_name_canonical"),
            "{:?}",
            r.diagnostics
        );
        // Near-duplicate: the rarer spelling is flagged, the common one not.
        let w2 = ws(&[(
            "crates/core/src/m.rs",
            "fn a(tel: &Telemetry) {\n    tel.gauge_set(\"serve.queue_depth\", 1.0);\n    tel.gauge_set(\"serve.queue_depth\", 2.0);\n    tel.gauge_set(\"serve.queue_dept\", 3.0);\n}\n",
        )]);
        let r2 = w2.check();
        let canon: Vec<_> = r2
            .diagnostics
            .iter()
            .filter(|f| f.rule == "metric_name_canonical")
            .collect();
        assert_eq!(canon.len(), 1, "{:?}", r2.diagnostics);
        assert!(canon[0].message.contains("serve.queue_dept"), "{canon:?}");
        // Clean dotted names pass; a local binding resolves both literals.
        let w3 = ws(&[(
            "crates/core/src/m.rs",
            "fn a(tel: &Telemetry, fast: bool) {\n    let name = if fast { \"train.loss\" } else { \"train.rounds_total\" };\n    tel.gauge_set(name, 1.0);\n    tel.hist_observe(\"train.split_gain\", 0.5);\n}\n",
        )]);
        let r3 = w3.check();
        assert!(
            !rules(&r3).contains(&"metric_name_canonical"),
            "{:?}",
            r3.diagnostics
        );
    }

    #[test]
    fn metric_sites_in_tests_are_exempt_and_waivers_attach() {
        let w = ws(&[(
            "crates/core/src/m.rs",
            "#[cfg(test)]\nmod t {\n    fn x(tel: &Telemetry) { tel.counter_inc(\"Test.Only\"); }\n}\n",
        )]);
        let r = w.check();
        assert!(
            !rules(&r).contains(&"metric_name_canonical"),
            "{:?}",
            r.diagnostics
        );
        // A reasoned waiver suppresses a genuine-sibling near-dup.
        let w2 = ws(&[(
            "crates/core/src/m.rs",
            "fn a(tel: &Telemetry) {\n    tel.counter_inc(\"train.pass1_total\");\n    tel.counter_inc(\"train.pass1_total\");\n    // lint:allow(metric_name_canonical): pass2 is a genuine sibling of pass1\n    tel.counter_inc(\"train.pass2_total\");\n}\n",
        )]);
        let r2 = w2.check();
        assert!(rules(&r2).is_empty(), "{:?}", r2.diagnostics);
        assert_eq!(r2.summary.waived, 1);
    }

    #[test]
    fn non_snake_name_fires() {
        let w = ws(&[(
            "crates/core/src/k.rs",
            "fn a(d: &Device) {\n    let _s = d.prof_scope(\"x\", None);\n    d.charge_kernel(\"BadName\", Phase::Other, &c);\n    trace_x(d);\n}\n",
        )]);
        let r = w.check();
        assert!(rules(&r).contains(&"canonical_kernel_name"));
    }

    #[test]
    fn prof_coverage_needs_a_scope_on_some_call_path() {
        let w = ws(&[(
            "crates/core/src/k.rs",
            "fn orphan(d: &Device) {\n    d.charge_kernel(\"k_fine\", Phase::Other, &c);\n    trace_x(d);\n}\n",
        )]);
        let r = w.check();
        assert_eq!(rules(&r), vec!["prof_coverage"]);
    }

    #[test]
    fn prof_coverage_is_transitive_across_files() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "fn top(d: &Device) { let _s = d.prof_scope(\"round\", None); mid(d); }\nfn mid(d: &Device) { deep(d); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "fn deep(d: &Device) { d.charge_kernel(\"k_fine\", Phase::Other, &c); trace_x(d); }\n",
            ),
        ]);
        let r = w.check();
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn sanitize_satisfied_by_scope_literal_elsewhere() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "fn go(d: &Device) { let _s = d.prof_scope(\"round\", None); d.charge_kernel(\"k_fine\", Phase::Other, &c); }\n",
            ),
            (
                "crates/core/src/tr.rs",
                "fn replay(san: &Sanitizer) { let s = san.scope(\"k_fine\"); s.touch(0); }\n",
            ),
        ]);
        let r = w.check();
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn sanitize_fires_without_trace_and_waiver_suppresses_with_reason() {
        let base = "fn go(d: &Device) {\n    let _s = d.prof_scope(\"round\", None);\n    {WAIVER}d.charge_kernel(\"k_fine\", Phase::Other, &c);\n}\n";
        let w = ws(&[("crates/core/src/a.rs", &base.replace("{WAIVER}", ""))]);
        assert_eq!(rules(&w.check()), vec!["sanitize"]);
        let waived = base.replace(
            "{WAIVER}",
            "// lint:allow(sanitize): fixture kernel, replay not modeled\n    ",
        );
        let w2 = ws(&[("crates/core/src/a.rs", waived.as_str())]);
        let r2 = w2.check();
        assert!(rules(&r2).is_empty(), "{:?}", r2.diagnostics);
        assert_eq!(r2.summary.waived, 1);
    }

    #[test]
    fn undocumented_kernel_fires_design_inventory() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn go(d: &Device) { let _s = d.prof_scope(\"r\", None); d.charge_kernel(\"k_undoc\", Phase::Other, &c); trace_x(d); }\n",
        )]);
        let r = w.check();
        assert_eq!(rules(&r), vec!["design_inventory"]);
    }

    #[test]
    fn charge_ns_sites_are_raw_durations_not_kernels() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn go(d: &Device) { d.charge_ns(\"htod_features\", Phase::Transfer, 10.0); }\n",
        )]);
        let r = w.check();
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.raw_charge_names, vec!["htod_features"]);
        assert!(r.kernels.is_empty());
    }

    #[test]
    fn observing_crates_get_name_and_phase_checks_only() {
        let w = ws(&[
            ("crates/gpusim/src/device.rs", PHASE_ENUM),
            (
                "crates/bench/src/report.rs",
                "fn phase_key(p: Phase) -> &'static str { match p { Phase::Histogram => \"Histogram\", Phase::Sketch => \"Sketch\", Phase::Other => \"Other\" } }",
            ),
            (
                "crates/baselines/src/b.rs",
                "fn bench_kernel(d: &Device) { d.charge_kernel(\"BadName\", Phase::Ghost, &c); }\n",
            ),
        ]);
        let r = w.check();
        let rs = rules(&r);
        assert!(rs.contains(&"canonical_kernel_name"), "{rs:?}");
        assert!(rs.contains(&"phase_in_bench_schema"), "{rs:?}");
        // But no prof/sanitize/design demands on observing crates.
        assert!(!rs.contains(&"prof_coverage"));
        assert!(!rs.contains(&"sanitize"));
        assert!(!rs.contains(&"design_inventory"));
    }

    // ---- real-repo cross-file checks (same names as the v1 tests that
    // ci.sh invokes directly) ----

    /// Seeded failure for the gradient-sketching phase: the *real* `Phase`
    /// enum (which carries `Sketch`) against the *real* bench schema with
    /// every `"Sketch"` key stripped must fire.
    #[test]
    fn phase_schema_catches_missing_sketch_phase() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        assert!(
            phase_variants(&dev).iter().any(|v| v == "Sketch"),
            "Phase::Sketch missing from device.rs — update this fixture"
        );
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        let stripped = rep.replace("\"Sketch\"", "\"_removed_\"");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &stripped);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "phase_in_bench_schema");
        assert!(f[0].message.contains("Sketch"), "{f:?}");
    }

    /// Seeded failure for the serving phase, same shape as the Sketch one.
    #[test]
    fn phase_schema_catches_missing_serve_phase() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        assert!(
            phase_variants(&dev).iter().any(|v| v == "Serve"),
            "Phase::Serve missing from device.rs — update this fixture"
        );
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        let stripped = rep.replace("\"Serve\"", "\"_removed_\"");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &stripped);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "phase_in_bench_schema");
        assert!(f[0].message.contains("Serve"), "{f:?}");
    }

    /// The real repo files satisfy the cross-file rule.
    #[test]
    fn repo_phase_schema_is_in_sync() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        assert!(!phase_variants(&dev).is_empty(), "Phase enum parse failed");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &rep);
        assert!(f.is_empty(), "{f:?}");
    }
}
