//! repo-lint CLI.
//!
//! ```text
//! repo-lint                          # full kernel-contract check on the repo
//! repo-lint --json LINT_repro.json   # …plus the versioned JSON report
//! repo-lint --contract-root DIR      # full check on a fixture tree
//! repo-lint <paths…>                 # style-only check on explicit roots
//! ```
//!
//! Exit code 1 when any unwaived finding remains, 2 on usage/IO errors.

use repo_lint::{lint_roots, lint_workspace, Report};
use std::path::PathBuf;

fn finish(report: &Report, json_path: Option<&str>) -> ! {
    for f in &report.diagnostics {
        println!("{}", f.human());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("repo-lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    let n = report.violations();
    if n == 0 {
        println!(
            "repo-lint: clean ({} files, {} kernels, {} waived)",
            report.summary.files_scanned, report.summary.kernels, report.summary.waived
        );
        std::process::exit(0);
    }
    println!(
        "repo-lint: {n} violation(s) across {} files ({} waived)",
        report.summary.files_scanned, report.summary.waived
    );
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    let mut contract_root: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("repo-lint: --json needs a path");
                    std::process::exit(2);
                }
            },
            "--contract-root" => match args.next() {
                Some(p) => contract_root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("repo-lint: --contract-root needs a directory");
                    std::process::exit(2);
                }
            },
            _ => roots.push(PathBuf::from(a)),
        }
    }

    if let Some(root) = contract_root {
        if !root.is_dir() {
            eprintln!(
                "repo-lint: --contract-root {}: not a directory",
                root.display()
            );
            std::process::exit(2);
        }
        let report = lint_workspace(&root);
        if report.summary.files_scanned == 0 {
            // A tree with nothing to scan would silently pass CI gates.
            eprintln!(
                "repo-lint: --contract-root {}: no sources found under crates/*/src",
                root.display()
            );
            std::process::exit(2);
        }
        finish(&report, json_path.as_deref());
    }
    if roots.is_empty() {
        // Default: the repo itself, when run from the workspace root.
        if !PathBuf::from("crates/gpusim/src/device.rs").exists() {
            eprintln!(
                "repo-lint: run from the workspace root, or pass explicit roots / --contract-root"
            );
            std::process::exit(2);
        }
        let report = lint_workspace(&PathBuf::from("."));
        finish(&report, json_path.as_deref());
    }
    for r in &roots {
        if !r.exists() {
            eprintln!("repo-lint: {}: no such file or directory", r.display());
            std::process::exit(2);
        }
    }
    match lint_roots(&roots) {
        Ok(report) => finish(&report, json_path.as_deref()),
        Err(e) => {
            eprintln!("repo-lint: {e}");
            std::process::exit(2);
        }
    }
}
