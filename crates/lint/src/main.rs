//! `repo-lint` — text-heuristic repo-invariant lints, run by `ci.sh`.
//!
//! Three rules guard the simulated-GPU codebase's conventions:
//!
//! * `raw_buffer_mut` — no direct `as_mut_slice` on a
//!   [`GpuBuffer`](../gpusim/buffer) outside the buffer module itself;
//!   kernels mutate device data through the sanctioned helpers (or the
//!   sanitizer's checked views), never through a raw slice grab.
//! * `uncharged_launch` — every `run_blocks` call site must charge the
//!   device ledger (`charge_kernel` / `charge_ns`) somewhere in the same
//!   function; a launch the timeline never sees is a simulation bug.
//! * `unwrap_in_lib` — no `.unwrap()` in non-test library code of
//!   `crates/core` and `crates/gpusim`; use `expect` with an invariant
//!   message or propagate the error.
//! * `phase_in_bench_schema` — a cross-file rule: every variant of
//!   `gpusim::Phase` (parsed from `crates/gpusim/src/device.rs`) must
//!   appear as a string key in the bench report schema
//!   (`crates/bench/src/report.rs`), so a new phase can never silently
//!   vanish from `BENCH_repro.json`. Skipped when either file is
//!   absent (fixture runs).
//!
//! Heuristics, not a compiler: string/comment contents are stripped
//! before matching, `#[cfg(test)]` blocks are skipped by brace
//! matching, and any finding can be waived on its line with
//! `// lint:allow(<rule>)`. Exit status is nonzero iff findings remain.

use std::path::{Path, PathBuf};

/// One lint finding: file, 1-based line, rule name, and the offending
/// source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (display path).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, as accepted by `lint:allow(...)`.
    pub rule: &'static str,
    /// The raw source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// A source line split into its raw text and a "code" view with
/// comments and string-literal contents blanked out (so needles never
/// match prose or embedded text).
struct Line {
    raw: String,
    code: String,
}

/// Strip comments and string contents, preserving line structure and
/// brace characters that are real code. A tiny scanner, good enough for
/// rustfmt-formatted sources.
fn strip(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        RawStr(usize),
        Char,
        Block(usize),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    for raw in src.lines() {
        let mut code = String::with_capacity(raw.len());
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match st {
                St::Code => match c {
                    '/' if next == Some('/') => break, // line comment: rest ignored
                    '/' if next == Some('*') => {
                        st = St::Block(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        st = St::Str;
                        code.push(' ');
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"…" / r#"…"#.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            st = St::RawStr(hashes);
                            code.push(' ');
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime: a lifetime is not
                        // closed by a quote within a few chars.
                        if matches!(
                            (next, bytes.get(i + 2), bytes.get(i + 3)),
                            (Some('\\'), _, _)
                                | (Some(_), Some('\''), _)
                                | (Some(_), Some(_), Some('\''))
                        ) {
                            st = St::Char;
                        }
                        code.push(' ');
                    }
                    _ => code.push(c),
                },
                St::Str => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        st = St::Code;
                    }
                }
                St::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            st = St::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                }
                St::Char => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        st = St::Code;
                    }
                }
                St::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        st = St::Block(depth + 1);
                        i += 2;
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Strings and char literals do not continue across lines here
        // (multi-line strings are rare in this repo; close them).
        if st == St::Str || st == St::Char {
            st = St::Code;
        }
        out.push(Line {
            raw: raw.to_string(),
            code,
        });
    }
    out
}

/// Mark every line that belongs to a `#[cfg(test)]`-gated item (the
/// attribute line, through the matching close brace of the item body).
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// `(start, end)` inclusive line spans of every function body.
fn fn_spans(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        let Some(pos) = code.find("fn ") else {
            continue;
        };
        // `fn ` must start a word (not e.g. part of an identifier).
        if pos > 0 {
            let prev = code.as_bytes()[pos - 1] as char;
            if prev.is_alphanumeric() || prev == '_' {
                continue;
            }
        }
        // Find the body's opening brace before any terminating `;`.
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut end = None;
        'scan: for (j, line) in lines.iter().enumerate().skip(i) {
            let tail = if j == i {
                &line.code[pos..]
            } else {
                &line.code
            };
            for c in tail.chars() {
                match c {
                    ';' if !opened => break 'scan, // declaration only
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = Some(j);
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(end) = end {
            spans.push((i, end));
        }
    }
    spans
}

/// Whether `line` waives `rule` via a `lint:allow(rule)` comment.
fn allowed(raw: &str, rule: &str) -> bool {
    raw.contains(&format!("lint:allow({rule})"))
}

/// Lint one file's source. `display` is the path shown in findings and
/// also drives path-scoped rules (e.g. the buffer module may name its
/// own accessor).
pub fn lint_source(display: &str, src: &str) -> Vec<Finding> {
    let lines = strip(src);
    let tests = test_mask(&lines);
    let spans = fn_spans(&lines);
    let mut findings = Vec::new();

    // Needles are assembled so this file never matches itself if it is
    // ever pointed at its own source tree.
    let unwrap_needle = concat!(".unwrap", "()");
    let raw_mut_needle = concat!("as_mut", "_slice");
    let launch_needle = concat!("run_", "blocks");

    let is_buffer_home = display.ends_with("gpusim/src/buffer.rs");

    for (i, l) in lines.iter().enumerate() {
        if tests[i] {
            continue;
        }
        let code = &l.code;

        if code.contains(unwrap_needle) && !allowed(&l.raw, "unwrap_in_lib") {
            findings.push(Finding {
                file: display.to_string(),
                line: i + 1,
                rule: "unwrap_in_lib",
                excerpt: l.raw.trim().to_string(),
            });
        }

        if code.contains(raw_mut_needle) && !is_buffer_home && !allowed(&l.raw, "raw_buffer_mut") {
            findings.push(Finding {
                file: display.to_string(),
                line: i + 1,
                rule: "raw_buffer_mut",
                excerpt: l.raw.trim().to_string(),
            });
        }

        if code.contains(launch_needle)
            && code.contains('(')
            && !code.trim_start().starts_with("use ")
            && !code.contains(&format!("fn {launch_needle}"))
            && !allowed(&l.raw, "uncharged_launch")
        {
            let span = spans
                .iter()
                .filter(|&&(s, e)| s <= i && i <= e)
                .max_by_key(|&&(s, _)| s);
            let charged = span.is_some_and(|&(s, e)| {
                lines[s..=e]
                    .iter()
                    .any(|l| l.code.contains("charge_kernel") || l.code.contains("charge_ns"))
            });
            if !charged {
                findings.push(Finding {
                    file: display.to_string(),
                    line: i + 1,
                    rule: "uncharged_launch",
                    excerpt: l.raw.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// Parse the variant names of `pub enum Phase { ... }` from gpusim's
/// device module source. Returns an empty list when no such enum is
/// present (e.g. fixture trees).
pub fn phase_variants(device_src: &str) -> Vec<String> {
    let lines = strip(device_src);
    let mut out = Vec::new();
    let mut in_enum = false;
    for l in &lines {
        let code = l.code.trim();
        if !in_enum {
            if code.contains("enum Phase") && code.contains('{') {
                in_enum = true;
            }
            continue;
        }
        if code.starts_with('}') {
            break;
        }
        // Variant lines are `Ident,` after comment stripping.
        let name = code.trim_end_matches(',').trim();
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            out.push(name.to_string());
        }
    }
    out
}

/// Cross-file rule `phase_in_bench_schema`: every `Phase` variant must
/// appear as a `"Variant"` string in the bench schema module, which is
/// where `phase_key` maps variants to JSON keys. A variant the schema
/// never names would drop out of `BENCH_repro.json` unnoticed.
pub fn lint_phase_schema(
    device_display: &str,
    device_src: &str,
    report_display: &str,
    report_src: &str,
) -> Vec<Finding> {
    let variants = phase_variants(device_src);
    let mut findings = Vec::new();
    for v in &variants {
        let needle = format!("\"{v}\"");
        if !report_src.contains(&needle) {
            findings.push(Finding {
                file: report_display.to_string(),
                line: 1,
                rule: "phase_in_bench_schema",
                excerpt: format!(
                    "Phase::{v} (declared in {device_display}) has no \"{v}\" key \
                     in the bench schema — add it to phase_key and bump \
                     BENCH_SCHEMA_VERSION"
                ),
            });
        }
    }
    findings
}

/// Run the cross-file phase/schema rule against the repo layout rooted
/// at the current directory. Silently a no-op when either file is
/// missing, so fixture-only invocations stay self-contained.
fn lint_phase_schema_repo() -> Vec<Finding> {
    let device_path = "crates/gpusim/src/device.rs";
    let report_path = "crates/bench/src/report.rs";
    let (Ok(device_src), Ok(report_src)) = (
        std::fs::read_to_string(device_path),
        std::fs::read_to_string(report_path),
    ) else {
        return Vec::new();
    };
    lint_phase_schema(device_path, &device_src, report_path, &report_src)
}

/// Recursively collect `.rs` (and `.rs.txt` fixture) files under `root`.
fn collect(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(root)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect(&p, out)?;
        } else {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".rs") || name.ends_with(".rs.txt") {
                out.push(p);
            }
        }
    }
    Ok(())
}

/// Lint every source file under the given roots; returns all findings.
pub fn lint_roots(roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for r in roots {
        collect(r, &mut files)?;
    }
    let mut findings = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        findings.extend(lint_source(&f.display().to_string(), &src));
    }
    Ok(findings)
}

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let roots = if args.is_empty() {
        vec![
            PathBuf::from("crates/core/src"),
            PathBuf::from("crates/gpusim/src"),
        ]
    } else {
        args
    };
    match lint_roots(&roots).map(|mut f| {
        f.extend(lint_phase_schema_repo());
        f
    }) {
        Ok(findings) if findings.is_empty() => {
            println!("repo-lint: clean ({} roots)", roots.len());
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("repo-lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("repo-lint: io error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIOLATIONS: &str = include_str!("../fixtures/violations.rs.txt");
    const CLEAN: &str = include_str!("../fixtures/clean.rs.txt");

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn fixture_violations_all_fire() {
        let f = lint_source("fixtures/violations.rs.txt", VIOLATIONS);
        let r = rules(&f);
        assert!(r.contains(&"unwrap_in_lib"), "{f:?}");
        assert!(r.contains(&"raw_buffer_mut"), "{f:?}");
        assert!(r.contains(&"uncharged_launch"), "{f:?}");
    }

    #[test]
    fn fixture_clean_passes() {
        let f = lint_source("fixtures/clean.rs.txt", CLEAN);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_waives_a_finding() {
        let src = "fn f() { x.unwrap(); // lint:allow(unwrap_in_lib)\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
        let src = "fn f() { x.unwrap();\n}\n";
        assert_eq!(rules(&lint_source("x.rs", src)), vec!["unwrap_in_lib"]);
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src =
            "fn f() {\n    // x.unwrap() in prose\n    let s = \".unwrap()\";\n    let _ = s;\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn charged_launch_in_same_fn_is_clean() {
        let src = "fn k(dev: &Device) {\n    let p = run_blocks(cfg, |b| b);\n    dev.charge_kernel(\"k\", Phase::Histogram, &c);\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
        let src = "fn k() {\n    let p = run_blocks(cfg, |b| b);\n}\n";
        assert_eq!(rules(&lint_source("x.rs", src)), vec!["uncharged_launch"]);
    }

    #[test]
    fn buffer_module_may_define_its_own_accessor() {
        let src = "pub fn as_mut_slice(&mut self) -> &mut [T] { &mut self.data }\n";
        assert!(lint_source("crates/gpusim/src/buffer.rs", src).is_empty());
        assert_eq!(
            rules(&lint_source("crates/core/src/x.rs", src)),
            vec!["raw_buffer_mut"]
        );
    }

    #[test]
    fn use_lines_are_not_launch_sites() {
        let src = "use crate::launch::{run_blocks, LaunchCfg};\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    const PHASE_ENUM: &str = "/// Phases.\npub enum Phase {\n    /// Binning.\n    Binning,\n    /// Hist.\n    Histogram,\n    /// New.\n    Shiny,\n}\n";

    #[test]
    fn phase_variants_are_parsed_from_enum_body() {
        assert_eq!(
            phase_variants(PHASE_ENUM),
            ["Binning", "Histogram", "Shiny"]
        );
        assert!(phase_variants("fn no_enum_here() {}\n").is_empty());
    }

    #[test]
    fn phase_missing_from_bench_schema_fires() {
        let schema = "match p {\n    Phase::Binning => \"Binning\",\n    Phase::Histogram => \"Histogram\",\n}\n";
        let f = lint_phase_schema("device.rs", PHASE_ENUM, "report.rs", schema);
        assert_eq!(rules(&f), vec!["phase_in_bench_schema"]);
        assert!(f[0].excerpt.contains("Shiny"), "{f:?}");
    }

    #[test]
    fn phase_schema_complete_is_clean() {
        let schema = "Phase::Binning => \"Binning\", Phase::Histogram => \"Histogram\", Phase::Shiny => \"Shiny\"";
        assert!(lint_phase_schema("d.rs", PHASE_ENUM, "r.rs", schema).is_empty());
    }

    /// Seeded failure for the gradient-sketching phase: the *real*
    /// `Phase` enum (which carries `Sketch`) against the *real* bench
    /// schema with every `"Sketch"` key stripped must fire — proving
    /// the cross-file rule would have caught a bench schema that never
    /// learned about the new profiler/bench phase.
    #[test]
    fn phase_schema_catches_missing_sketch_phase() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        assert!(
            phase_variants(&dev).iter().any(|v| v == "Sketch"),
            "Phase::Sketch missing from device.rs — update this fixture"
        );
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        let stripped = rep.replace("\"Sketch\"", "\"_removed_\"");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &stripped);
        assert_eq!(rules(&f), vec!["phase_in_bench_schema"]);
        assert!(f[0].excerpt.contains("Sketch"), "{f:?}");
    }

    /// Seeded failure for the serving phase, same shape as the Sketch
    /// fixture: the real `Phase` enum (which carries `Serve`) against
    /// the real bench schema with every `"Serve"` key stripped must
    /// fire — a bench schema that never learned about the serving
    /// phase cannot pass repo-lint.
    #[test]
    fn phase_schema_catches_missing_serve_phase() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        assert!(
            phase_variants(&dev).iter().any(|v| v == "Serve"),
            "Phase::Serve missing from device.rs — update this fixture"
        );
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        let stripped = rep.replace("\"Serve\"", "\"_removed_\"");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &stripped);
        assert_eq!(rules(&f), vec!["phase_in_bench_schema"]);
        assert!(f[0].excerpt.contains("Serve"), "{f:?}");
    }

    /// The real repo files satisfy the cross-file rule (no-op when run
    /// outside the repo root, matching the binary's behaviour).
    #[test]
    fn repo_phase_schema_is_in_sync() {
        let dev = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../gpusim/src/device.rs"
        ))
        .expect("device.rs");
        let rep = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../bench/src/report.rs"
        ))
        .expect("report.rs");
        assert!(!phase_variants(&dev).is_empty(), "Phase enum parse failed");
        let f = lint_phase_schema("device.rs", &dev, "report.rs", &rep);
        assert!(f.is_empty(), "{f:?}");
    }
}
