//! Golden-pins the versioned JSON diagnostics emitted for the bad_repo
//! fixture tree, and asserts every rule introduced by repo-lint v2 fires
//! there. Regenerate the golden file with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p repo-lint --test golden_json
//! ```

use repo_lint::contract::Workspace;

fn fixture(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

#[test]
fn bad_repo_json_matches_golden() {
    let ws = Workspace::load(&fixture("bad_repo"));
    let json = ws.check().to_json();
    let golden_path = fixture("bad_repo.golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("read golden (run with UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        json, golden,
        "bad_repo JSON diagnostics drifted from golden; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn bad_repo_fires_every_v2_rule() {
    let ws = Workspace::load(&fixture("bad_repo"));
    let report = ws.check();
    let fired: std::collections::BTreeSet<&str> =
        report.diagnostics.iter().map(|f| f.rule).collect();
    for rule in [
        "phase_in_bench_schema",
        "canonical_kernel_name",
        "metric_name_canonical",
        "prof_coverage",
        "sanitize",
        "design_inventory",
        "hashmap_iteration",
        "unordered_float_reduce",
        "waiver_without_reason",
        "unwrap_in_lib",
    ] {
        assert!(fired.contains(rule), "rule {rule} did not fire on bad_repo");
    }
    // The reasoned waivers in `lonely` must surface as waived, not vanish.
    assert!(report
        .diagnostics
        .iter()
        .any(|f| f.rule == "sanitize" && f.waived));
    assert!(report
        .diagnostics
        .iter()
        .any(|f| f.rule == "design_inventory" && f.waived));
    // The reasonless waiver must NOT suppress its target rule.
    assert!(report
        .diagnostics
        .iter()
        .any(|f| f.rule == "unwrap_in_lib" && !f.waived));
}

/// Fault-recovery charge sites get no special pass: an unchecksummed
/// fault-path kernel (charged during retry/recovery, no sanitizer
/// replay, no inventory entry, outside any profiler scope) must trip
/// the full kernel contract, not slide by as "error handling".
#[test]
fn unchecksummed_fault_path_kernel_fires_the_contract() {
    let ws = Workspace::load(&fixture("bad_repo"));
    let report = ws.check();
    for kernel in ["retry_replay", "recovery_checksum"] {
        for rule in ["sanitize", "prof_coverage", "design_inventory"] {
            assert!(
                report.diagnostics.iter().any(|f| {
                    f.rule == rule
                        && !f.waived
                        && f.file.ends_with("fault_path.rs.txt")
                        && f.message.contains(kernel)
                }),
                "rule {rule} did not fire on fault-path kernel {kernel}"
            );
        }
    }
}

#[test]
fn bad_repo_schema_header_and_version() {
    let ws = Workspace::load(&fixture("bad_repo"));
    let json = ws.check().to_json();
    assert!(json.starts_with(&format!(
        "{{\n  \"lint_schema_version\": {},",
        repo_lint::report::LINT_SCHEMA_VERSION
    )));
}

#[test]
fn good_repo_is_contract_clean() {
    let ws = Workspace::load(&fixture("good_repo"));
    let report = ws.check();
    assert_eq!(
        report.violations(),
        0,
        "good_repo must satisfy the full contract; got: {:#?}",
        report.diagnostics
    );
    assert_eq!(report.summary.kernels, 1);
}
