//! Golden-snapshot test for the telemetry JSON exporter.
//!
//! The registry is deterministic (BTreeMap ordering, fixed bucket
//! bounds, no wall-clock anywhere), so a fixed synthetic workload
//! exports a **byte-identical** document every run. The committed
//! fixture pins that byte stream; any change to field names, ordering,
//! or float formatting must be deliberate and must bump
//! [`TELEMETRY_SCHEMA_VERSION`].

use serde::Value;
use telemetry::{Telemetry, TELEMETRY_SCHEMA_VERSION};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/telemetry.golden.json"
);

/// A fixed synthetic registry exercising every section of the export:
/// counters, gauges, histograms (with an overflow-adjacent value),
/// per-phase ns, flight-recorder rings on two devices, and a
/// postmortem.
fn golden_registry() -> Telemetry {
    let tel = Telemetry::with_ring_limit(3);
    tel.counter_add("train.rounds_total", 5);
    tel.counter_inc("train.retries_total");
    tel.gauge_set("train.pool_high_water", 6.0);
    tel.gauge_set("serve.batch_fill_ratio", 0.75);
    tel.hist_observe("train.split_gain", 0.5);
    tel.hist_observe("train.split_gain", 3.25);
    tel.hist_observe("serve.latency_ns", 1500.0);
    tel.record_charge(0, "hist_build", "Histogram", 1200.0, 0.0, 0);
    tel.record_charge(0, "split_eval", "SplitEval", 300.0, 1200.0, 0);
    tel.record_charge(0, "all_gather", "Comm", 90.5, 1500.0, 2);
    tel.record_charge(0, "partition", "Partition", 42.0, 1590.5, 1);
    tel.record_charge(1, "hist_build", "Histogram", 1100.0, 0.0, 0);
    tel.record_fault(1, "transient fault injected at charge 4");
    tel.record_span(0, "round/level", 0.0, 1632.5);
    tel.record_postmortem("DeviceLost at round 2 (golden fixture)");
    tel
}

/// The export is byte-identical to the committed fixture. Regenerate
/// after an intentional change with
/// `UPDATE_GOLDEN=1 cargo test -p telemetry --test golden`.
#[test]
fn telemetry_json_matches_golden_fixture() {
    let json = golden_registry().to_json();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture: run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, want,
        "telemetry JSON drifted from tests/golden/telemetry.golden.json; \
         if intentional, bump TELEMETRY_SCHEMA_VERSION and regenerate \
         with UPDATE_GOLDEN=1"
    );
}

/// Structural contract, independent of the byte fixture: the envelope
/// carries exactly the documented sections, in order, and the schema
/// header matches the crate constant.
#[test]
fn telemetry_json_sections_are_stable() {
    let json = golden_registry().to_json();
    let v: Value = serde_json::from_str(&json).expect("valid JSON");
    let obj = v.as_object().expect("envelope object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "telemetry_schema_version",
            "counters",
            "gauges",
            "histograms",
            "phase_ns",
            "recorder",
            "flight_recorder",
            "postmortems",
        ],
        "envelope sections changed — bump TELEMETRY_SCHEMA_VERSION"
    );
    let (_, ver) = &obj[0];
    assert_eq!(ver, &Value::UInt(TELEMETRY_SCHEMA_VERSION as u64));

    // Every flight-recorder event carries the pinned field set.
    let (_, recorder) = obj
        .iter()
        .find(|(k, _)| k == "flight_recorder")
        .expect("flight_recorder");
    for dev in recorder.as_array().expect("device array") {
        let (_, events) = dev
            .as_object()
            .expect("device object")
            .iter()
            .find(|(k, _)| k == "events")
            .expect("events");
        for e in events.as_array().expect("events array") {
            let ekeys: Vec<&str> = e
                .as_object()
                .expect("event object")
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            assert_eq!(
                ekeys,
                ["seq", "kind", "device", "name", "detail", "start_ns", "end_ns", "stream"],
                "event fields changed — bump TELEMETRY_SCHEMA_VERSION"
            );
        }
    }
}

/// The bounded ring sheds the oldest events: device 0 got 5 events
/// (4 charges + 1 span) with limit 3, so 2 dropped and the postmortem
/// keeps the most recent ones.
#[test]
fn golden_registry_ring_sheds_oldest() {
    let tel = golden_registry();
    let pms = tel.postmortems();
    assert_eq!(pms.len(), 1);
    assert_eq!(pms[0].dropped_events, 2);
    assert!(pms[0].events.len() == 5, "3 (dev 0) + 2 (dev 1) retained");
    let json = tel.last_postmortem_json().expect("postmortem present");
    let v: Value = serde_json::from_str(&json).expect("postmortem JSON parses");
    assert!(v.as_object().is_some());
}
