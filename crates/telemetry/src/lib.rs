//! # telemetry — zero-perturbation runtime metrics
//!
//! A metrics registry in the spirit of Prometheus client libraries,
//! specialized for the simulated-GPU stack: **counters** (monotone
//! `u64`), **gauges** (last-write `f64`), and **fixed-bucket
//! histograms** (deterministic power-of-two bounds, HDR-style), all
//! keyed by canonical `lower_snake` dotted names (`train.split_gain`,
//! `serve.latency_ns`). A **flight recorder** keeps a bounded ring of
//! the most recent charge / fault / span events per device so a failed
//! run can dump a postmortem of what the device was doing when it died.
//!
//! Two exporters: Prometheus text exposition ([`Telemetry::prometheus`])
//! and schema-versioned JSON ([`Telemetry::to_json`],
//! [`TELEMETRY_SCHEMA_VERSION`], golden-pinned in `tests/golden.rs`).
//!
//! ## The zero-perturbation contract
//!
//! Telemetry is a *pure observer*, exactly like the sanitizer and the
//! profiler: it is consulted **after** the ledger has charged, it never
//! charges simulated time itself, it never allocates device memory, and
//! nothing it returns feeds back into training or serving decisions.
//! Attaching, detaching, or toggling telemetry must leave trees,
//! predictions, `now_ns`, and the charge-record stream bit-identical —
//! the contract is regression-tested in `crates/core/tests/telemetry.rs`.
//!
//! This crate deliberately does **not** depend on `gpusim`: the device
//! layer depends on telemetry (to hold the observer slot), so phases and
//! kernel names cross the boundary as plain strings. Per-phase
//! nanosecond totals are accumulated with the same `max(0.0)` clamp and
//! in the same call order as the ledger's own subtotals, so the two
//! reconcile **bitwise** — `repro report` asserts exactly that.

#![warn(missing_docs)]

use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::collections::{BTreeMap, VecDeque};

/// Version stamp of the JSON document emitted by [`Telemetry::to_json`].
/// Bump when field names, ordering, or semantics change, and regenerate
/// the golden fixture (`UPDATE_GOLDEN=1 cargo test -p telemetry`).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Default per-device flight-recorder capacity (events retained).
pub const DEFAULT_RING_LIMIT: usize = 256;

/// Number of histogram buckets: bucket `i < 63` holds values in
/// `(2^(i-1), 2^i]` (bucket 0 holds everything `<= 1`), bucket 63 is
/// the overflow (`+Inf`) bucket.
pub const HIST_BUCKETS: usize = 64;

/// One flight-recorder entry: a charge, fault, or span observed on a
/// device, stamped with the simulated clock and a global sequence
/// number (so events from several devices interleave deterministically
/// in recording order).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FlightEvent {
    /// Global recording order across all devices.
    pub seq: u64,
    /// `"charge"`, `"fault"`, or `"span"`.
    pub kind: String,
    /// Device the event was observed on.
    pub device: usize,
    /// Kernel name, fault description, or span path.
    pub name: String,
    /// Secondary detail: phase name for charges, empty otherwise.
    pub detail: String,
    /// Simulated start timestamp (ns); 0 for faults.
    pub start_ns: f64,
    /// Simulated end timestamp (ns); equals `start_ns` for faults.
    pub end_ns: f64,
    /// Stream the charge was issued on (0 for faults and spans).
    pub stream: usize,
}

/// A snapshot of the flight recorder taken at failure time, stored
/// in memory until a caller (`repro report`, tests) writes it out.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Why the postmortem was recorded (the error's display string).
    pub reason: String,
    /// All retained events across devices, in recording order.
    pub events: Vec<FlightEvent>,
    /// Events shed by the bounded rings before the failure.
    pub dropped_events: u64,
}

impl Postmortem {
    /// The postmortem as a standalone JSON document (schema-versioned,
    /// same event layout as the `flight_recorder` section of
    /// [`Telemetry::to_json`]).
    pub fn to_json(&self) -> String {
        let doc = Value::Object(vec![
            (
                "telemetry_schema_version".into(),
                Value::UInt(TELEMETRY_SCHEMA_VERSION as u64),
            ),
            ("reason".into(), Value::String(self.reason.clone())),
            ("dropped_events".into(), Value::UInt(self.dropped_events)),
            (
                "events".into(),
                Value::Array(self.events.iter().map(event_value).collect()),
            ),
        ]);
        serde_json::to_string(&doc).expect("postmortem serializes")
    }
}

/// Aggregate state of one fixed-bucket histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0.0 when empty).
    pub min: f64,
    /// Largest observed value (0.0 when empty).
    pub max: f64,
    /// Per-bucket counts, `buckets[i]` as documented on
    /// [`HIST_BUCKETS`]; trailing empty buckets trimmed.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Upper bound (`le`) of bucket `i`; `None` for the overflow bucket.
    pub fn bucket_le(i: usize) -> Option<f64> {
        if i >= HIST_BUCKETS - 1 {
            None
        } else {
            Some((1u64 << i) as f64)
        }
    }
}

/// Point-in-time copy of the whole registry, used by `repro report`
/// and the tests. Maps are `BTreeMap` so iteration (and therefore
/// export order) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Per-phase charged nanoseconds, accumulated in ledger call order
    /// with the ledger's negative clamp — reconciles bitwise with
    /// `LedgerSummary::by_phase`.
    pub phase_ns: BTreeMap<String, f64>,
    /// Charges observed (all devices).
    pub charges_recorded: u64,
    /// Faults observed (all devices).
    pub faults_recorded: u64,
    /// Spans observed (all devices).
    pub spans_recorded: u64,
}

#[derive(Clone, Debug, Default)]
struct FixedHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl FixedHistogram {
    fn observe(&mut self, v: f64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            buckets: self.counts.clone(),
        }
    }
}

/// Deterministic bucket index: smallest `i` with `v <= 2^i` (bucket 0
/// takes everything `<= 1`, including negatives and NaN), clamped into
/// the overflow bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 1.0 {
        return 0;
    }
    let u = v.ceil() as u64;
    let idx = 64 - (u - 1).leading_zeros() as usize;
    idx.min(HIST_BUCKETS - 1)
}

#[derive(Default)]
struct DeviceRing {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

#[derive(Default)]
struct TelInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, FixedHistogram>,
    phase_ns: BTreeMap<String, f64>,
    rings: BTreeMap<usize, DeviceRing>,
    span_stacks: BTreeMap<usize, Vec<String>>,
    postmortems: Vec<Postmortem>,
    next_seq: u64,
    charges_recorded: u64,
    faults_recorded: u64,
    spans_recorded: u64,
}

/// The metrics registry plus flight recorder. Cheap to share
/// (`Arc<Telemetry>`), internally locked; every recording method takes
/// `&self` and returns nothing, so instrumentation sites cannot
/// accidentally branch on observer state.
pub struct Telemetry {
    ring_limit: usize,
    inner: Mutex<TelInner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry with the default flight-recorder capacity.
    pub fn new() -> Self {
        Self::with_ring_limit(DEFAULT_RING_LIMIT)
    }

    /// A registry retaining at most `ring_limit` events per device.
    pub fn with_ring_limit(ring_limit: usize) -> Self {
        Telemetry {
            ring_limit: ring_limit.max(1),
            inner: Mutex::new(TelInner::default()),
        }
    }

    // -- registry --------------------------------------------------------

    /// Add `delta` to the counter `name` (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment the counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set the gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_string(), v);
    }

    /// Record one observation of `v` in the histogram `name`.
    pub fn hist_observe(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock();
        inner.hists.entry(name.to_string()).or_default().observe(v);
    }

    // -- flight recorder -------------------------------------------------

    /// Record a ledger charge: ring event plus the per-phase ns
    /// accumulator. Called by the device *after* the ledger charged;
    /// the `ns.max(0.0)` clamp mirrors the ledger's negative-duration
    /// clamp so phase subtotals stay bitwise-reconcilable.
    pub fn record_charge(
        &self,
        device: usize,
        name: &str,
        phase: &str,
        ns: f64,
        start_ns: f64,
        stream: usize,
    ) {
        let ns = ns.max(0.0);
        let mut inner = self.inner.lock();
        *inner.phase_ns.entry(phase.to_string()).or_insert(0.0) += ns;
        inner.charges_recorded += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = FlightEvent {
            seq,
            kind: "charge".into(),
            device,
            name: name.to_string(),
            detail: phase.to_string(),
            start_ns,
            end_ns: start_ns + ns,
            stream,
        };
        self.push_event(&mut inner, device, ev);
    }

    /// Mirror the ledger's idle booking: `advance_to` past the makespan
    /// raises `Idle` by `+= gap` without a charge record, so the device
    /// calls this with the same gap, in the same order, keeping the
    /// `Idle` phase bitwise-reconcilable like every charged phase.
    pub fn record_idle(&self, gap_ns: f64) {
        if gap_ns <= 0.0 {
            return;
        }
        let mut inner = self.inner.lock();
        *inner.phase_ns.entry("Idle".to_string()).or_insert(0.0) += gap_ns;
    }

    /// Record an injected-fault observation on `device`.
    pub fn record_fault(&self, device: usize, desc: &str) {
        let mut inner = self.inner.lock();
        inner.faults_recorded += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = FlightEvent {
            seq,
            kind: "fault".into(),
            device,
            name: desc.to_string(),
            detail: String::new(),
            start_ns: 0.0,
            end_ns: 0.0,
            stream: 0,
        };
        self.push_event(&mut inner, device, ev);
    }

    /// Open a span labelled `label` on `device`: pushes onto the
    /// per-device path stack so nested spans compose into
    /// `round 0/level 2`-style paths. Paired with
    /// [`Telemetry::span_exit`] (RAII guards in the device layer call
    /// both).
    pub fn span_enter(&self, device: usize, label: &str) {
        let mut inner = self.inner.lock();
        inner
            .span_stacks
            .entry(device)
            .or_default()
            .push(label.to_string());
    }

    /// Close the innermost open span on `device`, recording its full
    /// path with the given simulated timestamps. No-op when the stack
    /// is empty (e.g. telemetry attached mid-scope).
    pub fn span_exit(&self, device: usize, start_ns: f64, end_ns: f64) {
        let path = {
            let mut inner = self.inner.lock();
            let stack = inner.span_stacks.entry(device).or_default();
            let path = stack.join("/");
            stack.pop();
            path
        };
        if !path.is_empty() {
            self.record_span(device, &path, start_ns, end_ns);
        }
    }

    /// Record a closed instrumentation span (simulated timestamps).
    pub fn record_span(&self, device: usize, path: &str, start_ns: f64, end_ns: f64) {
        let mut inner = self.inner.lock();
        inner.spans_recorded += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = FlightEvent {
            seq,
            kind: "span".into(),
            device,
            name: path.to_string(),
            detail: String::new(),
            start_ns,
            end_ns,
            stream: 0,
        };
        self.push_event(&mut inner, device, ev);
    }

    fn push_event(&self, inner: &mut TelInner, device: usize, ev: FlightEvent) {
        let ring = inner.rings.entry(device).or_default();
        ring.events.push_back(ev);
        while ring.events.len() > self.ring_limit {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }

    /// Snapshot the flight recorder into an in-memory [`Postmortem`].
    /// Library code calls this on typed-error paths; nothing is written
    /// to disk here — `repro report` and the tests retrieve and persist.
    pub fn record_postmortem(&self, reason: &str) {
        let mut inner = self.inner.lock();
        let mut events: Vec<FlightEvent> = inner
            .rings
            .values()
            .flat_map(|r| r.events.iter().cloned())
            .collect();
        events.sort_by_key(|e| e.seq);
        let dropped_events = inner.rings.values().map(|r| r.dropped).sum();
        inner.postmortems.push(Postmortem {
            reason: reason.to_string(),
            events,
            dropped_events,
        });
    }

    /// All postmortems recorded so far, in order.
    pub fn postmortems(&self) -> Vec<Postmortem> {
        self.inner.lock().postmortems.clone()
    }

    /// The most recent postmortem as a JSON document, if any failure
    /// was recorded.
    pub fn last_postmortem_json(&self) -> Option<String> {
        self.inner.lock().postmortems.last().map(|p| p.to_json())
    }

    // -- export ----------------------------------------------------------

    /// Point-in-time copy of the registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock();
        TelemetrySnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            phase_ns: inner.phase_ns.clone(),
            charges_recorded: inner.charges_recorded,
            faults_recorded: inner.faults_recorded,
            spans_recorded: inner.spans_recorded,
        }
    }

    /// Prometheus text exposition (version 0.0.4): dotted metric names
    /// flattened to `snake_case` with `_`, histograms exported with
    /// cumulative `le` buckets plus `_sum` / `_count`.
    pub fn prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &snap.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                cum += c;
                if let Some(le) = HistSnapshot::bucket_le(i) {
                    out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// The whole registry plus flight recorder as one JSON document
    /// (`TELEMETRY_SCHEMA_VERSION` header; layout golden-pinned).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("telemetry serializes")
    }

    /// The [`Telemetry::to_json`] document as a [`Value`] tree, for
    /// callers embedding telemetry in a larger report.
    pub fn to_value(&self) -> Value {
        let snap = self.snapshot();
        let inner = self.inner.lock();
        let counters = snap
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let gauges = snap
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect();
        let hists = snap
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let le = match HistSnapshot::bucket_le(i) {
                            Some(le) => Value::Float(le),
                            None => Value::String("+Inf".into()),
                        };
                        Value::Object(vec![("le".into(), le), ("count".into(), Value::UInt(*c))])
                    })
                    .collect();
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::UInt(h.count)),
                        ("sum".into(), Value::Float(h.sum)),
                        ("min".into(), Value::Float(h.min)),
                        ("max".into(), Value::Float(h.max)),
                        ("buckets".into(), Value::Array(buckets)),
                    ]),
                )
            })
            .collect();
        let phase_ns = snap
            .phase_ns
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect();
        let recorder = inner
            .rings
            .iter()
            .map(|(dev, ring)| {
                Value::Object(vec![
                    ("device".into(), Value::UInt(*dev as u64)),
                    ("dropped".into(), Value::UInt(ring.dropped)),
                    (
                        "events".into(),
                        Value::Array(ring.events.iter().map(event_value).collect()),
                    ),
                ])
            })
            .collect();
        let postmortems = inner
            .postmortems
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("reason".into(), Value::String(p.reason.clone())),
                    ("dropped_events".into(), Value::UInt(p.dropped_events)),
                    (
                        "events".into(),
                        Value::Array(p.events.iter().map(event_value).collect()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "telemetry_schema_version".into(),
                Value::UInt(TELEMETRY_SCHEMA_VERSION as u64),
            ),
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(hists)),
            ("phase_ns".into(), Value::Object(phase_ns)),
            (
                "recorder".into(),
                Value::Object(vec![
                    ("charges".into(), Value::UInt(snap.charges_recorded)),
                    ("faults".into(), Value::UInt(snap.faults_recorded)),
                    ("spans".into(), Value::UInt(snap.spans_recorded)),
                ]),
            ),
            ("flight_recorder".into(), Value::Array(recorder)),
            ("postmortems".into(), Value::Array(postmortems)),
        ])
    }
}

fn event_value(e: &FlightEvent) -> Value {
    Value::Object(vec![
        ("seq".into(), Value::UInt(e.seq)),
        ("kind".into(), Value::String(e.kind.clone())),
        ("device".into(), Value::UInt(e.device as u64)),
        ("name".into(), Value::String(e.name.clone())),
        ("detail".into(), Value::String(e.detail.clone())),
        ("start_ns".into(), Value::Float(e.start_ns)),
        ("end_ns".into(), Value::Float(e.end_ns)),
        ("stream".into(), Value::UInt(e.stream as u64)),
    ])
}

/// Flatten a dotted metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.replace('.', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let tel = Telemetry::new();
        tel.counter_inc("train.rounds_total");
        tel.counter_add("train.rounds_total", 4);
        tel.counter_inc("serve.requests_total");
        let snap = tel.snapshot();
        assert_eq!(snap.counters["train.rounds_total"], 5);
        assert_eq!(snap.counters["serve.requests_total"], 1);
        let prom = tel.prometheus();
        assert!(prom.contains("# TYPE train_rounds_total counter"));
        assert!(prom.contains("train_rounds_total 5"));
    }

    #[test]
    fn gauges_take_last_write() {
        let tel = Telemetry::new();
        tel.gauge_set("serve.queue_depth", 3.0);
        tel.gauge_set("serve.queue_depth", 1.0);
        assert_eq!(tel.snapshot().gauges["serve.queue_depth"], 1.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.5), 1);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(2.5), 2);
        assert_eq!(bucket_index(4.0), 2);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let tel = Telemetry::new();
        for v in [3.0, 1.0, 100.0] {
            tel.hist_observe("serve.latency_ns", v);
        }
        let snap = tel.snapshot();
        let h = &snap.histograms["serve.latency_ns"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        let prom = tel.prometheus();
        assert!(prom.contains("# TYPE serve_latency_ns histogram"));
        assert!(prom.contains("serve_latency_ns_count 3"));
        assert!(prom.contains("serve_latency_ns_sum 104"));
        // Cumulative buckets end at the total count.
        assert!(prom.contains("serve_latency_ns_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn phase_ns_clamps_negative_like_the_ledger() {
        let tel = Telemetry::new();
        tel.record_charge(0, "hist_build", "Histogram", 100.0, 0.0, 0);
        tel.record_charge(0, "hist_build", "Histogram", -50.0, 100.0, 0);
        assert_eq!(tel.snapshot().phase_ns["Histogram"], 100.0);
    }

    #[test]
    fn flight_recorder_ring_is_bounded() {
        let tel = Telemetry::with_ring_limit(4);
        for i in 0..10 {
            tel.record_charge(0, "k", "Histogram", 1.0, i as f64, 0);
        }
        tel.record_postmortem("test failure");
        let pm = &tel.postmortems()[0];
        assert_eq!(pm.events.len(), 4);
        assert_eq!(pm.dropped_events, 6);
        // The retained events are the most recent ones, in seq order.
        let seqs: Vec<u64> = pm.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        assert_eq!(pm.reason, "test failure");
    }

    #[test]
    fn postmortem_interleaves_devices_in_recording_order() {
        let tel = Telemetry::new();
        tel.record_charge(1, "a", "Histogram", 1.0, 0.0, 0);
        tel.record_fault(0, "transient ECC");
        tel.record_span(1, "round/level", 0.0, 5.0);
        tel.record_postmortem("device lost");
        let pm = &tel.postmortems()[0];
        let kinds: Vec<&str> = pm.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["charge", "fault", "span"]);
        let json = pm.to_json();
        let v: Value = serde_json::from_str(&json).expect("postmortem JSON parses");
        let obj = v.as_object().expect("object");
        assert!(obj.iter().any(|(k, _)| k == "telemetry_schema_version"));
    }

    #[test]
    fn json_export_is_schema_versioned_and_parses() {
        let tel = Telemetry::new();
        tel.counter_inc("train.rounds_total");
        tel.gauge_set("train.pool_high_water", 7.0);
        tel.hist_observe("train.split_gain", 0.25);
        tel.record_charge(0, "hist_build", "Histogram", 10.0, 0.0, 1);
        let json = tel.to_json();
        let v: Value = serde_json::from_str(&json).expect("telemetry JSON parses");
        let obj = v.as_object().expect("object");
        let (_, ver) = obj
            .iter()
            .find(|(k, _)| k == "telemetry_schema_version")
            .expect("schema header");
        assert_eq!(ver, &Value::UInt(TELEMETRY_SCHEMA_VERSION as u64));
    }
}
