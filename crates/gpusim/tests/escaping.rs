//! JSON string-escaping round-trips for the two exporters that embed
//! free-form names: the profiler's Chrome trace and the telemetry
//! registry's schema-versioned envelope.
//!
//! Kernel names and scope labels are source-code identifiers today, but
//! nothing in the charge API forbids quotes, backslashes or non-ASCII —
//! and fault descriptions (which land in flight-recorder `detail`
//! fields) interpolate error messages that may contain anything. A
//! single unescaped `"` would turn a postmortem dump into invalid JSON
//! at exactly the moment it matters most, so every exporter must
//! produce parseable output whose strings round-trip byte-for-byte.

use gpusim::{Device, Phase, Telemetry};
use serde::Value;

/// Names exercising the JSON escape table: quote, backslash, control
/// characters, and multi-byte UTF-8.
const HOSTILE: [&str; 4] = [
    "kernel \"quoted\"",
    "back\\slash\\path",
    "tab\there\nnewline",
    "hïst_κernel_構築",
];

fn names_in(v: &Value) -> Vec<String> {
    // Collect every string value in the document, recursively.
    let mut out = Vec::new();
    match v {
        Value::String(s) => out.push(s.clone()),
        Value::Array(items) => {
            for i in items {
                out.extend(names_in(i));
            }
        }
        Value::Object(fields) => {
            for (_, f) in fields.iter() {
                out.extend(names_in(f));
            }
        }
        _ => {}
    }
    out
}

#[test]
fn chrome_trace_escapes_hostile_kernel_names() {
    let device = Device::rtx4090();
    device.enable_profiler();
    for name in HOSTILE {
        device.charge_ns(name, Phase::Other, 100.0);
    }
    let trace = device.chrome_trace().expect("profiler attached");
    let doc: Value = serde_json::from_str(&trace).expect("trace must stay valid JSON");
    let strings = names_in(&doc);
    for name in HOSTILE {
        assert!(
            strings.iter().any(|s| s == name),
            "kernel name {name:?} did not round-trip; strings: {strings:?}"
        );
    }
}

#[test]
fn telemetry_json_escapes_hostile_metric_names() {
    let tel = Telemetry::new();
    for name in HOSTILE {
        tel.counter_inc(name);
        tel.gauge_set(name, 1.5);
        tel.hist_observe(name, 42.0);
    }
    let json = tel.to_json();
    let doc: Value = serde_json::from_str(&json).expect("telemetry must stay valid JSON");
    let obj = doc.as_object().expect("envelope is an object");
    for section in ["counters", "gauges", "histograms"] {
        let (_, sec) = obj
            .iter()
            .find(|(k, _)| k == section)
            .unwrap_or_else(|| panic!("missing section {section}"));
        let keys: Vec<&str> = sec
            .as_object()
            .expect("section is an object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        for name in HOSTILE {
            assert!(
                keys.contains(&name),
                "metric name {name:?} did not round-trip in {section}; keys: {keys:?}"
            );
        }
    }
}

#[test]
fn flight_recorder_postmortem_escapes_hostile_details() {
    let tel = Telemetry::new();
    for (i, name) in HOSTILE.iter().enumerate() {
        tel.record_charge(0, name, "Other", 10.0, i as f64 * 10.0, 0);
        tel.record_fault(0, &format!("fault with {name}"));
    }
    tel.record_postmortem("seeded \"loss\" on device\\0\nκατάρρευση");
    let json = tel.last_postmortem_json().expect("postmortem recorded");
    let doc: Value = serde_json::from_str(&json).expect("postmortem must stay valid JSON");
    let strings = names_in(&doc);
    for name in HOSTILE {
        assert!(
            strings.iter().any(|s| s == name || s.contains(name)),
            "event name {name:?} did not round-trip; strings: {strings:?}"
        );
    }
    assert!(
        strings
            .iter()
            .any(|s| s.contains("seeded \"loss\" on device\\0\nκατάρρευση")),
        "postmortem reason did not round-trip"
    );
}

#[test]
fn scope_labels_with_hostile_names_round_trip_via_trace() {
    let device = Device::rtx4090();
    device.enable_profiler();
    let tel = device.enable_telemetry();
    {
        let _scope = device.prof_scope("round \"zero\"", Some(7));
        device.charge_ns("inner", Phase::Other, 50.0);
    }
    let trace = device.chrome_trace().expect("profiler attached");
    let doc: Value = serde_json::from_str(&trace).expect("trace must stay valid JSON");
    assert!(
        names_in(&doc).iter().any(|s| s.contains("round \"zero\"")),
        "hostile scope label missing from trace"
    );
    let tel_doc: Value =
        serde_json::from_str(&tel.to_json()).expect("telemetry must stay valid JSON");
    assert!(
        names_in(&tel_doc)
            .iter()
            .any(|s| s.contains("round \"zero\" 7")),
        "hostile span label missing from telemetry"
    );
}
