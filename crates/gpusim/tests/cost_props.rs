//! Property tests pinning the cost model's algebraic invariants:
//! non-negativity, monotonicity in work, collective degeneracy at one
//! rank, and commutativity of [`KernelCost::merged`] totals. These are
//! the contracts the profiler, the bench regression gate, and the
//! paper-figure reproductions all silently assume.

use gpusim::cost::{CostModel, CostParams, KernelCost};
use proptest::prelude::*;

fn models() -> Vec<CostModel> {
    vec![
        CostModel::new(CostParams::rtx4090()),
        CostModel::new(CostParams::rtx3090()),
        CostModel::new(CostParams::a100()),
        CostModel::new(CostParams::h100()),
    ]
}

/// A bounded-but-wide random work descriptor.
fn cost_strategy() -> impl Strategy<Value = KernelCost> {
    (
        (0.0f64..1e12, 0.0f64..1e11, 0.0f64..1e8, 0.0f64..1e8),
        (0.0f64..1e8, 0.0f64..1e8, 0.0f64..1e8, 0.0f64..1e4),
    )
        .prop_map(
            |(
                (flops, dram_bytes, gmem_atomics, gmem_atomic_replays),
                (smem_atomics, smem_atomic_replays, sort_keys, launches),
            )| KernelCost {
                flops,
                dram_bytes,
                gmem_atomics,
                gmem_atomic_replays,
                smem_atomics,
                smem_atomic_replays,
                sort_keys,
                launches,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// kernel_ns is finite and non-negative for any work descriptor,
    /// and exactly zero only for the all-zero descriptor.
    #[test]
    fn kernel_ns_is_finite_and_non_negative(c in cost_strategy()) {
        for m in models() {
            let ns = m.kernel_ns(&c);
            prop_assert!(ns.is_finite(), "{ns}");
            prop_assert!(ns >= 0.0, "{ns}");
        }
    }

    /// More flops never makes a kernel faster (holding all else fixed).
    #[test]
    fn kernel_ns_monotone_in_flops(c in cost_strategy(), extra in 0.0f64..1e12) {
        for m in models() {
            let mut bigger = c;
            bigger.flops += extra;
            prop_assert!(
                m.kernel_ns(&bigger) >= m.kernel_ns(&c),
                "flops +{extra} reduced time"
            );
        }
    }

    /// More DRAM traffic never makes a kernel faster.
    #[test]
    fn kernel_ns_monotone_in_bytes(c in cost_strategy(), extra in 0.0f64..1e11) {
        for m in models() {
            let mut bigger = c;
            bigger.dram_bytes += extra;
            prop_assert!(
                m.kernel_ns(&bigger) >= m.kernel_ns(&c),
                "bytes +{extra} reduced time"
            );
        }
    }

    /// Serialized terms (atomics, replays, sort keys, launches) each
    /// strictly add: inflating any one never reduces the charge.
    #[test]
    fn kernel_ns_monotone_in_serialized_terms(
        c in cost_strategy(),
        extra in 1.0f64..1e8,
        which in 0usize..6,
    ) {
        for m in models() {
            let mut bigger = c;
            match which {
                0 => bigger.gmem_atomics += extra,
                1 => bigger.gmem_atomic_replays += extra,
                2 => bigger.smem_atomics += extra,
                3 => bigger.smem_atomic_replays += extra,
                4 => bigger.sort_keys += extra,
                _ => bigger.launches += extra,
            }
            prop_assert!(m.kernel_ns(&bigger) >= m.kernel_ns(&c));
        }
    }

    /// Ring all-reduce: zero at k ≤ 1, monotone in bytes at fixed k,
    /// and monotone in k at fixed bytes (more hops, more latency).
    #[test]
    fn all_reduce_monotone_and_degenerate(
        bytes in 0.0f64..1e10,
        extra in 0.0f64..1e10,
        k in 2usize..64,
    ) {
        for m in models() {
            prop_assert_eq!(m.ring_all_reduce_ns(bytes, 0), 0.0);
            prop_assert_eq!(m.ring_all_reduce_ns(bytes, 1), 0.0);
            let t = m.ring_all_reduce_ns(bytes, k);
            prop_assert!(t.is_finite() && t >= 0.0);
            prop_assert!(m.ring_all_reduce_ns(bytes + extra, k) >= t);
            prop_assert!(m.ring_all_reduce_ns(bytes, k + 1) >= t);
        }
    }

    /// All-gather: zero at k ≤ 1, monotone in per-rank bytes and k.
    #[test]
    fn all_gather_monotone_and_degenerate(
        bytes in 0.0f64..1e10,
        extra in 0.0f64..1e10,
        k in 2usize..64,
    ) {
        for m in models() {
            prop_assert_eq!(m.all_gather_ns(bytes, 0), 0.0);
            prop_assert_eq!(m.all_gather_ns(bytes, 1), 0.0);
            let t = m.all_gather_ns(bytes, k);
            prop_assert!(t.is_finite() && t >= 0.0);
            prop_assert!(m.all_gather_ns(bytes + extra, k) >= t);
            prop_assert!(m.all_gather_ns(bytes, k + 1) >= t);
        }
    }

    /// Broadcast: zero at k ≤ 1, monotone in bytes; hop count grows
    /// with ceil(log2 k), so doubling k never shrinks the time.
    #[test]
    fn broadcast_monotone_and_degenerate(
        bytes in 0.0f64..1e10,
        extra in 0.0f64..1e10,
        k in 2usize..32,
    ) {
        for m in models() {
            prop_assert_eq!(m.broadcast_ns(bytes, 1), 0.0);
            let t = m.broadcast_ns(bytes, k);
            prop_assert!(t.is_finite() && t >= 0.0);
            prop_assert!(m.broadcast_ns(bytes + extra, k) >= t);
            prop_assert!(m.broadcast_ns(bytes, k * 2) >= t);
        }
    }

    /// merged() sums every term and is commutative on totals: a⊕b and
    /// b⊕a describe identical work, so they must charge identically.
    #[test]
    fn merged_is_commutative_on_totals(a in cost_strategy(), b in cost_strategy()) {
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        prop_assert_eq!(ab.flops.to_bits(), ba.flops.to_bits());
        prop_assert_eq!(ab.dram_bytes.to_bits(), ba.dram_bytes.to_bits());
        prop_assert_eq!(ab.gmem_atomics.to_bits(), ba.gmem_atomics.to_bits());
        prop_assert_eq!(
            ab.gmem_atomic_replays.to_bits(),
            ba.gmem_atomic_replays.to_bits()
        );
        prop_assert_eq!(ab.smem_atomics.to_bits(), ba.smem_atomics.to_bits());
        prop_assert_eq!(
            ab.smem_atomic_replays.to_bits(),
            ba.smem_atomic_replays.to_bits()
        );
        prop_assert_eq!(ab.sort_keys.to_bits(), ba.sort_keys.to_bits());
        prop_assert_eq!(ab.launches.to_bits(), ba.launches.to_bits());
        // And the model sees the same work either way.
        for m in models() {
            prop_assert_eq!(m.kernel_ns(&ab).to_bits(), m.kernel_ns(&ba).to_bits());
        }
    }

    /// Merging with the zero descriptor is the identity on every term.
    #[test]
    fn merged_with_zero_is_identity(a in cost_strategy()) {
        let z = KernelCost::default();
        let az = a.merged(&z);
        prop_assert_eq!(az.flops.to_bits(), a.flops.to_bits());
        prop_assert_eq!(az.dram_bytes.to_bits(), a.dram_bytes.to_bits());
        prop_assert_eq!(az.launches.to_bits(), a.launches.to_bits());
        prop_assert_eq!(az.sort_keys.to_bits(), a.sort_keys.to_bits());
    }
}

/// Commutativity is checked on *totals*: the charged time for a merged
/// descriptor is order-independent because merging is plain addition
/// per field. (kernel_ns(a⊕b) ≠ kernel_ns(a) + kernel_ns(b) in general
/// — max(compute, dram) overlaps — and that is intentional.)
#[test]
fn merged_overlap_can_beat_sum_of_parts() {
    let m = CostModel::new(CostParams::rtx4090());
    let a = KernelCost::streaming(1e12, 0.0); // compute-bound
    let b = KernelCost::streaming(0.0, 1e10); // memory-bound
    let merged = m.kernel_ns(&a.merged(&b));
    let parts = m.kernel_ns(&a) + m.kernel_ns(&b);
    assert!(
        merged <= parts,
        "overlap must never charge more than serial parts: {merged} vs {parts}"
    );
}
