//! Property-based tests of the simulator's primitives and cost model.

use gpusim::cost::{CostModel, CostParams, KernelCost};
use gpusim::occupancy::{occupancy, BlockResources, SmLimits};
use gpusim::primitives::{
    exclusive_scan_u32, reduce_by_key_sorted, reduce_sum_f64, segmented_reduce_sum_f64,
    sort_by_key_u32,
};
use gpusim::timeline::Ledger;
use gpusim::warp::{
    atomic_replay_degree, atomic_replay_excess, bank_conflict_degree, sectors_touched,
};
use gpusim::{Device, Phase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sort_agrees_with_std_and_permutation_is_valid(
        keys in proptest::collection::vec(any::<u32>(), 0..500)
    ) {
        let dev = Device::rtx4090();
        let (sorted, perm) = sort_by_key_u32(&dev, Phase::Other, "s", &keys);
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(&sorted, &want);
        // perm is a permutation of 0..n mapping into the original keys.
        let mut seen = vec![false; keys.len()];
        for (i, &p) in perm.iter().enumerate() {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
            prop_assert_eq!(sorted[i], keys[p as usize]);
        }
    }

    #[test]
    fn sort_is_stable(keys in proptest::collection::vec(0u32..8, 0..200)) {
        let dev = Device::rtx4090();
        let (_, perm) = sort_by_key_u32(&dev, Phase::Other, "s", &keys);
        // Equal keys keep ascending original indices.
        for w in perm.windows(2) {
            if keys[w[0] as usize] == keys[w[1] as usize] {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn scan_prefix_property(vals in proptest::collection::vec(0u32..1000, 0..300)) {
        let dev = Device::rtx4090();
        let scan = exclusive_scan_u32(&dev, Phase::Other, "scan", &vals);
        prop_assert_eq!(scan.len(), vals.len() + 1);
        prop_assert_eq!(scan[0], 0);
        for i in 0..vals.len() {
            prop_assert_eq!(scan[i + 1], scan[i] + vals[i]);
        }
    }

    #[test]
    fn reduce_matches_sequential_sum(
        vals in proptest::collection::vec(-1e6f64..1e6, 0..2000)
    ) {
        let dev = Device::rtx4090();
        let got = reduce_sum_f64(&dev, Phase::Other, "r", &vals);
        let want: f64 = vals.iter().sum();
        prop_assert!((got - want).abs() <= 1e-6 * (1.0 + want.abs()));
    }

    #[test]
    fn segmented_reduce_matches_chunks(
        vals in proptest::collection::vec(-100.0f64..100.0, 1..300),
        seg in 1usize..20,
    ) {
        let dev = Device::rtx4090();
        let len = (vals.len() / seg) * seg;
        if len == 0 { return Ok(()); }
        let vals = &vals[..len];
        let out = segmented_reduce_sum_f64(&dev, Phase::Other, "sr", vals, seg);
        for (s, chunk) in vals.chunks(seg).enumerate() {
            let want: f64 = chunk.iter().sum();
            prop_assert!((out[s] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_by_key_conserves_total(
        raw in proptest::collection::vec((0u32..32, -10.0f64..10.0), 0..300)
    ) {
        let dev = Device::rtx4090();
        let mut pairs = raw.clone();
        pairs.sort_by_key(|p| p.0);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let vals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let (uk, sums) = reduce_by_key_sorted(&dev, Phase::Other, "rbk", &keys, &vals);
        let total_in: f64 = vals.iter().sum();
        let total_out: f64 = sums.iter().sum();
        prop_assert!((total_in - total_out).abs() < 1e-9);
        prop_assert!(uk.windows(2).all(|w| w[0] < w[1]), "unique keys ascending");
    }

    #[test]
    fn warp_statistics_are_bounded(
        addrs in proptest::collection::vec(0u64..100_000, 1..32)
    ) {
        let lanes = addrs.len() as u32;
        let sectors = sectors_touched(&addrs, 4, 32);
        prop_assert!(sectors >= 1 && sectors <= 2 * lanes as usize);
        let conflict = bank_conflict_degree(&addrs, 32);
        prop_assert!(conflict >= 1 && conflict <= lanes);
        let degree = atomic_replay_degree(&addrs);
        prop_assert!(degree >= 1 && degree <= lanes);
        let excess = atomic_replay_excess(&addrs);
        prop_assert!(excess <= (lanes - 1) as u64);
        // Degree and excess are consistent: all-same addresses maximize both.
        if excess == (lanes - 1) as u64 {
            prop_assert_eq!(degree, lanes);
        }
    }

    #[test]
    fn kernel_time_is_monotone_in_every_term(
        flops in 0.0f64..1e12,
        bytes in 0.0f64..1e10,
        atomics in 0.0f64..1e9,
    ) {
        let m = CostModel::new(CostParams::rtx4090());
        let base = KernelCost {
            flops,
            dram_bytes: bytes,
            gmem_atomics: atomics,
            launches: 1.0,
            ..Default::default()
        };
        let t0 = m.kernel_ns(&base);
        for bump in [
            KernelCost { flops: flops * 2.0 + 1.0, ..base },
            KernelCost { dram_bytes: bytes * 2.0 + 1.0, ..base },
            KernelCost { gmem_atomics: atomics * 2.0 + 1.0, ..base },
            KernelCost { gmem_atomic_replays: 1e6, ..base },
            KernelCost { sort_keys: 1e6, ..base },
        ] {
            prop_assert!(m.kernel_ns(&bump) >= t0, "bump reduced time");
        }
    }

    #[test]
    fn occupancy_is_monotone_in_resource_use(
        threads in 32u32..1024,
        smem in 0u32..100_000,
        regs in 0u32..128,
    ) {
        let limits = SmLimits::default();
        let threads = (threads / 32) * 32;
        if threads == 0 { return Ok(()); }
        let base = occupancy(
            BlockResources { threads, smem_bytes: smem, regs_per_thread: regs },
            &limits,
        );
        let heavier = occupancy(
            BlockResources {
                threads,
                smem_bytes: smem.saturating_add(8192),
                regs_per_thread: regs.saturating_add(16),
            },
            &limits,
        );
        prop_assert!(heavier.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(base.fraction <= 1.0 + 1e-12);
    }

    #[test]
    fn ring_all_reduce_monotone_in_bytes_and_devices(
        bytes in 1.0f64..1e9,
        k in 2usize..16,
    ) {
        let m = CostModel::new(CostParams::rtx4090());
        prop_assert!(m.ring_all_reduce_ns(bytes * 2.0, k) >= m.ring_all_reduce_ns(bytes, k));
        prop_assert!(m.ring_all_reduce_ns(bytes, k + 1) >= m.ring_all_reduce_ns(bytes, k) * 0.8);
    }

    /// The multi-stream makespan is sandwiched between the critical
    /// path (no schedule can beat the busiest stream, nor the longest
    /// single charge) and the serial sum (overlap never slows things
    /// down), and `overlap_saved_ns` is exactly their gap.
    #[test]
    fn stream_makespan_is_bounded_by_critical_path_and_serial_sum(
        charges in proptest::collection::vec(
            (0usize..4, 0.0f64..1e6, 0u32..3), 1..200),
        slots in 1u32..8,
    ) {
        let mut l = Ledger::with_slots(0, slots);
        let mut per_stream = [0.0f64; 4];
        let mut serial_sum = 0.0;
        let mut longest = 0.0f64;
        for &(s, ns, k) in &charges {
            l.charge_scheduled(s, "k", Phase::Other, ns, k);
            per_stream[s] += ns;
            serial_sum += ns;
            longest = longest.max(ns);
        }
        let critical = per_stream.iter().cloned().fold(longest, f64::max);
        let makespan = l.total_ns();
        prop_assert!(makespan <= serial_sum * (1.0 + 1e-12) + 1e-9,
            "makespan {makespan} exceeds serial sum {serial_sum}");
        prop_assert!(makespan >= critical * (1.0 - 1e-12) - 1e-9,
            "makespan {makespan} beats critical path {critical}");
        let saved = l.overlap_saved_ns();
        prop_assert!((saved - (serial_sum - makespan)).abs()
            <= 1e-9 * (1.0 + serial_sum.abs()),
            "overlap_saved {saved} != serial {serial_sum} - makespan {makespan}");
        // Phase subtotals are schedule-independent: the exact charged sum.
        prop_assert!((l.phase_ns(Phase::Other) - serial_sum).abs()
            <= 1e-9 * (1.0 + serial_sum.abs()));
    }

    /// Issuing every charge on the default stream reproduces the plain
    /// serial ledger bit-for-bit — clock, subtotals, and start stamps —
    /// regardless of the slot footprints involved.
    #[test]
    fn default_stream_schedule_is_bitwise_serial(
        charges in proptest::collection::vec((0.0f64..1e6, 0u32..9), 1..100),
        slots in 1u32..8,
    ) {
        let mut serial = Ledger::new(1000);
        let mut streamed = Ledger::with_slots(1000, slots);
        for &(ns, k) in &charges {
            let a = serial.charge("k", Phase::Histogram, ns);
            let b = streamed.charge_scheduled(0, "k", Phase::Histogram, ns, k);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "start stamps diverged");
        }
        prop_assert_eq!(serial.total_ns().to_bits(), streamed.total_ns().to_bits());
        prop_assert_eq!(
            serial.phase_ns(Phase::Histogram).to_bits(),
            streamed.phase_ns(Phase::Histogram).to_bits()
        );
        prop_assert_eq!(streamed.overlap_saved_ns().to_bits(), 0.0f64.to_bits());
    }
}
