//! End-to-end sanitizer tests over a live [`Device`].
//!
//! The headline case is a *deliberately racy* test-only kernel — a grid
//! reduction whose blocks store their partials into one output word
//! with plain (non-atomic) writes. Racecheck must flag it, and the
//! atomically-corrected twin of the same kernel must come back clean.
//! A second group proves the sanitizer is cost-invisible: a sanitized
//! launch charges bit-identical time to an unsanitized one.

use gpusim::launch::{run_blocks, LaunchCfg};
use gpusim::sanitize::audit_determinism;
use gpusim::{
    AccessKind, Device, KernelCost, MemSpace, Phase, SanitizeMode, ThreadCtx, ViolationKind,
};

/// Test-only grid-sum kernel. Each block reduces its element range
/// functionally (via [`run_blocks`]), then the per-block partials are
/// combined into `out[0]`. The `atomic` flag selects how that combine
/// step is *declared* to the sanitizer: `false` models the classic
/// missing-`atomicAdd` bug, `true` the corrected kernel.
fn grid_sum(device: &Device, xs: &[f32], atomic: bool) -> f32 {
    let cfg = LaunchCfg::for_elems(xs.len());
    let partials = run_blocks(cfg, |b| {
        let (lo, hi) = cfg.block_range(b, xs.len());
        xs[lo..hi].iter().sum::<f32>()
    });
    let mut out = [0.0f32];
    device.charge_kernel(
        "test_grid_sum",
        Phase::Histogram,
        &KernelCost::streaming(xs.len() as f64, (xs.len() * 4) as f64),
    );
    if let Some(san) = device.sanitizer() {
        let scope = san.scope("test_grid_sum");
        let xs_view = scope.view("xs", xs);
        let mut out_view = scope.view_mut("out", &mut out, MemSpace::Global, true);
        for (b, &p) in partials.iter().enumerate() {
            let t = ThreadCtx {
                block: b as u32,
                thread: 0,
            };
            // Each block "reads" the head of its range…
            let (lo, hi) = cfg.block_range(b, xs.len());
            if lo < hi {
                let _ = xs_view.get(t, lo);
            }
            // …then combines into the single shared slot.
            if atomic {
                out_view.atomic_add(t, 0, p);
            } else {
                let prev = out_view.get(t, 0);
                out_view.set(t, 0, prev + p);
            }
        }
    } else {
        out[0] = partials.iter().sum();
    }
    // With a sanitizer attached the views already executed the combine
    // while recording it; without one the fold above did.
    out[0]
}

#[test]
fn racecheck_flags_the_seeded_racy_kernel() {
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Full);
    let xs: Vec<f32> = (0..2000).map(|i| i as f32).collect();
    let got = grid_sum(&device, &xs, false);
    let want: f32 = xs.iter().sum();
    assert_eq!(got, want, "functional result must be unperturbed");

    let report = device.sanitize_report().expect("sanitizer enabled");
    assert!(!report.is_clean(), "the seeded race must be detected");
    let races: Vec<_> = report
        .violations
        .iter()
        .filter(|v| {
            v.kernel == "test_grid_sum"
                && matches!(
                    v.kind,
                    ViolationKind::WriteWriteRace | ViolationKind::ReadWriteRace
                )
        })
        .collect();
    assert!(
        !races.is_empty(),
        "expected a write-write or read-write race on out[0], got {:?}",
        report.violations
    );
    assert!(races.iter().any(|v| v.buffer == "out"));
}

#[test]
fn corrected_atomic_kernel_is_clean() {
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Full);
    let xs: Vec<f32> = (0..2000).map(|i| (i % 7) as f32).collect();
    let got = grid_sum(&device, &xs, true);
    assert_eq!(got, xs.iter().sum::<f32>());
    let report = device.sanitize_report().expect("sanitizer enabled");
    assert!(
        report.is_clean(),
        "atomic combine must pass racecheck: {:?}",
        report.violations
    );
    // The atomics were verified, not ignored.
    let stats = &report.kernels["test_grid_sum"];
    assert!(stats.atomics > 0);
}

#[test]
fn sanitizer_does_not_change_charged_time_or_result() {
    let xs: Vec<f32> = (0..5000).map(|i| (i as f32).sin()).collect();

    let plain = Device::rtx4090();
    let r_plain = grid_sum(&plain, &xs, true);

    let sanitized = Device::rtx4090();
    sanitized.enable_sanitizer(SanitizeMode::Full);
    let r_san = grid_sum(&sanitized, &xs, true);

    assert_eq!(r_plain.to_bits(), r_san.to_bits());
    assert_eq!(
        plain.now_ns().to_bits(),
        sanitized.now_ns().to_bits(),
        "sanitizer must never charge the ledger"
    );
}

#[test]
fn memcheck_flags_out_of_bounds_through_a_device_scope() {
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Memcheck);
    let san = device.sanitizer().expect("enabled");
    {
        let scope = san.scope("test_oob");
        let buf = scope.register("small", 4, MemSpace::Global, true);
        scope.touch(
            buf,
            ThreadCtx {
                block: 0,
                thread: 0,
            },
            9,
            AccessKind::Read,
        );
    }
    let report = device.sanitize_report().expect("enabled");
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::OutOfBounds && v.buffer == "small"));
}

#[test]
fn disable_sanitizer_clears_state() {
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Full);
    assert!(device.sanitizer().is_some());
    device.disable_sanitizer();
    assert!(device.sanitizer().is_none());
    assert!(device.sanitize_report().is_none());
}

#[test]
fn determinism_audit_passes_for_the_corrected_kernel() {
    let props = Device::rtx4090().props().clone();
    let xs: Vec<f32> = (0..3000).map(|i| (i as f32).cos()).collect();
    let report = audit_determinism(&props, |dev| {
        let s = grid_sum(dev, &xs, true);
        gpusim::sanitize::digest_f32s(&[s])
    });
    assert!(report.is_deterministic(), "{:?}", report.divergences);
    assert_eq!(report.kernel_count, 1);
}
