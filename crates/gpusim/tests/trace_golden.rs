//! Golden-snapshot tests for the profiler's exporters.
//!
//! The simulated clock is deterministic, charges issue serially, and
//! the vendored JSON writer emits fields in declaration order with
//! shortest-round-trip floats — so a fixed workload exports a
//! **byte-identical** Chrome trace every run, on every machine. The
//! committed fixture pins that byte stream; any change to event field
//! names, ordering, or float formatting must be deliberate (and must
//! bump [`PROFILE_SCHEMA_VERSION`]).

use gpusim::{Device, Phase, ProfileSummary, PROFILE_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};

/// A fixed, fully deterministic profiled workload, including a
/// multi-stream section so the fixture pins per-stream `tid` tracks.
fn golden_device() -> std::sync::Arc<Device> {
    let device = Device::rtx4090();
    device.enable_profiler();
    {
        let _round = device.prof_scope("round", Some(0));
        {
            let _level = device.prof_scope("level", Some(0));
            device.charge_ns("hist_build", Phase::Histogram, 1200.0);
            device.charge_ns("split_eval", Phase::SplitEval, 300.0);
        }
        {
            let _level = device.prof_scope("level", Some(1));
            // Sibling hist builds fan out onto streams 1 and 2 after a
            // fence on the default stream, then join back.
            let fence = device.record_event(0);
            device.wait_event(1, fence);
            device.wait_event(2, fence);
            device
                .stream(1)
                .charge_ns("hist_build", Phase::Histogram, 800.0);
            device
                .stream(2)
                .charge_ns("partition", Phase::Partition, 150.5);
            device.sync();
        }
    }
    device.charge_ns("predict", Phase::Predict, 50.25);
    device
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_trace.json"
);

/// The exported trace is byte-identical to the committed fixture.
///
/// To regenerate after an *intentional* format change:
/// `UPDATE_GOLDEN=1 cargo test -p gpusim --test trace_golden` — and
/// bump `PROFILE_SCHEMA_VERSION` if field names/types moved.
#[test]
fn chrome_trace_matches_golden_fixture() {
    let device = golden_device();
    let trace = device.chrome_trace().expect("profiler enabled");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &trace).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture: run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        trace, want,
        "chrome trace drifted from tests/golden/chrome_trace.json; if \
         intentional, bump PROFILE_SCHEMA_VERSION and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

/// Structural contract, independent of the byte-level fixture: the
/// envelope and every event carry exactly the documented field names.
#[test]
fn chrome_trace_field_names_are_stable() {
    let device = golden_device();
    let trace = device.chrome_trace().expect("profiler enabled");
    let v: serde::Value = serde_json::from_str(&trace).expect("valid JSON");
    let obj = v.as_object().expect("envelope object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["traceEvents", "displayTimeUnit", "otherData"],
        "envelope keys changed — bump PROFILE_SCHEMA_VERSION"
    );

    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let eo = e.as_object().expect("event object");
        let ekeys: Vec<&str> = eo.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            ekeys,
            ["name", "cat", "ph", "ts", "dur", "pid", "tid"],
            "event keys changed — bump PROFILE_SCHEMA_VERSION"
        );
        let ph = eo
            .iter()
            .find(|(k, _)| k == "ph")
            .and_then(|(_, v)| v.as_str())
            .expect("ph");
        assert_eq!(ph, "X", "complete events only");
    }

    let other = obj
        .iter()
        .find(|(k, _)| k == "otherData")
        .and_then(|(_, v)| v.as_object())
        .expect("otherData object");
    let okeys: Vec<&str> = other.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(okeys, ["schema_version", "dropped_events"]);
}

/// Schema-version bump rule for [`ProfileSummary`]: the serialized
/// field-name set is pinned here. Changing it without bumping
/// `PROFILE_SCHEMA_VERSION` fails this test on purpose.
#[test]
fn profile_summary_schema_is_pinned_to_version() {
    assert_eq!(
        PROFILE_SCHEMA_VERSION, 2,
        "schema version changed: update the pinned field lists below \
         to match the new layout"
    );
    let device = golden_device();
    let prof = device.profile_summary().expect("profiler enabled");
    let v = prof.to_value();
    let obj = v.as_object().expect("summary object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema_version",
            "device",
            "total_ns",
            "kernel_count",
            "dropped_records",
            "dropped_events",
            "by_phase",
            "kernels",
            "scopes",
        ],
        "ProfileSummary fields changed — bump PROFILE_SCHEMA_VERSION"
    );

    let kernels = obj
        .iter()
        .find(|(k, _)| k == "kernels")
        .and_then(|(_, v)| v.as_array())
        .expect("kernels array");
    let k0 = kernels[0].as_object().expect("kernel row object");
    let kkeys: Vec<&str> = k0.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        kkeys,
        [
            "name",
            "phase",
            "count",
            "total_ns",
            "mean_ns",
            "max_ns",
            "dram_bytes",
            "occupancy_limited",
        ],
        "KernelStatRow fields changed — bump PROFILE_SCHEMA_VERSION"
    );

    let scopes = obj
        .iter()
        .find(|(k, _)| k == "scopes")
        .and_then(|(_, v)| v.as_array())
        .expect("scopes array");
    let s0 = scopes[0].as_object().expect("scope row object");
    let skeys: Vec<&str> = s0.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        skeys,
        ["path", "depth", "count", "total_ns"],
        "ScopeRow fields changed — bump PROFILE_SCHEMA_VERSION"
    );

    // Round-trip: the summary survives serialize → deserialize intact.
    let back = ProfileSummary::from_value(&v).expect("round-trip");
    assert_eq!(back.schema_version, prof.schema_version);
    assert_eq!(back.kernels.len(), prof.kernels.len());
    assert_eq!(back.scopes.len(), prof.scopes.len());
    assert_eq!(back.total_ns.to_bits(), prof.total_ns.to_bits());
}
