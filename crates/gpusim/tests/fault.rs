//! Fault-injection contract tests: deterministic injection, CUDA-style
//! deferred error surfacing, sticky device loss, ECC bit flips, and the
//! zero-perturbation guarantee for empty plans.

use gpusim::fault::buffer_checksum;
use gpusim::{Device, DeviceProps, FaultKind, FaultPlan, GpuFault, KernelCost, Phase};

fn charge_n(dev: &Device, n: usize) {
    for _ in 0..n {
        dev.charge_kernel("k", Phase::Histogram, &KernelCost::streaming(1e6, 1e5));
    }
}

#[test]
fn no_injector_polls_clean() {
    let dev = Device::rtx4090();
    charge_n(&dev, 3);
    assert!(dev.poll_fault().is_ok());
    assert!(!dev.is_lost());
    assert!(dev.fault_report().is_none());
}

#[test]
fn empty_plan_is_bit_identical_to_uninstrumented() {
    let plain = Device::new(0, DeviceProps::rtx4090());
    let faulted = Device::new(0, DeviceProps::rtx4090());
    faulted.enable_faults(FaultPlan::new());
    for dev in [&plain, &faulted] {
        charge_n(dev, 10);
        dev.charge_ns("htod", Phase::Transfer, 123.5);
    }
    assert!(faulted.poll_fault().is_ok());
    assert_eq!(plain.now_ns().to_bits(), faulted.now_ns().to_bits());
    let (a, b) = (plain.records(), faulted.records());
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.name, rb.name);
        assert_eq!(ra.ns.to_bits(), rb.ns.to_bits());
        assert_eq!(ra.start_ns.to_bits(), rb.start_ns.to_bits());
    }
}

#[test]
fn transient_fault_books_the_charge_and_surfaces_once() {
    let clean = Device::new(0, DeviceProps::rtx4090());
    let dev = Device::new(0, DeviceProps::rtx4090());
    dev.enable_faults(FaultPlan::new().transient_at(2));
    charge_n(&clean, 5);
    charge_n(&dev, 5);
    // The faulting launch still pays its cost (the grid ran and trapped).
    assert_eq!(clean.now_ns().to_bits(), dev.now_ns().to_bits());
    match dev.poll_fault() {
        Err(GpuFault::Transient {
            device,
            kernel,
            charge_index,
        }) => {
            assert_eq!(device, 0);
            assert_eq!(kernel, "k");
            assert_eq!(charge_index, 2);
        }
        other => panic!("expected transient fault, got {other:?}"),
    }
    // Cleared by the poll, exactly like cudaGetLastError.
    assert!(dev.poll_fault().is_ok());
    assert!(!dev.is_lost());
    let report = dev.fault_report().unwrap();
    assert_eq!(report.transient_injected, 1);
    assert_eq!(report.device_lost, 0);
}

#[test]
fn two_transients_before_poll_keep_the_first() {
    let dev = Device::rtx4090();
    dev.enable_faults(FaultPlan::new().transient_at(1).transient_at(3));
    charge_n(&dev, 5);
    match dev.poll_fault() {
        Err(GpuFault::Transient { charge_index, .. }) => assert_eq!(charge_index, 1),
        other => panic!("expected transient fault, got {other:?}"),
    }
    assert!(dev.poll_fault().is_ok());
    assert_eq!(dev.fault_report().unwrap().transient_injected, 2);
}

#[test]
fn device_loss_is_sticky_and_drops_later_charges() {
    let dev = Device::rtx4090();
    dev.enable_faults(FaultPlan::new().device_lost_at(3));
    charge_n(&dev, 3);
    let at_loss_boundary = dev.now_ns();
    charge_n(&dev, 4);
    // Charge #3 (the fatal one) is booked; #4.. are dropped.
    assert!(dev.now_ns() > at_loss_boundary);
    let after_fatal = dev.now_ns();
    charge_n(&dev, 10);
    assert_eq!(dev.now_ns().to_bits(), after_fatal.to_bits());
    assert!(dev.is_lost());
    for _ in 0..3 {
        match dev.poll_fault() {
            Err(GpuFault::DeviceLost { charge_index, .. }) => assert_eq!(charge_index, 3),
            other => panic!("expected sticky device loss, got {other:?}"),
        }
    }
    let report = dev.fault_report().unwrap();
    assert_eq!(report.device_lost, 1);
    assert_eq!(report.charges_dropped_after_loss, 13);
}

#[test]
fn loss_dominates_a_pending_transient() {
    let dev = Device::rtx4090();
    dev.enable_faults(FaultPlan::new().transient_at(1).device_lost_at(2));
    charge_n(&dev, 4);
    assert!(matches!(
        dev.poll_fault(),
        Err(GpuFault::DeviceLost {
            charge_index: 2,
            ..
        })
    ));
}

#[test]
fn bit_flip_changes_checksum_and_is_silent_to_poll() {
    let dev = Device::rtx4090();
    let host: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
    let mut buf = dev.htod(&host);
    let before = buffer_checksum(&dev, "victim", &buf);
    dev.enable_faults(FaultPlan::new().bit_flip(0, "victim", 17, 5));
    charge_n(&dev, 2); // pass the arming index
    dev.apply_planned_corruption("victim", &mut buf);
    assert!(dev.poll_fault().is_ok(), "ECC corruption must stay silent");
    let after = buffer_checksum(&dev, "victim", &buf);
    assert_ne!(before, after, "checksum must detect the flip");
    assert_eq!(
        buf.as_slice()[17].to_bits(),
        (17.0f32 * 0.5).to_bits() ^ (1 << 5)
    );
    let report = dev.fault_report().unwrap();
    assert_eq!(report.flips_planned, 1);
    assert_eq!(report.flips_applied, 1);
    // Flipping the same bit back restores the original digest.
    dev.enable_faults(FaultPlan::new().bit_flip(0, "victim", 17, 5));
    charge_n(&dev, 1);
    dev.apply_planned_corruption("victim", &mut buf);
    assert_eq!(buffer_checksum(&dev, "victim", &buf), before);
}

#[test]
fn corruption_only_hits_the_named_buffer() {
    let dev = Device::rtx4090();
    let mut a = dev.htod(&[1.0f32; 32]);
    let mut b = dev.htod(&[2.0f32; 32]);
    dev.enable_faults(FaultPlan::new().bit_flip(0, "a", 4, 0));
    charge_n(&dev, 1);
    dev.apply_planned_corruption("b", &mut b);
    assert!(b.as_slice().iter().all(|v| *v == 2.0));
    dev.apply_planned_corruption("a", &mut a);
    assert!(a.as_slice().iter().any(|v| *v != 1.0));
}

#[test]
fn checksum_is_charged_as_a_kernel() {
    let dev = Device::rtx4090();
    let buf = dev.htod(&[0u32; 1024]);
    let before = dev.now_ns();
    let _ = buffer_checksum(&dev, "b", &buf);
    assert!(dev.now_ns() > before);
    assert!(dev
        .records()
        .iter()
        .any(|r| r.name == "buffer_checksum" && r.phase == Phase::Other));
}

#[test]
fn checksum_is_stable_across_reads() {
    let dev = Device::rtx4090();
    let buf = dev.htod(&[7i32; 100]);
    assert_eq!(
        buffer_checksum(&dev, "b", &buf),
        buffer_checksum(&dev, "b", &buf)
    );
}

#[test]
fn seeded_plans_replay_identically_on_a_device() {
    for seed in 0..40u64 {
        let run = |_tag: &str| {
            let dev = Device::new(0, DeviceProps::rtx4090());
            dev.enable_faults(FaultPlan::seeded(seed, 20));
            charge_n(&dev, 25);
            (dev.now_ns().to_bits(), dev.poll_fault(), dev.fault_report())
        };
        assert_eq!(run("a"), run("b"), "seed {seed} diverged");
    }
}

#[test]
fn seeded_horizon_bounds_event_indices() {
    for seed in 0..200u64 {
        for ev in FaultPlan::seeded(seed, 13).events() {
            assert!(ev.at_charge < 13);
            assert!(!matches!(ev.kind, FaultKind::BitFlip { .. }));
        }
    }
}
