//! Kernel launch configuration and the block-parallel executor.
//!
//! A simulated kernel is a closure run once per thread block. Blocks
//! execute concurrently on the host rayon pool — mirroring how blocks are
//! scheduled across SMs — and their results are collected *in block
//! order*, which keeps every kernel deterministic regardless of the host
//! schedule.

use rayon::prelude::*;

/// Grid/block shape of a launch, mirroring `<<<grid, block>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchCfg {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block (a multiple of the warp size for full warps).
    pub block_threads: usize,
}

impl LaunchCfg {
    /// Default threads per block used by the GBDT kernels.
    pub const DEFAULT_BLOCK: usize = 256;

    /// One thread per element with the default block size.
    pub fn for_elems(n: usize) -> Self {
        Self::for_elems_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// One thread per element with an explicit block size.
    ///
    /// Degenerate inputs are guarded rather than UB-adjacent:
    /// `block_threads == 0` falls back to [`LaunchCfg::DEFAULT_BLOCK`]
    /// (a zero-wide block cannot execute anything and would divide by
    /// zero), and `n == 0` yields a single block whose
    /// [`LaunchCfg::block_range`] is empty for every block — the kernel
    /// launches, does no work, and the cost model still charges launch
    /// overhead, exactly like an empty-grid guard clause on hardware.
    pub fn for_elems_with_block(n: usize, block_threads: usize) -> Self {
        let block_threads = if block_threads == 0 {
            Self::DEFAULT_BLOCK
        } else {
            block_threads
        };
        LaunchCfg {
            grid_blocks: n.div_ceil(block_threads).max(1),
            block_threads,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.block_threads
    }

    /// Total full warps in the grid, given `warp_size` lanes per warp.
    pub fn total_warps(&self, warp_size: u32) -> usize {
        self.total_threads().div_ceil(warp_size as usize)
    }

    /// The element range `[start, end)` owned by `block` when elements
    /// are distributed contiguously over `n` elements.
    pub fn block_range(&self, block: usize, n: usize) -> (usize, usize) {
        let per = n.div_ceil(self.grid_blocks);
        let start = (block * per).min(n);
        let end = ((block + 1) * per).min(n);
        (start, end)
    }
}

/// Execute `f` once per block, in parallel, collecting results in block
/// order. The caller charges the kernel's cost separately via
/// [`crate::Device::charge_kernel`].
pub fn run_blocks<R, F>(cfg: LaunchCfg, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
{
    (0..cfg.grid_blocks).into_par_iter().map(f).collect()
}

/// Execute `f` once per block and fold the per-block results with
/// `merge`, strictly in block order (deterministic for non-commutative
/// merges such as floating-point accumulation).
pub fn run_blocks_fold<R, F, M>(cfg: LaunchCfg, init: R, f: F, merge: M) -> R
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
    M: FnMut(R, R) -> R,
{
    // Combinator, not a launch site: callers charge their own kernel.
    run_blocks(cfg, f).into_iter().fold(init, merge) // lint:allow(uncharged_launch): combinator, not a launch site — callers charge their own kernel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elems_covers_all_elements() {
        let cfg = LaunchCfg::for_elems(1000);
        assert_eq!(cfg.block_threads, 256);
        assert_eq!(cfg.grid_blocks, 4);
        assert!(cfg.total_threads() >= 1000);
    }

    #[test]
    fn zero_elems_still_launches_one_block() {
        let cfg = LaunchCfg::for_elems(0);
        assert_eq!(cfg.grid_blocks, 1);
    }

    #[test]
    fn warp_count() {
        let cfg = LaunchCfg::for_elems_with_block(100, 64);
        // ceil(100/64)=2 blocks × 64 threads = 128 threads = 4 warps.
        assert_eq!(cfg.total_warps(32), 4);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        let cfg = LaunchCfg {
            grid_blocks: 7,
            block_threads: 32,
        };
        let n = 100;
        let mut covered = 0;
        let mut prev_end = 0;
        for b in 0..cfg.grid_blocks {
            let (s, e) = cfg.block_range(b, n);
            assert_eq!(s, prev_end);
            covered += e - s;
            prev_end = e;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn run_blocks_is_in_block_order() {
        let cfg = LaunchCfg {
            grid_blocks: 64,
            block_threads: 1,
        };
        let out = run_blocks(cfg, |b| b * 2);
        assert_eq!(out, (0..64).map(|b| b * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_blocks_fold_is_deterministic() {
        let cfg = LaunchCfg {
            grid_blocks: 1000,
            block_threads: 1,
        };
        // Float summation order matters; run twice and require equality.
        let f = |b: usize| 1.0f64 / (b as f64 + 1.0);
        let a = run_blocks_fold(cfg, 0.0, f, |x, y| x + y);
        let b = run_blocks_fold(cfg, 0.0, f, |x, y| x + y);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn zero_block_threads_falls_back_to_default() {
        let cfg = LaunchCfg::for_elems_with_block(10, 0);
        assert_eq!(cfg.block_threads, LaunchCfg::DEFAULT_BLOCK);
        assert_eq!(cfg.grid_blocks, 1);
        assert!(cfg.total_threads() >= 10);
    }

    #[test]
    fn zero_elems_zero_block_is_fully_degenerate_but_safe() {
        let cfg = LaunchCfg::for_elems_with_block(0, 0);
        assert_eq!(cfg.grid_blocks, 1);
        assert_eq!(cfg.block_threads, LaunchCfg::DEFAULT_BLOCK);
        // Every block owns an empty range over zero elements.
        assert_eq!(cfg.block_range(0, 0), (0, 0));
        // And the executor runs the single do-nothing block fine.
        let out = run_blocks(cfg, |b| b);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn zero_elems_block_ranges_are_empty() {
        let cfg = LaunchCfg::for_elems(0);
        assert_eq!(cfg.grid_blocks, 1);
        for b in 0..cfg.grid_blocks {
            assert_eq!(cfg.block_range(b, 0), (0, 0));
        }
    }
}
