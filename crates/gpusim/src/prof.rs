//! Kernel-level profiler for the simulated device.
//!
//! Mirrors the sanitizer's attachment contract (`sanitize` module): a
//! [`Profiler`] is an *observer* hung off the [`Device`](crate::Device).
//! It never charges the ledger and never influences kernel results, so
//! profiling off ⇒ bit-identical trees and charged nanoseconds (the
//! zero-perturbation contract, regression-tested in `crates/core`).
//!
//! What it records, keyed by `(kernel name, Phase)`:
//!
//! * aggregate stats — launch count, total/mean/max simulated ns, DRAM
//!   bytes, and an *occupancy-limited* flag set when the majority of
//!   launches spent more time in serialized terms (atomics, sort,
//!   launch overhead) than in overlapped streaming work;
//! * hierarchical scopes — the trainer pushes per-boosting-round and
//!   per-level scopes (and builders push per-method scopes) via
//!   [`Device::prof_scope`](crate::Device::prof_scope); scope durations
//!   are measured on the *simulated* clock, so they are deterministic;
//! * a bounded trace-event buffer exported as Chrome `chrome://tracing`
//!   JSON ([`Profiler::chrome_trace`] wraps it in `traceEvents`).
//!
//! The compact, schema-versioned [`ProfileSummary`] is the machine-
//! readable form consumed by the bench harness and CI diff gates.

use crate::device::Phase;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version of [`ProfileSummary`] and the Chrome-trace envelope.
///
/// Bump rule: any field rename/removal or semantic change to an existing
/// field bumps this; purely additive fields may keep it, but the golden
/// schema test must be updated either way.
///
/// v2: kernel trace events carry their stream id in `tid`, so each
/// stream renders as its own track; previously `tid` was always 0.
pub const PROFILE_SCHEMA_VERSION: u32 = 2;

/// Default cap on retained trace events (kernels + scopes). Aggregates
/// stay exact past the cap; only the Chrome trace loses detail.
pub const DEFAULT_EVENT_LIMIT: usize = 200_000;

#[derive(Debug, Default, Clone)]
struct KernelStat {
    count: u64,
    total_ns: f64,
    max_ns: f64,
    dram_bytes: f64,
    limited_launches: u64,
}

#[derive(Debug, Default, Clone)]
struct ScopeStat {
    count: u64,
    total_ns: f64,
    depth: u32,
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    start_ns: f64,
    dur_ns: f64,
    /// Stream the charge was issued on — rendered as the Chrome-trace
    /// `tid`, so each stream gets its own track. Scope events use 0.
    stream: u64,
}

#[derive(Default)]
struct ProfInner {
    kernels: BTreeMap<(&'static str, Phase), KernelStat>,
    stack: Vec<&'static str>,
    scopes: BTreeMap<String, ScopeStat>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

/// Accumulating profiler state attached to one device.
///
/// All methods are internally locked; charges issue serially in node
/// order (the repo's determinism contract), so recorded event order is
/// deterministic.
pub struct Profiler {
    event_limit: usize,
    inner: Mutex<ProfInner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_LIMIT)
    }
}

impl Profiler {
    /// Create a profiler retaining at most `event_limit` trace events.
    pub fn new(event_limit: usize) -> Self {
        Profiler {
            event_limit,
            inner: Mutex::new(ProfInner::default()),
        }
    }

    fn push_event(inner: &mut ProfInner, limit: usize, ev: TraceEvent) {
        if inner.events.len() < limit {
            inner.events.push(ev);
        } else {
            inner.dropped_events += 1;
        }
    }

    /// Record one charged kernel. Called by the device *after* the
    /// ledger charge; `start_ns` is the issuing stream's clock before
    /// the charge and `stream` the stream it was issued on. `limited`
    /// marks a launch dominated by serialized terms.
    #[allow(clippy::too_many_arguments)]
    pub fn on_kernel(
        &self,
        name: &'static str,
        phase: Phase,
        ns: f64,
        start_ns: f64,
        dram_bytes: f64,
        limited: bool,
        stream: usize,
    ) {
        let mut inner = self.inner.lock();
        let stat = inner.kernels.entry((name, phase)).or_default();
        stat.count += 1;
        stat.total_ns += ns;
        if ns > stat.max_ns {
            stat.max_ns = ns;
        }
        stat.dram_bytes += dram_bytes;
        if limited {
            stat.limited_launches += 1;
        }
        let limit = self.event_limit;
        Self::push_event(
            &mut inner,
            limit,
            TraceEvent {
                name: name.to_string(),
                cat: phase.name(),
                start_ns,
                dur_ns: ns,
                stream: stream as u64,
            },
        );
    }

    /// Open a scope of the given kind; returns its aggregation path
    /// (kinds joined by `/`, e.g. `round/level`) and nesting depth.
    pub fn scope_enter(&self, kind: &'static str) -> (String, u32) {
        let mut inner = self.inner.lock();
        inner.stack.push(kind);
        let depth = inner.stack.len() as u32 - 1;
        (inner.stack.join("/"), depth)
    }

    /// Close the innermost scope: aggregate its duration under `path`
    /// and emit a trace event labeled `label`.
    pub fn scope_exit(&self, path: &str, label: String, depth: u32, start_ns: f64, end_ns: f64) {
        let mut inner = self.inner.lock();
        inner.stack.pop();
        let stat = inner.scopes.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns += end_ns - start_ns;
        stat.depth = depth;
        let limit = self.event_limit;
        Self::push_event(
            &mut inner,
            limit,
            TraceEvent {
                name: label,
                cat: "scope",
                start_ns,
                dur_ns: end_ns - start_ns,
                stream: 0,
            },
        );
    }

    /// Number of trace events shed past the event limit (aggregates
    /// remain exact).
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped_events
    }

    /// Snapshot the per-kernel and per-scope aggregates into the
    /// schema-versioned summary. Ledger-derived fields (`total_ns`,
    /// `by_phase`, `kernel_count`, `dropped_records`) are filled in by
    /// the device, which owns the ledger.
    pub fn summarize(&self, device_name: &str, ledger: &crate::LedgerSummary) -> ProfileSummary {
        let inner = self.inner.lock();
        let kernels = inner
            .kernels
            .iter()
            .map(|((name, phase), s)| KernelStatRow {
                name: (*name).to_string(),
                phase: phase.name().to_string(),
                count: s.count,
                total_ns: s.total_ns,
                mean_ns: if s.count > 0 {
                    s.total_ns / s.count as f64
                } else {
                    0.0
                },
                max_ns: s.max_ns,
                dram_bytes: s.dram_bytes,
                occupancy_limited: s.limited_launches * 2 > s.count,
            })
            .collect();
        let scopes = inner
            .scopes
            .iter()
            .map(|(path, s)| ScopeRow {
                path: path.clone(),
                depth: s.depth,
                count: s.count,
                total_ns: s.total_ns,
            })
            .collect();
        let mut by_phase = BTreeMap::new();
        for (phase, ns) in &ledger.by_phase {
            by_phase.insert(phase.name().to_string(), *ns);
        }
        ProfileSummary {
            schema_version: PROFILE_SCHEMA_VERSION,
            device: device_name.to_string(),
            total_ns: ledger.total_ns,
            kernel_count: ledger.kernel_count,
            dropped_records: ledger.dropped_records,
            dropped_events: inner.dropped_events,
            by_phase,
            kernels,
            scopes,
        }
    }

    /// Export retained events as Chrome `chrome://tracing` JSON: an
    /// object with a `traceEvents` array of `"ph":"X"` complete events
    /// (`ts`/`dur` in microseconds of *simulated* time, `pid` = device
    /// id). Load via `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self, device_id: usize) -> String {
        use serde::Value;
        let inner = self.inner.lock();
        let events: Vec<Value> = inner
            .events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(e.name.clone())),
                    ("cat".to_string(), Value::String(e.cat.to_string())),
                    ("ph".to_string(), Value::String("X".to_string())),
                    ("ts".to_string(), Value::Float(e.start_ns * 1e-3)),
                    ("dur".to_string(), Value::Float(e.dur_ns * 1e-3)),
                    ("pid".to_string(), Value::UInt(device_id as u64)),
                    ("tid".to_string(), Value::UInt(e.stream)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ns".to_string()),
            ),
            (
                "otherData".to_string(),
                Value::Object(vec![
                    (
                        "schema_version".to_string(),
                        Value::UInt(PROFILE_SCHEMA_VERSION as u64),
                    ),
                    (
                        "dropped_events".to_string(),
                        Value::UInt(inner.dropped_events),
                    ),
                ]),
            ),
        ]);
        serde_json::to_string(&doc).expect("trace floats are finite simulated durations")
    }
}

struct ScopeState {
    prof: std::sync::Arc<Profiler>,
    path: String,
    label: String,
    depth: u32,
    start_ns: f64,
}

struct TelSpanState {
    tel: std::sync::Arc<telemetry::Telemetry>,
    start_ns: f64,
}

/// RAII guard for a hierarchical profiling scope, opened via
/// [`Device::prof_scope`](crate::Device::prof_scope).
///
/// When no profiler is attached the guard is a no-op (no lock, no
/// allocation beyond the `Option`), keeping the hot path clean. Scope
/// boundaries are timestamped on the simulated clock, so enabling
/// profiling cannot perturb them.
///
/// Telemetry spans layer on the same guard through an independent
/// second slot: with a telemetry registry attached the scope also
/// lands in the flight recorder (profiler attached or not), again
/// timestamped purely on the simulated clock.
pub struct ProfScope<'a> {
    device: &'a crate::Device,
    state: Option<ScopeState>,
    tel_state: Option<TelSpanState>,
}

impl<'a> ProfScope<'a> {
    /// Open a scope of `kind` on `device`; `index` (e.g. the round or
    /// level number) is appended to the trace label but not the
    /// aggregation path, so all rounds fold into one `round` row.
    pub fn open(device: &'a crate::Device, kind: &'static str, index: Option<u64>) -> Self {
        let label = match index {
            Some(i) => format!("{kind} {i}"),
            None => kind.to_string(),
        };
        let state = device.profiler().map(|prof| {
            let start_ns = device.now_ns();
            let (path, depth) = prof.scope_enter(kind);
            ScopeState {
                prof,
                path,
                label: label.clone(),
                depth,
                start_ns,
            }
        });
        let tel_state = device.telemetry().map(|tel| {
            let start_ns = device.now_ns();
            tel.span_enter(device.id, &label);
            TelSpanState { tel, start_ns }
        });
        ProfScope {
            device,
            state,
            tel_state,
        }
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            let end_ns = self.device.now_ns();
            st.prof
                .scope_exit(&st.path, st.label, st.depth, st.start_ns, end_ns);
        }
        if let Some(ts) = self.tel_state.take() {
            let end_ns = self.device.now_ns();
            ts.tel.span_exit(self.device.id, ts.start_ns, end_ns);
        }
    }
}

/// Aggregate statistics for one `(kernel, phase)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelStatRow {
    /// Kernel name as charged (e.g. `hist_smem_packed`).
    pub name: String,
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Number of launches.
    pub count: u64,
    /// Total simulated nanoseconds across launches.
    pub total_ns: f64,
    /// Mean simulated nanoseconds per launch.
    pub mean_ns: f64,
    /// Maximum simulated nanoseconds over launches.
    pub max_ns: f64,
    /// Total modeled DRAM traffic in bytes (0 for raw-ns charges).
    pub dram_bytes: f64,
    /// True when the majority of launches were dominated by serialized
    /// terms (atomics, sort, launch overhead) rather than overlapped
    /// streaming work.
    pub occupancy_limited: bool,
}

/// Aggregate statistics for one scope path (e.g. `round/level`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopeRow {
    /// Scope kinds joined by `/`, outermost first.
    pub path: String,
    /// Nesting depth of this scope (0 = outermost).
    pub depth: u32,
    /// Number of times the scope was entered.
    pub count: u64,
    /// Total simulated nanoseconds spent inside (sum over entries).
    pub total_ns: f64,
}

/// Compact, schema-versioned profile of one device — the
/// machine-readable form consumed by the bench harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Device marketing name (e.g. `SimRTX4090`).
    pub device: String,
    /// Total simulated nanoseconds on the ledger.
    pub total_ns: f64,
    /// Number of ledger charges.
    pub kernel_count: u64,
    /// Ledger records shed past its record limit (subtotals stay exact).
    pub dropped_records: u64,
    /// Trace events shed past the profiler's event limit.
    pub dropped_events: u64,
    /// Simulated nanoseconds per phase, keyed by [`Phase::name`].
    pub by_phase: BTreeMap<String, f64>,
    /// Per-(kernel, phase) aggregates, sorted by name then phase.
    pub kernels: Vec<KernelStatRow>,
    /// Per-path scope aggregates, sorted by path.
    pub scopes: Vec<ScopeRow>,
}

impl ProfileSummary {
    /// Fraction of total time spent under the given phase name
    /// (0 when the total is 0).
    pub fn phase_share(&self, phase: &str) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.by_phase.get(phase).copied().unwrap_or(0.0) / self.total_ns
        }
    }

    /// Render a fixed-width per-kernel table, hottest first.
    pub fn kernel_table(&self) -> String {
        let mut rows: Vec<&KernelStatRow> = self.kernels.iter().collect();
        rows.sort_by(|a, b| {
            b.total_ns
                .partial_cmp(&a.total_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<10} {:>8} {:>12} {:>12} {:>12} {:>5}\n",
            "kernel", "phase", "count", "total (ms)", "mean (µs)", "max (µs)", "lim"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<24} {:<10} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>5}\n",
                r.name,
                r.phase,
                r.count,
                r.total_ns * 1e-6,
                r.mean_ns * 1e-3,
                r.max_ns * 1e-3,
                if r.occupancy_limited { "yes" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_aggregates_accumulate() {
        let p = Profiler::default();
        p.on_kernel("k", Phase::Histogram, 10.0, 0.0, 100.0, true, 0);
        p.on_kernel("k", Phase::Histogram, 30.0, 10.0, 300.0, true, 0);
        p.on_kernel("k", Phase::Histogram, 20.0, 40.0, 200.0, false, 0);
        p.on_kernel("other", Phase::SplitEval, 5.0, 60.0, 0.0, false, 0);
        let ledger = crate::LedgerSummary::default();
        let s = p.summarize("dev", &ledger);
        assert_eq!(s.kernels.len(), 2);
        let k = &s.kernels[0];
        assert_eq!(k.name, "k");
        assert_eq!(k.count, 3);
        assert_eq!(k.total_ns, 60.0);
        assert_eq!(k.mean_ns, 20.0);
        assert_eq!(k.max_ns, 30.0);
        assert_eq!(k.dram_bytes, 600.0);
        assert!(k.occupancy_limited, "2 of 3 launches limited");
        assert!(!s.kernels[1].occupancy_limited);
    }

    #[test]
    fn scopes_nest_and_aggregate_by_path() {
        let p = Profiler::default();
        let (outer, d0) = p.scope_enter("round");
        assert_eq!(outer, "round");
        assert_eq!(d0, 0);
        let (inner, d1) = p.scope_enter("level");
        assert_eq!(inner, "round/level");
        assert_eq!(d1, 1);
        p.scope_exit(&inner, "level 0".to_string(), d1, 0.0, 10.0);
        let (inner2, _) = p.scope_enter("level");
        assert_eq!(inner2, "round/level");
        p.scope_exit(&inner2, "level 1".to_string(), 1, 10.0, 25.0);
        p.scope_exit(&outer, "round 0".to_string(), d0, 0.0, 30.0);
        let s = p.summarize("dev", &crate::LedgerSummary::default());
        assert_eq!(s.scopes.len(), 2);
        assert_eq!(s.scopes[0].path, "round");
        assert_eq!(s.scopes[0].count, 1);
        assert_eq!(s.scopes[0].total_ns, 30.0);
        assert_eq!(s.scopes[1].path, "round/level");
        assert_eq!(s.scopes[1].count, 2);
        assert_eq!(s.scopes[1].total_ns, 25.0);
        assert_eq!(s.scopes[1].depth, 1);
    }

    #[test]
    fn event_limit_sheds_but_aggregates_stay_exact() {
        let p = Profiler::new(2);
        for i in 0..5 {
            p.on_kernel("k", Phase::Other, 1.0, i as f64, 0.0, false, 0);
        }
        assert_eq!(p.dropped_events(), 3);
        let s = p.summarize("dev", &crate::LedgerSummary::default());
        assert_eq!(s.dropped_events, 3);
        assert_eq!(s.kernels[0].count, 5);
        assert_eq!(s.kernels[0].total_ns, 5.0);
    }

    #[test]
    fn chrome_trace_is_valid_and_scaled_to_micros() {
        let p = Profiler::default();
        p.on_kernel("k", Phase::Histogram, 2000.0, 1000.0, 0.0, false, 0);
        let json = p.chrome_trace(3);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let obj = v.as_object().expect("object envelope");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let ev = events[0].as_object().expect("event object");
        let get = |name: &str| ev.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone());
        assert_eq!(get("ph"), Some(serde::Value::String("X".to_string())));
        assert_eq!(get("ts"), Some(serde::Value::Float(1.0)));
        assert_eq!(get("dur"), Some(serde::Value::Float(2.0)));
        assert_eq!(get("pid"), Some(serde::Value::UInt(3)));
        assert_eq!(get("tid"), Some(serde::Value::UInt(0)));
    }

    #[test]
    fn chrome_trace_renders_streams_as_separate_tracks() {
        let p = Profiler::default();
        p.on_kernel("a", Phase::Histogram, 10.0, 0.0, 0.0, false, 1);
        p.on_kernel("b", Phase::Histogram, 10.0, 0.0, 0.0, false, 2);
        let json = p.chrome_trace(0);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .as_object()
            .and_then(|o| {
                o.iter()
                    .find(|(k, _)| k == "traceEvents")
                    .and_then(|(_, v)| v.as_array())
            })
            .expect("traceEvents array");
        let tid = |i: usize| {
            events[i]
                .as_object()
                .and_then(|ev| ev.iter().find(|(k, _)| k == "tid").map(|(_, v)| v.clone()))
        };
        assert_eq!(tid(0), Some(serde::Value::UInt(1)));
        assert_eq!(tid(1), Some(serde::Value::UInt(2)));
    }

    #[test]
    fn summary_phase_share() {
        let mut ledger = crate::LedgerSummary::default();
        ledger.total_ns = 100.0;
        ledger.by_phase.insert(Phase::Histogram, 80.0);
        let p = Profiler::default();
        let s = p.summarize("dev", &ledger);
        assert!((s.phase_share("Histogram") - 0.8).abs() < 1e-12);
        assert_eq!(s.phase_share("Predict"), 0.0);
    }
}
