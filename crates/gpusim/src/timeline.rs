//! Per-device time ledger and kernel timeline.
//!
//! Every simulated kernel appends a [`KernelRecord`]; the ledger keeps
//! per-phase subtotals plus a *multi-stream* timeline: each stream is an
//! in-order queue with its own clock, [`Event`] fences add cross-stream
//! (and cross-device) edges, and the device clock (`total_ns`) is the
//! **makespan** — the maximum over stream clocks and barrier targets.
//! Stream 0 is the default stream: a device that only ever charges there
//! reproduces the old serial clock bit-for-bit, because each charge
//! starts at the stream-0 clock and the makespan equals that clock after
//! every charge (the float operation sequence is unchanged).
//!
//! Compute kernels additionally contend for a fixed number of
//! *compute slots* (derived from the SM occupancy model by the device):
//! a kernel that saturates the SMs takes every slot and serializes with
//! co-resident compute work, while small launch-bound kernels take one
//! slot each and overlap up to the cap. Transfers and collectives run on
//! their own engines (zero slots) and never contend for SMs.
//!
//! The trainer uses phase subtotals to regenerate the paper's Figure 4
//! (histogram-building share of total training time); subtotals are
//! always the exact sum of charged nanoseconds, independent of how the
//! charges were scheduled across streams.

use crate::device::Phase;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fence on the simulated timeline: the completion timestamp of all
/// work issued to a stream before [`Ledger::record_event`] was called.
///
/// Events are plain copyable timestamps, so they compose across devices
/// (a collective's start is the max over every participant's fence).
/// [`Event::at_ns`] builds a raw fence for cross-device joins;
/// [`Event::offset_ns`] shifts one, modeling pipelined chunk arrival
/// ("the first chunk of that copy has landed").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    ns: f64,
}

impl Event {
    /// A fence at an absolute simulated timestamp.
    pub fn at_ns(ns: f64) -> Self {
        Event { ns }
    }

    /// The fence's timestamp in nanoseconds.
    pub fn ns(&self) -> f64 {
        self.ns
    }

    /// The fence shifted by `delta` nanoseconds (clamped at 0): the
    /// partial-completion point of pipelined work.
    pub fn offset_ns(self, delta: f64) -> Self {
        Event {
            ns: (self.ns + delta).max(0.0),
        }
    }

    /// The later of two fences (a join over multiple dependencies).
    pub fn max(self, other: Event) -> Self {
        if other.ns > self.ns {
            other
        } else {
            self
        }
    }
}

/// One simulated kernel (or transfer / collective) on a device timeline.
///
/// Serialize-only: `name` borrows `'static` kernel-name literals, which
/// cannot be reconstructed from transient JSON input.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRecord {
    /// Human-readable kernel name, e.g. `hist_smem_packed`.
    pub name: &'static str,
    /// Pipeline phase the kernel belongs to.
    pub phase: Phase,
    /// Simulated duration in nanoseconds.
    pub ns: f64,
    /// Simulated start time (device-local), nanoseconds.
    pub start_ns: f64,
    /// Stream the charge was issued on (0 = default stream).
    pub stream: usize,
}

/// Accumulated simulated time of one device.
#[derive(Debug, Clone)]
pub struct Ledger {
    by_phase: BTreeMap<Phase, f64>,
    kernel_count: u64,
    records: Vec<KernelRecord>,
    record_limit: usize,
    dropped_records: u64,
    /// Per-stream completion clocks; index = stream id, stream 0 always
    /// exists. A stream is born idle at t = 0 when first touched —
    /// issue a fence ([`Ledger::wait_event`]) before its first charge
    /// if the work logically depends on anything.
    stream_clock: Vec<f64>,
    /// The device clock: max over stream clocks reached by charges and
    /// barrier (`advance_to`) targets.
    makespan: f64,
    /// In-flight compute intervals `(end_ns, slots)` still occupying SMs.
    active: Vec<(f64, u32)>,
    /// Concurrency cap: compute slots available (occupancy-derived; 1
    /// keeps the scheduler serial for plain ledgers).
    compute_slots: u32,
    /// Charges that arrived with a negative duration and were clamped
    /// to zero (a model bug upstream; surfaced rather than corrupting
    /// subtotals).
    negative_charges: u64,
    /// Simulated nanoseconds the serial schedule would have added on
    /// top of the makespan — the win from stream overlap.
    overlap_saved_ns: f64,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new(0)
    }
}

impl Ledger {
    /// Create a ledger retaining at most `record_limit` detailed records
    /// (phase subtotals are always exact regardless of the limit).
    pub fn new(record_limit: usize) -> Self {
        Ledger::with_slots(record_limit, 1)
    }

    /// Create a ledger with `compute_slots` concurrent-kernel capacity
    /// (the device derives this from the SM occupancy model).
    pub fn with_slots(record_limit: usize, compute_slots: u32) -> Self {
        Ledger {
            by_phase: BTreeMap::new(),
            kernel_count: 0,
            records: Vec::new(),
            record_limit,
            dropped_records: 0,
            stream_clock: vec![0.0],
            makespan: 0.0,
            active: Vec::new(),
            compute_slots: compute_slots.max(1),
            negative_charges: 0,
            overlap_saved_ns: 0.0,
        }
    }

    fn ensure_stream(&mut self, stream: usize) {
        if stream >= self.stream_clock.len() {
            self.stream_clock.resize(stream + 1, 0.0);
        }
    }

    /// Append `ns` of simulated time in `phase` on the default stream.
    /// Returns the charge's start timestamp (the stream clock *before*
    /// the charge), so observers can reconstruct the timeline without
    /// re-locking.
    pub fn charge(&mut self, name: &'static str, phase: Phase, ns: f64) -> f64 {
        self.charge_scheduled(0, name, phase, ns, 0)
    }

    /// Append `ns` of simulated time in `phase` on `stream`, consuming
    /// `slots` compute slots for the charge's duration (0 for engine
    /// work — transfers and collectives — which never contends for
    /// SMs). Negative durations are clamped to zero and counted in
    /// [`Ledger::negative_charges`]. Returns the start timestamp.
    ///
    /// Charges *issue* in call order — the record list, `kernel_count`
    /// and phase subtotals are schedule-independent — but the start
    /// timestamp is the earliest instant at which the stream is free
    /// and enough compute slots are available.
    pub fn charge_scheduled(
        &mut self,
        stream: usize,
        name: &'static str,
        phase: Phase,
        ns: f64,
        slots: u32,
    ) -> f64 {
        let ns = if ns < 0.0 {
            self.negative_charges += 1;
            0.0
        } else {
            ns
        };
        self.ensure_stream(stream);
        let mut start = self.stream_clock[stream];
        if slots > 0 {
            // Retire intervals that end at or before the earliest
            // possible start, then delay the start until the requested
            // slots fit under the cap (a lone kernel always runs, even
            // if it asks for every slot).
            self.active.retain(|&(end, _)| end > start);
            loop {
                let used: u32 = self
                    .active
                    .iter()
                    .filter(|&&(end, _)| end > start)
                    .map(|&(_, s)| s)
                    .sum();
                if used == 0 || used + slots <= self.compute_slots {
                    break;
                }
                start = self
                    .active
                    .iter()
                    .filter(|&&(end, _)| end > start)
                    .map(|&(end, _)| end)
                    .fold(f64::INFINITY, f64::min);
            }
        }
        let end = start + ns;
        if slots > 0 && ns > 0.0 {
            self.active.push((end, slots));
        }
        self.stream_clock[stream] = end;
        let prev_makespan = self.makespan;
        if end > self.makespan {
            self.makespan = end;
        }
        // The serial schedule would have finished this charge at
        // `prev_makespan + ns`; anything earlier is overlap savings.
        // On the default stream with no other streams in play the two
        // coincide exactly and the increment is 0.0.
        self.overlap_saved_ns += (prev_makespan + ns) - self.makespan;

        if self.records.len() < self.record_limit {
            self.records.push(KernelRecord {
                name,
                phase,
                ns,
                start_ns: start,
                stream,
            });
        } else {
            // Subtotals stay exact past the limit; count what we shed so
            // downstream consumers know the record list is partial.
            self.dropped_records += 1;
        }
        *self.by_phase.entry(phase).or_insert(0.0) += ns;
        self.kernel_count += 1;
        start
    }

    /// Fence the work issued to `stream` so far.
    pub fn record_event(&mut self, stream: usize) -> Event {
        self.ensure_stream(stream);
        Event {
            ns: self.stream_clock[stream],
        }
    }

    /// Make subsequent work on `stream` start no earlier than `event`.
    /// Waiting alone never advances the makespan — only work does.
    pub fn wait_event(&mut self, stream: usize, event: Event) {
        self.ensure_stream(stream);
        if event.ns > self.stream_clock[stream] {
            self.stream_clock[stream] = event.ns;
        }
    }

    /// Completion clock of `stream` (0 if the stream was never touched).
    pub fn stream_now(&self, stream: usize) -> f64 {
        self.stream_clock.get(stream).copied().unwrap_or(0.0)
    }

    /// Device-wide synchronization: every stream clock joins the
    /// makespan and all in-flight compute retires. Books no idle time —
    /// the device is busy as long as *any* stream is.
    pub fn sync_streams(&mut self) {
        for c in &mut self.stream_clock {
            if self.makespan > *c {
                *c = self.makespan;
            }
        }
        self.active.clear();
    }

    /// Raise the device clock to `target_ns`, booking the gap beyond
    /// the makespan as idle time (used by multi-device barriers). Every
    /// stream clock joins `target_ns` as well.
    pub fn advance_to(&mut self, target_ns: f64) {
        if target_ns > self.makespan {
            let gap = target_ns - self.makespan;
            self.makespan = target_ns;
            *self.by_phase.entry(Phase::Idle).or_insert(0.0) += gap;
        }
        for c in &mut self.stream_clock {
            if target_ns > *c {
                *c = target_ns;
            }
        }
        self.active.retain(|&(end, _)| end > target_ns);
    }

    /// Total simulated nanoseconds: the timeline makespan.
    pub fn total_ns(&self) -> f64 {
        self.makespan
    }

    /// Number of charges recorded (kernels + transfers + collectives).
    pub fn kernel_count(&self) -> u64 {
        self.kernel_count
    }

    /// Simulated nanoseconds spent in `phase`.
    pub fn phase_ns(&self, phase: Phase) -> f64 {
        self.by_phase.get(&phase).copied().unwrap_or(0.0)
    }

    /// Retained detailed records (up to the record limit).
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Charges that exceeded `record_limit` and were not retained as
    /// detailed records. Subtotals and `kernel_count` still include them.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Charges that arrived with a negative duration (clamped to zero).
    pub fn negative_charges(&self) -> u64 {
        self.negative_charges
    }

    /// Simulated nanoseconds saved by stream overlap versus the serial
    /// schedule of the same charges (0 on a serial timeline).
    pub fn overlap_saved_ns(&self) -> f64 {
        self.overlap_saved_ns
    }

    /// The compute-slot concurrency cap.
    pub fn compute_slots(&self) -> u32 {
        self.compute_slots
    }

    /// Snapshot of totals for reporting.
    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary {
            total_ns: self.makespan,
            by_phase: self.by_phase.clone(),
            kernel_count: self.kernel_count,
            dropped_records: self.dropped_records,
            negative_charges: self.negative_charges,
            overlap_saved_ns: self.overlap_saved_ns,
        }
    }

    /// Clear all accumulated time and records.
    pub fn reset(&mut self) {
        *self = Ledger::with_slots(self.record_limit, self.compute_slots);
    }
}

/// Immutable snapshot of a ledger, suitable for diffing before/after a
/// training phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Total simulated nanoseconds (timeline makespan).
    pub total_ns: f64,
    /// Per-phase simulated nanoseconds.
    pub by_phase: BTreeMap<Phase, f64>,
    /// Number of charges.
    pub kernel_count: u64,
    /// Charges whose detailed records were shed past the record limit
    /// (subtotals and `kernel_count` remain exact regardless).
    pub dropped_records: u64,
    /// Charges that arrived with a negative duration and were clamped
    /// to zero instead of corrupting the subtotals.
    pub negative_charges: u64,
    /// Simulated nanoseconds saved by stream overlap versus the serial
    /// schedule of the same charges.
    pub overlap_saved_ns: f64,
}

impl LedgerSummary {
    /// Fraction of total time spent in `phase` (0 when total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.by_phase.get(&phase).copied().unwrap_or(0.0) / self.total_ns
        }
    }

    /// Difference `self − earlier`, phase-wise. Panics in debug builds if
    /// `earlier` is not actually earlier.
    pub fn since(&self, earlier: &LedgerSummary) -> LedgerSummary {
        debug_assert!(self.total_ns >= earlier.total_ns);
        let mut by_phase = self.by_phase.clone();
        for (phase, ns) in &earlier.by_phase {
            *by_phase.entry(*phase).or_insert(0.0) -= ns;
        }
        by_phase.retain(|_, v| *v > 1e-12);
        LedgerSummary {
            total_ns: self.total_ns - earlier.total_ns,
            by_phase,
            kernel_count: self.kernel_count - earlier.kernel_count,
            dropped_records: self.dropped_records - earlier.dropped_records,
            negative_charges: self.negative_charges - earlier.negative_charges,
            overlap_saved_ns: self.overlap_saved_ns - earlier.overlap_saved_ns,
        }
    }

    /// Render a fixed-width phase breakdown table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>8}\n",
            "phase", "time (ms)", "share"
        ));
        for (phase, ns) in &self.by_phase {
            out.push_str(&format!(
                "{:<12} {:>12.3} {:>7.1}%\n",
                format!("{phase:?}"),
                ns * 1e-6,
                100.0 * ns / self.total_ns.max(1e-12)
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12.3} {:>7}\n",
            "total",
            self.total_ns * 1e-6,
            format!("{} kernels", self.kernel_count)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_phase() {
        let mut l = Ledger::new(16);
        l.charge("a", Phase::Histogram, 100.0);
        l.charge("b", Phase::Histogram, 50.0);
        l.charge("c", Phase::SplitEval, 25.0);
        assert_eq!(l.total_ns(), 175.0);
        assert_eq!(l.phase_ns(Phase::Histogram), 150.0);
        assert_eq!(l.phase_ns(Phase::SplitEval), 25.0);
        assert_eq!(l.phase_ns(Phase::Gradient), 0.0);
        assert_eq!(l.kernel_count(), 3);
    }

    #[test]
    fn record_limit_caps_detail_but_not_totals() {
        let mut l = Ledger::new(2);
        for _ in 0..10 {
            l.charge("k", Phase::Other, 1.0);
        }
        assert_eq!(l.records().len(), 2);
        assert_eq!(l.total_ns(), 10.0);
        assert_eq!(l.kernel_count(), 10);
        assert_eq!(l.dropped_records(), 8);
        assert_eq!(l.summary().dropped_records, 8);
    }

    #[test]
    fn capped_ledger_keeps_subtotals_exact_and_counts_overflow() {
        let mut l = Ledger::new(3);
        for i in 0..7 {
            l.charge("h", Phase::Histogram, 2.0 + i as f64);
        }
        l.charge("s", Phase::SplitEval, 1.5);
        // Phase subtotals exact despite 5 shed records.
        assert_eq!(
            l.phase_ns(Phase::Histogram),
            (0..7).map(|i| 2.0 + i as f64).sum()
        );
        assert_eq!(l.phase_ns(Phase::SplitEval), 1.5);
        assert_eq!(l.records().len(), 3);
        assert_eq!(l.dropped_records(), 5);
        // Reset clears the overflow counter too.
        l.reset();
        assert_eq!(l.dropped_records(), 0);
    }

    #[test]
    fn charge_returns_start_timestamp() {
        let mut l = Ledger::new(1);
        assert_eq!(l.charge("a", Phase::Other, 4.0), 0.0);
        // Returned start time is correct even past the record limit.
        assert_eq!(l.charge("b", Phase::Other, 6.0), 4.0);
        assert_eq!(l.charge("c", Phase::Other, 1.0), 10.0);
    }

    #[test]
    fn since_diffs_dropped_records() {
        let mut l = Ledger::new(1);
        l.charge("a", Phase::Other, 1.0);
        l.charge("b", Phase::Other, 1.0);
        let early = l.summary();
        l.charge("c", Phase::Other, 1.0);
        l.charge("d", Phase::Other, 1.0);
        let delta = l.summary().since(&early);
        assert_eq!(delta.dropped_records, 2);
    }

    #[test]
    fn records_carry_start_times() {
        let mut l = Ledger::new(8);
        l.charge("a", Phase::Other, 5.0);
        l.charge("b", Phase::Other, 7.0);
        assert_eq!(l.records()[0].start_ns, 0.0);
        assert_eq!(l.records()[1].start_ns, 5.0);
    }

    #[test]
    fn advance_to_books_idle() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Other, 10.0);
        l.advance_to(25.0);
        assert_eq!(l.total_ns(), 25.0);
        assert_eq!(l.phase_ns(Phase::Idle), 15.0);
        // Advancing backwards is a no-op.
        l.advance_to(5.0);
        assert_eq!(l.total_ns(), 25.0);
    }

    #[test]
    fn summary_fraction_and_since() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Histogram, 80.0);
        let early = l.summary();
        l.charge("b", Phase::SplitEval, 20.0);
        let late = l.summary();
        assert!((late.fraction(Phase::Histogram) - 0.8).abs() < 1e-12);
        let delta = late.since(&early);
        assert_eq!(delta.total_ns, 20.0);
        assert_eq!(delta.by_phase.get(&Phase::SplitEval), Some(&20.0));
        assert_eq!(delta.by_phase.get(&Phase::Histogram), None);
        assert_eq!(delta.kernel_count, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = Ledger::new(4);
        l.charge("a", Phase::Other, 1.0);
        l.reset();
        assert_eq!(l.total_ns(), 0.0);
        assert_eq!(l.kernel_count(), 0);
        assert!(l.records().is_empty());
    }

    #[test]
    fn table_renders() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Histogram, 1e6);
        let t = l.summary().table();
        assert!(t.contains("Histogram"));
        assert!(t.contains("total"));
    }

    // --- stream / event / scheduling behavior ---

    #[test]
    fn negative_charge_is_clamped_and_counted() {
        let mut l = Ledger::new(4);
        l.charge("a", Phase::Histogram, 10.0);
        l.charge("bad", Phase::Histogram, -5.0);
        // Subtotals and the clock are uncorrupted; the clamp is counted.
        assert_eq!(l.total_ns(), 10.0);
        assert_eq!(l.phase_ns(Phase::Histogram), 10.0);
        assert_eq!(l.negative_charges(), 1);
        assert_eq!(l.summary().negative_charges, 1);
        // The clamped record exists with zero duration.
        assert_eq!(l.records()[1].ns, 0.0);
        // since() diffs the counter.
        let early = l.summary();
        l.charge("bad2", Phase::Other, -1.0);
        assert_eq!(l.summary().since(&early).negative_charges, 1);
    }

    #[test]
    fn independent_streams_overlap_and_makespan_is_max() {
        let mut l = Ledger::with_slots(16, 4);
        l.charge_scheduled(1, "a", Phase::Histogram, 100.0, 1);
        l.charge_scheduled(2, "b", Phase::Histogram, 60.0, 1);
        assert_eq!(l.total_ns(), 100.0);
        // Subtotals stay the exact charged sum.
        assert_eq!(l.phase_ns(Phase::Histogram), 160.0);
        assert_eq!(l.overlap_saved_ns(), 60.0);
        let recs = l.records();
        assert_eq!(recs[0].stream, 1);
        assert_eq!(recs[1].stream, 2);
        assert_eq!(recs[1].start_ns, 0.0);
    }

    #[test]
    fn default_stream_charges_keep_serial_clock_and_save_nothing() {
        let mut l = Ledger::with_slots(16, 6);
        let s0 = l.charge_scheduled(0, "a", Phase::Other, 7.0, 1);
        let s1 = l.charge_scheduled(0, "b", Phase::Other, 3.0, 6);
        assert_eq!(s0, 0.0);
        assert_eq!(s1, 7.0);
        assert_eq!(l.total_ns(), 10.0);
        assert_eq!(l.overlap_saved_ns(), 0.0);
    }

    #[test]
    fn compute_slot_cap_serializes_excess_kernels() {
        let mut l = Ledger::with_slots(16, 2);
        l.charge_scheduled(1, "a", Phase::Other, 10.0, 1);
        l.charge_scheduled(2, "b", Phase::Other, 10.0, 1);
        // Third co-resident kernel exceeds the 2-slot cap: it waits for
        // the earliest completion.
        let start = l.charge_scheduled(3, "c", Phase::Other, 10.0, 1);
        assert_eq!(start, 10.0);
        assert_eq!(l.total_ns(), 20.0);
    }

    #[test]
    fn saturating_kernel_takes_every_slot() {
        let mut l = Ledger::with_slots(16, 4);
        // A saturating kernel (all 4 slots) runs alone…
        l.charge_scheduled(1, "big", Phase::Other, 100.0, 4);
        // …so a 1-slot kernel on another stream queues behind it.
        let start = l.charge_scheduled(2, "small", Phase::Other, 5.0, 1);
        assert_eq!(start, 100.0);
        // And a lone saturating kernel always runs even at used == 0.
        let mut solo = Ledger::with_slots(4, 2);
        assert_eq!(solo.charge_scheduled(1, "big", Phase::Other, 9.0, 7), 0.0);
    }

    #[test]
    fn engine_charges_ignore_the_compute_cap() {
        let mut l = Ledger::with_slots(16, 1);
        l.charge_scheduled(1, "big", Phase::Histogram, 50.0, 1);
        // A transfer (0 slots) overlaps freely with saturated SMs.
        let start = l.charge_scheduled(2, "htod", Phase::Transfer, 30.0, 0);
        assert_eq!(start, 0.0);
        assert_eq!(l.total_ns(), 50.0);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let mut l = Ledger::with_slots(16, 4);
        l.charge_scheduled(1, "producer", Phase::Histogram, 40.0, 1);
        let ev = l.record_event(1);
        assert_eq!(ev.ns(), 40.0);
        l.wait_event(2, ev);
        let start = l.charge_scheduled(2, "consumer", Phase::SplitEval, 10.0, 1);
        assert_eq!(start, 40.0);
        assert_eq!(l.total_ns(), 50.0);
        // Waiting on an already-passed fence is a no-op.
        l.wait_event(2, Event::at_ns(1.0));
        assert_eq!(l.stream_now(2), 50.0);
    }

    #[test]
    fn event_helpers_compose() {
        let a = Event::at_ns(10.0);
        let b = Event::at_ns(25.0);
        assert_eq!(a.max(b).ns(), 25.0);
        assert_eq!(b.offset_ns(-5.0).ns(), 20.0);
        assert_eq!(a.offset_ns(-100.0).ns(), 0.0);
    }

    #[test]
    fn wait_alone_never_extends_the_makespan() {
        let mut l = Ledger::new(4);
        l.charge("a", Phase::Other, 10.0);
        l.wait_event(3, Event::at_ns(99.0));
        assert_eq!(l.total_ns(), 10.0);
        assert_eq!(l.stream_now(3), 99.0);
    }

    #[test]
    fn sync_joins_all_streams_without_idle() {
        let mut l = Ledger::with_slots(16, 4);
        l.charge_scheduled(0, "a", Phase::Other, 100.0, 1);
        l.charge_scheduled(1, "b", Phase::Other, 10.0, 1);
        l.sync_streams();
        assert_eq!(l.stream_now(1), 100.0);
        assert_eq!(l.total_ns(), 100.0);
        assert_eq!(l.phase_ns(Phase::Idle), 0.0);
        // Post-sync work on stream 1 starts at the joined clock.
        let start = l.charge_scheduled(1, "c", Phase::Other, 1.0, 1);
        assert_eq!(start, 100.0);
    }

    #[test]
    fn advance_to_raises_every_stream_clock() {
        let mut l = Ledger::with_slots(16, 4);
        l.charge_scheduled(1, "a", Phase::Other, 10.0, 1);
        l.charge_scheduled(2, "b", Phase::Other, 30.0, 1);
        l.advance_to(50.0);
        assert_eq!(l.stream_now(1), 50.0);
        assert_eq!(l.stream_now(2), 50.0);
        assert_eq!(l.phase_ns(Phase::Idle), 20.0);
        assert_eq!(l.total_ns(), 50.0);
    }

    #[test]
    fn overlap_saved_equals_serial_sum_minus_makespan() {
        let mut l = Ledger::with_slots(64, 3);
        let durations = [30.0, 10.0, 25.0, 5.0, 40.0, 1.0];
        let mut serial_sum = 0.0;
        for (i, &d) in durations.iter().enumerate() {
            l.charge_scheduled(1 + (i % 3), "k", Phase::Other, d, 1);
            serial_sum += d;
        }
        let saved = l.overlap_saved_ns();
        assert!((saved - (serial_sum - l.total_ns())).abs() < 1e-9);
        assert!(saved > 0.0);
    }
}
