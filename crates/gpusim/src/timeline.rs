//! Per-device time ledger and kernel timeline.
//!
//! Every simulated kernel appends a [`KernelRecord`]; the ledger keeps a
//! running total and per-phase subtotals. The trainer uses phase
//! subtotals to regenerate the paper's Figure 4 (histogram-building share
//! of total training time).

use crate::device::Phase;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One simulated kernel (or transfer / collective) on a device timeline.
///
/// Serialize-only: `name` borrows `'static` kernel-name literals, which
/// cannot be reconstructed from transient JSON input.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRecord {
    /// Human-readable kernel name, e.g. `hist_smem_packed`.
    pub name: &'static str,
    /// Pipeline phase the kernel belongs to.
    pub phase: Phase,
    /// Simulated duration in nanoseconds.
    pub ns: f64,
    /// Simulated start time (device-local), nanoseconds.
    pub start_ns: f64,
}

/// Accumulated simulated time of one device.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    total_ns: f64,
    by_phase: BTreeMap<Phase, f64>,
    kernel_count: u64,
    records: Vec<KernelRecord>,
    record_limit: usize,
    dropped_records: u64,
}

impl Ledger {
    /// Create a ledger retaining at most `record_limit` detailed records
    /// (phase subtotals are always exact regardless of the limit).
    pub fn new(record_limit: usize) -> Self {
        Ledger {
            record_limit,
            ..Default::default()
        }
    }

    /// Append `ns` of simulated time in `phase`. Returns the charge's
    /// start timestamp (the device clock *before* the charge), so
    /// observers can reconstruct the timeline without re-locking.
    pub fn charge(&mut self, name: &'static str, phase: Phase, ns: f64) -> f64 {
        debug_assert!(ns >= 0.0, "negative charge: {name} {ns}");
        let start_ns = self.total_ns;
        if self.records.len() < self.record_limit {
            self.records.push(KernelRecord {
                name,
                phase,
                ns,
                start_ns,
            });
        } else {
            // Subtotals stay exact past the limit; count what we shed so
            // downstream consumers know the record list is partial.
            self.dropped_records += 1;
        }
        self.total_ns += ns;
        *self.by_phase.entry(phase).or_insert(0.0) += ns;
        self.kernel_count += 1;
        start_ns
    }

    /// Raise the device clock to `target_ns`, booking the gap as idle
    /// time (used by multi-device barriers).
    pub fn advance_to(&mut self, target_ns: f64) {
        if target_ns > self.total_ns {
            let gap = target_ns - self.total_ns;
            self.total_ns = target_ns;
            *self.by_phase.entry(Phase::Idle).or_insert(0.0) += gap;
        }
    }

    /// Total simulated nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Number of charges recorded (kernels + transfers + collectives).
    pub fn kernel_count(&self) -> u64 {
        self.kernel_count
    }

    /// Simulated nanoseconds spent in `phase`.
    pub fn phase_ns(&self, phase: Phase) -> f64 {
        self.by_phase.get(&phase).copied().unwrap_or(0.0)
    }

    /// Retained detailed records (up to the record limit).
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Charges that exceeded `record_limit` and were not retained as
    /// detailed records. Subtotals and `kernel_count` still include them.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Snapshot of totals for reporting.
    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary {
            total_ns: self.total_ns,
            by_phase: self.by_phase.clone(),
            kernel_count: self.kernel_count,
            dropped_records: self.dropped_records,
        }
    }

    /// Clear all accumulated time and records.
    pub fn reset(&mut self) {
        let limit = self.record_limit;
        *self = Ledger::new(limit);
    }
}

/// Immutable snapshot of a ledger, suitable for diffing before/after a
/// training phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Total simulated nanoseconds.
    pub total_ns: f64,
    /// Per-phase simulated nanoseconds.
    pub by_phase: BTreeMap<Phase, f64>,
    /// Number of charges.
    pub kernel_count: u64,
    /// Charges whose detailed records were shed past the record limit
    /// (subtotals and `kernel_count` remain exact regardless).
    pub dropped_records: u64,
}

impl LedgerSummary {
    /// Fraction of total time spent in `phase` (0 when total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.by_phase.get(&phase).copied().unwrap_or(0.0) / self.total_ns
        }
    }

    /// Difference `self − earlier`, phase-wise. Panics in debug builds if
    /// `earlier` is not actually earlier.
    pub fn since(&self, earlier: &LedgerSummary) -> LedgerSummary {
        debug_assert!(self.total_ns >= earlier.total_ns);
        let mut by_phase = self.by_phase.clone();
        for (phase, ns) in &earlier.by_phase {
            *by_phase.entry(*phase).or_insert(0.0) -= ns;
        }
        by_phase.retain(|_, v| *v > 1e-12);
        LedgerSummary {
            total_ns: self.total_ns - earlier.total_ns,
            by_phase,
            kernel_count: self.kernel_count - earlier.kernel_count,
            dropped_records: self.dropped_records - earlier.dropped_records,
        }
    }

    /// Render a fixed-width phase breakdown table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>8}\n",
            "phase", "time (ms)", "share"
        ));
        for (phase, ns) in &self.by_phase {
            out.push_str(&format!(
                "{:<12} {:>12.3} {:>7.1}%\n",
                format!("{phase:?}"),
                ns * 1e-6,
                100.0 * ns / self.total_ns.max(1e-12)
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12.3} {:>7}\n",
            "total",
            self.total_ns * 1e-6,
            format!("{} kernels", self.kernel_count)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_phase() {
        let mut l = Ledger::new(16);
        l.charge("a", Phase::Histogram, 100.0);
        l.charge("b", Phase::Histogram, 50.0);
        l.charge("c", Phase::SplitEval, 25.0);
        assert_eq!(l.total_ns(), 175.0);
        assert_eq!(l.phase_ns(Phase::Histogram), 150.0);
        assert_eq!(l.phase_ns(Phase::SplitEval), 25.0);
        assert_eq!(l.phase_ns(Phase::Gradient), 0.0);
        assert_eq!(l.kernel_count(), 3);
    }

    #[test]
    fn record_limit_caps_detail_but_not_totals() {
        let mut l = Ledger::new(2);
        for _ in 0..10 {
            l.charge("k", Phase::Other, 1.0);
        }
        assert_eq!(l.records().len(), 2);
        assert_eq!(l.total_ns(), 10.0);
        assert_eq!(l.kernel_count(), 10);
        assert_eq!(l.dropped_records(), 8);
        assert_eq!(l.summary().dropped_records, 8);
    }

    #[test]
    fn capped_ledger_keeps_subtotals_exact_and_counts_overflow() {
        let mut l = Ledger::new(3);
        for i in 0..7 {
            l.charge("h", Phase::Histogram, 2.0 + i as f64);
        }
        l.charge("s", Phase::SplitEval, 1.5);
        // Phase subtotals exact despite 5 shed records.
        assert_eq!(
            l.phase_ns(Phase::Histogram),
            (0..7).map(|i| 2.0 + i as f64).sum()
        );
        assert_eq!(l.phase_ns(Phase::SplitEval), 1.5);
        assert_eq!(l.records().len(), 3);
        assert_eq!(l.dropped_records(), 5);
        // Reset clears the overflow counter too.
        l.reset();
        assert_eq!(l.dropped_records(), 0);
    }

    #[test]
    fn charge_returns_start_timestamp() {
        let mut l = Ledger::new(1);
        assert_eq!(l.charge("a", Phase::Other, 4.0), 0.0);
        // Returned start time is correct even past the record limit.
        assert_eq!(l.charge("b", Phase::Other, 6.0), 4.0);
        assert_eq!(l.charge("c", Phase::Other, 1.0), 10.0);
    }

    #[test]
    fn since_diffs_dropped_records() {
        let mut l = Ledger::new(1);
        l.charge("a", Phase::Other, 1.0);
        l.charge("b", Phase::Other, 1.0);
        let early = l.summary();
        l.charge("c", Phase::Other, 1.0);
        l.charge("d", Phase::Other, 1.0);
        let delta = l.summary().since(&early);
        assert_eq!(delta.dropped_records, 2);
    }

    #[test]
    fn records_carry_start_times() {
        let mut l = Ledger::new(8);
        l.charge("a", Phase::Other, 5.0);
        l.charge("b", Phase::Other, 7.0);
        assert_eq!(l.records()[0].start_ns, 0.0);
        assert_eq!(l.records()[1].start_ns, 5.0);
    }

    #[test]
    fn advance_to_books_idle() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Other, 10.0);
        l.advance_to(25.0);
        assert_eq!(l.total_ns(), 25.0);
        assert_eq!(l.phase_ns(Phase::Idle), 15.0);
        // Advancing backwards is a no-op.
        l.advance_to(5.0);
        assert_eq!(l.total_ns(), 25.0);
    }

    #[test]
    fn summary_fraction_and_since() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Histogram, 80.0);
        let early = l.summary();
        l.charge("b", Phase::SplitEval, 20.0);
        let late = l.summary();
        assert!((late.fraction(Phase::Histogram) - 0.8).abs() < 1e-12);
        let delta = late.since(&early);
        assert_eq!(delta.total_ns, 20.0);
        assert_eq!(delta.by_phase.get(&Phase::SplitEval), Some(&20.0));
        assert_eq!(delta.by_phase.get(&Phase::Histogram), None);
        assert_eq!(delta.kernel_count, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = Ledger::new(4);
        l.charge("a", Phase::Other, 1.0);
        l.reset();
        assert_eq!(l.total_ns(), 0.0);
        assert_eq!(l.kernel_count(), 0);
        assert!(l.records().is_empty());
    }

    #[test]
    fn table_renders() {
        let mut l = Ledger::new(0);
        l.charge("a", Phase::Histogram, 1e6);
        let t = l.summary().table();
        assert!(t.contains("Histogram"));
        assert!(t.contains("total"));
    }
}
