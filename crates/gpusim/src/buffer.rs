//! Device-resident buffers.
//!
//! A [`GpuBuffer`] models `cudaMalloc`'d memory: it is owned by one
//! device, and moving data across the host boundary must go through
//! [`crate::Device::htod`] / [`crate::Device::dtoh`] so the transfer is
//! charged. *Within* kernels (primitives and user kernels built on
//! [`crate::launch::run_blocks`]) the backing slice is accessed directly;
//! kernels account for their memory traffic via their
//! [`crate::KernelCost`] instead of per-access bookkeeping.

/// A typed, device-owned buffer.
#[derive(Debug, Clone)]
pub struct GpuBuffer<T> {
    device_id: usize,
    data: Vec<T>,
}

impl<T: Copy + Send + Sync> GpuBuffer<T> {
    /// Wrap an already-materialized vector as a buffer on `device_id`.
    /// Crate-internal construction path; external users go through
    /// [`crate::Device::htod`] / [`crate::Device::alloc_zeroed`].
    ///
    /// # Invariant
    ///
    /// `device_id` is taken on trust: there is no global device registry
    /// to validate against (devices are plain `Arc`s, and multi-device
    /// topologies are assembled ad hoc by [`crate::DeviceGroup`]), so a
    /// buffer's owner cannot be checked at construction time. The
    /// invariant is instead enforced at every *use* that crosses a
    /// device boundary: [`crate::Device::dtoh`] panics when asked to
    /// read a buffer whose `device_id` differs from the device's own
    /// `id` — the simulator's analogue of an invalid-device-pointer
    /// fault. Callers constructing buffers directly must pass the `id`
    /// of the device whose ledger will be charged for kernels touching
    /// the buffer.
    pub fn from_vec(device_id: usize, data: Vec<T>) -> Self {
        GpuBuffer { device_id, data }
    }

    /// The owning device's index.
    pub fn device_id(&self) -> usize {
        self.device_id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (for cost descriptors).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Kernel-side read access to the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Kernel-side write access to the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, returning the backing vector *without*
    /// charging a transfer (used when handing a result to another
    /// same-device operation).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut b = GpuBuffer::from_vec(3, vec![1u32, 2, 3]);
        assert_eq!(b.device_id(), 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 12);
        b.as_mut_slice()[0] = 9;
        assert_eq!(b.as_slice(), &[9, 2, 3]);
        assert_eq!(b.into_vec(), vec![9, 2, 3]);
    }

    #[test]
    fn empty_buffer() {
        let b: GpuBuffer<f64> = GpuBuffer::from_vec(0, vec![]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.size_bytes(), 0);
        assert_eq!(b.as_slice(), &[] as &[f64]);
        assert_eq!(b.into_vec(), Vec::<f64>::new());
    }

    #[test]
    fn empty_buffer_keeps_device_id_and_mut_slice() {
        let mut b: GpuBuffer<u8> = GpuBuffer::from_vec(7, vec![]);
        assert_eq!(b.device_id(), 7);
        assert!(b.as_mut_slice().is_empty());
    }

    #[test]
    fn empty_buffer_roundtrips_through_device() {
        use crate::device::Device;
        let dev = Device::rtx4090();
        let buf = dev.htod::<f32>(&[]);
        assert!(buf.is_empty());
        assert_eq!(buf.device_id(), dev.id);
        let back = dev.dtoh(&buf);
        assert!(back.is_empty());
    }

    #[test]
    fn alloc_zeroed_empty_is_well_formed() {
        use crate::device::Device;
        let dev = Device::rtx4090();
        let buf = dev.alloc_zeroed::<u32>(0);
        assert!(buf.is_empty());
        assert_eq!(buf.size_bytes(), 0);
        assert_eq!(buf.into_vec(), Vec::<u32>::new());
    }
}
