//! SM occupancy calculation (the CUDA occupancy calculator).
//!
//! Occupancy — the fraction of an SM's warp slots a kernel can fill —
//! is what the shared-memory histogram strategy trades away: a 48 KB
//! sub-histogram per block caps resident blocks per SM, which caps
//! latency hiding. The tiling logic consults this module when choosing
//! chunk sizes, and the Fig. 6a discussion in EXPERIMENTS.md uses it to
//! explain the smem/gmem crossover.

use serde::{Deserialize, Serialize};

/// Per-SM resource ceilings. Defaults approximate Ada (RTX 4090).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmLimits {
    /// Maximum resident threads per SM.
    pub max_threads: u32,
    /// Maximum resident warps per SM.
    pub max_warps: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks: u32,
    /// Shared memory per SM, bytes.
    pub smem_bytes: u32,
    /// 32-bit registers per SM.
    pub registers: u32,
    /// Threads per warp.
    pub warp_size: u32,
}

impl Default for SmLimits {
    fn default() -> Self {
        SmLimits {
            max_threads: 1536,
            max_warps: 48,
            max_blocks: 24,
            smem_bytes: 100 * 1024,
            registers: 65_536,
            warp_size: 32,
        }
    }
}

/// Resources one kernel block consumes.
#[derive(Debug, Clone, Copy)]
pub struct BlockResources {
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub active_warps: u32,
    /// `active_warps / max_warps` ∈ [0, 1].
    pub fraction: f64,
}

/// Compute achievable occupancy of a kernel under `limits`.
pub fn occupancy(res: BlockResources, limits: &SmLimits) -> Occupancy {
    assert!(res.threads > 0, "block must have threads");
    let warps_per_block = res.threads.div_ceil(limits.warp_size);

    let by_threads = limits.max_threads / res.threads;
    let by_warps = limits.max_warps / warps_per_block;
    let by_smem = limits
        .smem_bytes
        .checked_div(res.smem_bytes)
        .unwrap_or(u32::MAX);
    let by_regs = limits
        .registers
        .checked_div(res.regs_per_thread * res.threads)
        .unwrap_or(u32::MAX);
    let blocks = by_threads
        .min(by_warps)
        .min(by_smem)
        .min(by_regs)
        .min(limits.max_blocks);
    let active_warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        active_warps,
        fraction: active_warps as f64 / limits.max_warps as f64,
    }
}

/// The largest shared-memory allocation per block (bytes, rounded down
/// to `granularity`) that still admits `min_blocks` resident blocks per
/// SM — how the tiled histogram picks its chunk size.
pub fn max_smem_for_blocks(min_blocks: u32, granularity: u32, limits: &SmLimits) -> u32 {
    assert!(min_blocks > 0);
    let per_block = limits.smem_bytes / min_blocks;
    (per_block / granularity.max(1)) * granularity.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> SmLimits {
        SmLimits::default()
    }

    #[test]
    fn small_blocks_reach_full_occupancy() {
        let o = occupancy(
            BlockResources {
                threads: 256,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
            &limits(),
        );
        assert_eq!(o.blocks_per_sm, 6); // 1536 / 256
        assert_eq!(o.active_warps, 48);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smem_heavy_blocks_are_smem_limited() {
        // A 48 KB sub-histogram per block → ⌊100 KB / 48 KB⌋ = 2 blocks.
        let o = occupancy(
            BlockResources {
                threads: 256,
                smem_bytes: 48 * 1024,
                regs_per_thread: 32,
            },
            &limits(),
        );
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.active_warps, 16);
        assert!(o.fraction < 0.4);
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let o = occupancy(
            BlockResources {
                threads: 256,
                smem_bytes: 0,
                regs_per_thread: 128, // 32768 regs per block
            },
            &limits(),
        );
        assert_eq!(o.blocks_per_sm, 2); // 65536 / 32768
    }

    #[test]
    fn block_count_cap_applies_to_tiny_blocks() {
        let o = occupancy(
            BlockResources {
                threads: 32,
                smem_bytes: 0,
                regs_per_thread: 0,
            },
            &limits(),
        );
        assert_eq!(o.blocks_per_sm, 24); // max_blocks, not 1536/32 = 48
        assert_eq!(o.active_warps, 24);
        assert!((o.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_smem_for_blocks_inverts_occupancy() {
        let lm = limits();
        let budget = max_smem_for_blocks(2, 1024, &lm);
        assert!(budget <= lm.smem_bytes / 2);
        let o = occupancy(
            BlockResources {
                threads: 256,
                smem_bytes: budget,
                regs_per_thread: 0,
            },
            &lm,
        );
        assert!(o.blocks_per_sm >= 2);
    }

    #[test]
    #[should_panic(expected = "block must have threads")]
    fn zero_thread_block_rejected() {
        let _ = occupancy(
            BlockResources {
                threads: 0,
                smem_bytes: 0,
                regs_per_thread: 0,
            },
            &limits(),
        );
    }
}
