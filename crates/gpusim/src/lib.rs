//! # gpusim — a software-simulated CUDA-like GPU
//!
//! This crate stands in for the CUDA runtime used by the original paper
//! ("Accelerating Multi-Output GBDTs with GPUs", ICPP'25). It provides:
//!
//! * **Functional execution** — every "kernel" computes its real result on
//!   the host, parallelized with rayon across simulated thread blocks, so
//!   all downstream model-quality numbers are genuine.
//! * **An analytical cost model** — every kernel is charged to a
//!   nanosecond-resolution ledger using a roofline-style model of an
//!   NVIDIA-class device: streaming multiprocessors, 32-lane warps,
//!   coalesced global-memory transactions, shared-memory bank conflicts,
//!   atomic replay/serialization, kernel-launch overhead, PCIe transfers
//!   and multi-device ring collectives. Contention terms are derived from
//!   the *actual addresses* kernels touch (sampled per warp), so the
//!   data-dependent effects the paper measures (Fig. 4, Fig. 6a) emerge
//!   from real access patterns rather than constants.
//!
//! The crate is deliberately structured like a miniature CUDA stack:
//!
//! | CUDA concept            | gpusim equivalent                          |
//! |-------------------------|--------------------------------------------|
//! | `cudaDeviceProp`        | [`DeviceProps`]                            |
//! | device                  | [`Device`]                                 |
//! | streams + events        | [`Device::stream`], [`Event`] fences       |
//! | `cudaMalloc`/`cudaMemcpy`| [`Device::alloc_zeroed`], [`Device::htod`] |
//! | kernel launch           | [`Device::charge_kernel`] + [`launch::run_blocks`] |
//! | Thrust/CUB primitives   | [`primitives`]                             |
//! | NCCL collectives        | [`collective::DeviceGroup`]                |
//!
//! Deterministic by construction: block-level parallel execution always
//! merges partial results in block order, so repeated runs produce
//! bit-identical results regardless of the rayon schedule.

#![warn(missing_docs)]

pub mod buffer;
pub mod collective;
pub mod cost;
pub mod device;
pub mod fault;
pub mod launch;
pub mod occupancy;
pub mod primitives;
pub mod prof;
pub mod sanitize;
pub mod timeline;
pub mod warp;

pub use buffer::GpuBuffer;
pub use collective::DeviceGroup;
pub use cost::{CostModel, CostParams, KernelCost};
pub use device::{Device, DeviceProps, Phase, Stream};
pub use fault::{
    buffer_checksum, buffer_checksum_on, Bits32, FaultEvent, FaultInjector, FaultKind, FaultPlan,
    FaultReport, GpuFault,
};
pub use launch::LaunchCfg;
pub use prof::{
    KernelStatRow, ProfScope, ProfileSummary, Profiler, ScopeRow, PROFILE_SCHEMA_VERSION,
};
pub use sanitize::{
    AccessKind, MemSpace, SanitizeMode, SanitizeReport, Sanitizer, ThreadCtx, Violation,
    ViolationKind,
};
pub use telemetry::{
    FlightEvent, Postmortem, Telemetry, TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION,
};
pub use timeline::{Event, KernelRecord, LedgerSummary};

/// Seconds represented as `f64` nanoseconds, the unit of the ledger.
pub type Nanos = f64;

/// Convert a nanosecond ledger value into seconds.
#[inline]
pub fn ns_to_secs(ns: Nanos) -> f64 {
    ns * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_secs_converts() {
        assert!((ns_to_secs(2.5e9) - 2.5).abs() < 1e-12);
        assert_eq!(ns_to_secs(0.0), 0.0);
    }
}
