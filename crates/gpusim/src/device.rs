//! The simulated device: properties, time ledger, and charge interface.

use crate::buffer::GpuBuffer;
use crate::cost::{CostModel, CostParams, KernelCost};
use crate::fault::{Bits32, FaultInjector, FaultPlan, FaultReport, GpuFault};
use crate::occupancy::{occupancy, BlockResources, SmLimits};
use crate::prof::{ProfScope, ProfileSummary, Profiler};
use crate::sanitize::{SanitizeMode, SanitizeReport, Sanitizer};
use crate::timeline::{Event, Ledger, LedgerSummary};
use crate::KernelRecord;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use telemetry::Telemetry;

/// Training-pipeline phase a kernel is attributed to. Used to regenerate
/// the paper's Figure 4 breakdown (histogram share of total time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Quantile binning / preprocessing of the input matrix.
    Binning,
    /// Loss evaluation and g/h computation (paper §3.1.1).
    Gradient,
    /// Gradient sketching: shrinking the `n × d` gradient matrix to an
    /// `n × k` sketch before histogram building (SketchBoost's recipe),
    /// so the dominant histogram cost scales with `k` instead of `d`.
    Sketch,
    /// Histogram construction (paper §3.3) — the headline bottleneck.
    Histogram,
    /// Gain computation and best-split reduction (paper §3.1.3).
    SplitEval,
    /// Moving instances into child nodes after a split.
    Partition,
    /// Computing optimal leaf values.
    LeafValue,
    /// Model inference / incremental prediction update.
    Predict,
    /// Online serving of compiled ensembles (batched inference over
    /// resident SoA trees — see `gbdt_core::serve`).
    Serve,
    /// Host↔device copies.
    Transfer,
    /// Inter-device collectives (paper §3.4.2).
    Comm,
    /// Barrier wait time in multi-device lockstep.
    Idle,
    /// Anything else.
    Other,
}

impl Phase {
    /// Every variant, in `Ord` (declaration) order. Used by the bench
    /// schema to emit a complete per-phase breakdown.
    pub const ALL: [Phase; 13] = [
        Phase::Binning,
        Phase::Gradient,
        Phase::Sketch,
        Phase::Histogram,
        Phase::SplitEval,
        Phase::Partition,
        Phase::LeafValue,
        Phase::Predict,
        Phase::Serve,
        Phase::Transfer,
        Phase::Comm,
        Phase::Idle,
        Phase::Other,
    ];

    /// Stable name used as a JSON key by the profiler and bench
    /// schemas. The match is exhaustive on purpose: adding a `Phase`
    /// variant must not compile until every schema knows about it.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Binning => "Binning",
            Phase::Gradient => "Gradient",
            Phase::Sketch => "Sketch",
            Phase::Histogram => "Histogram",
            Phase::SplitEval => "SplitEval",
            Phase::Partition => "Partition",
            Phase::LeafValue => "LeafValue",
            Phase::Predict => "Predict",
            Phase::Serve => "Serve",
            Phase::Transfer => "Transfer",
            Phase::Comm => "Comm",
            Phase::Idle => "Idle",
            Phase::Other => "Other",
        }
    }
}

/// Static properties of a simulated device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProps {
    /// Marketing name, for reports.
    pub name: String,
    /// Cost-model parameters (SMs, clocks, bandwidths, …).
    pub cost: CostParams,
}

impl DeviceProps {
    /// An RTX 4090-like device (the paper's main testbed, §4.1).
    pub fn rtx4090() -> Self {
        DeviceProps {
            name: "SimRTX4090".to_string(),
            cost: CostParams::rtx4090(),
        }
    }

    /// An RTX 3090-like device (the paper's sensitivity study, §4.3).
    pub fn rtx3090() -> Self {
        DeviceProps {
            name: "SimRTX3090".to_string(),
            cost: CostParams::rtx3090(),
        }
    }

    /// An A100-SXM4-like datacenter device.
    pub fn a100() -> Self {
        DeviceProps {
            name: "SimA100".to_string(),
            cost: CostParams::a100(),
        }
    }

    /// An H100-SXM5-like datacenter device.
    pub fn h100() -> Self {
        DeviceProps {
            name: "SimH100".to_string(),
            cost: CostParams::h100(),
        }
    }
}

/// A simulated GPU with multiple in-order streams.
///
/// All kernels execute functionally on the host; their simulated duration
/// is computed by the [`CostModel`] and accumulated in a ledger whose
/// timeline models CUDA streams: each stream is an in-order queue with
/// its own clock, [`Event`] fences add cross-stream edges, and compute
/// kernels contend for an occupancy-derived number of concurrent-kernel
/// slots (see [`Device::compute_slots`]). Stream 0 is the default
/// stream; code that never names a stream behaves exactly as the old
/// single-stream device, bit for bit. `Device` is `Sync`: concurrent
/// charges are serialized by an internal lock, and the in-order-stream
/// abstraction means only subtotal order (not interleaving) matters.
pub struct Device {
    /// Device index within its group (0-based, mirrors `cudaSetDevice`).
    pub id: usize,
    props: DeviceProps,
    model: CostModel,
    ledger: Mutex<Ledger>,
    sanitizer: Mutex<Option<Arc<Sanitizer>>>,
    profiler: Mutex<Option<Arc<Profiler>>>,
    fault: Mutex<Option<Arc<FaultInjector>>>,
    telemetry: Mutex<Option<Arc<Telemetry>>>,
}

/// A lightweight handle binding a [`Device`] to a stream id, so call
/// sites can write `device.stream(s).charge_kernel(...)` with the same
/// method names (and the same kernel contract obligations) as the
/// default-stream interface.
#[derive(Clone, Copy)]
pub struct Stream<'a> {
    device: &'a Device,
    id: usize,
}

impl<'a> Stream<'a> {
    /// The stream id this handle charges on.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Charge one kernel launch described by `cost` on this stream.
    pub fn charge_kernel(&self, name: &'static str, phase: Phase, cost: &KernelCost) {
        self.device.charge_kernel_on(name, phase, cost, self.id);
    }

    /// Charge a raw duration on this stream (engine work — transfers and
    /// collectives — which never contends for compute slots).
    pub fn charge_ns(&self, name: &'static str, phase: Phase, ns: f64) {
        self.device.charge_ns_on(name, phase, ns, self.id);
    }

    /// Fence the work issued to this stream so far.
    pub fn record_event(&self) -> Event {
        self.device.record_event(self.id)
    }

    /// Make subsequent work on this stream start no earlier than `event`.
    pub fn wait_event(&self, event: Event) {
        self.device.wait_event(self.id, event);
    }

    /// Completion clock of this stream, nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.device.stream_now(self.id)
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("id", &self.id)
            .field("name", &self.props.name)
            .field("total_ns", &self.ledger.lock().total_ns())
            .finish()
    }
}

impl Device {
    /// Default number of detailed kernel records retained per device.
    pub const DEFAULT_RECORD_LIMIT: usize = 100_000;

    /// Create device `id` with the given properties.
    pub fn new(id: usize, props: DeviceProps) -> Arc<Self> {
        let model = CostModel::new(props.cost.clone());
        let slots = Self::derive_compute_slots();
        Arc::new(Device {
            id,
            props,
            model,
            ledger: Mutex::new(Ledger::with_slots(Self::DEFAULT_RECORD_LIMIT, slots)),
            sanitizer: Mutex::new(None),
            profiler: Mutex::new(None),
            fault: Mutex::new(None),
            telemetry: Mutex::new(None),
        })
    }

    /// Concurrent-kernel slots from the occupancy model: blocks per SM
    /// at the canonical histogram launch shape (256 threads, 16 KiB of
    /// shared memory, 32 registers per thread). A launch-bound kernel
    /// occupies one slot; a kernel the cost model says saturates the
    /// SMs takes all of them and serializes with co-resident compute.
    fn derive_compute_slots() -> u32 {
        let shape = BlockResources {
            threads: 256,
            smem_bytes: 16 * 1024,
            regs_per_thread: 32,
        };
        occupancy(shape, &SmLimits::default()).blocks_per_sm.max(1)
    }

    /// Shortcut: a single RTX 4090-like device.
    pub fn rtx4090() -> Arc<Self> {
        Self::new(0, DeviceProps::rtx4090())
    }

    /// Device properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// The cost model (for primitives and for the adaptive histogram
    /// selector, which predicts kernel costs before launching).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Charge one kernel launch described by `cost` on the default stream.
    pub fn charge_kernel(&self, name: &'static str, phase: Phase, cost: &KernelCost) {
        self.charge_kernel_on(name, phase, cost, 0);
    }

    /// Charge one kernel launch described by `cost` on `stream`.
    ///
    /// The kernel occupies one compute slot, or every slot when the
    /// cost model says it saturates the SMs — co-resident kernels on
    /// other streams then serialize exactly as real hardware would.
    pub fn charge_kernel_on(
        &self,
        name: &'static str,
        phase: Phase,
        cost: &KernelCost,
        stream: usize,
    ) {
        if let Some(inj) = self.fault.lock().clone() {
            if !inj.on_charge(self.id, name) {
                // Device lost: nothing executes on a fallen device.
                return;
            }
        }
        let ns = self.model.kernel_ns(cost);
        let slots = if self.model.saturates_device(cost) {
            self.ledger.lock().compute_slots()
        } else {
            1
        };
        let start_ns = self
            .ledger
            .lock()
            .charge_scheduled(stream, name, phase, ns, slots);
        if let Some(prof) = self.profiler.lock().clone() {
            // Observer only: the ledger charge above is complete and the
            // profiler never feeds anything back into it.
            let limited = self.model.serialization_limited(cost);
            prof.on_kernel(name, phase, ns, start_ns, cost.dram_bytes, limited, stream);
        }
        if let Some(tel) = self.telemetry.lock().clone() {
            // Same observer contract as the profiler above.
            tel.record_charge(self.id, name, phase.name(), ns, start_ns, stream);
        }
    }

    /// Charge a raw duration on the default stream (used by collectives
    /// and transfers whose time is computed outside the kernel model).
    pub fn charge_ns(&self, name: &'static str, phase: Phase, ns: f64) {
        self.charge_ns_on(name, phase, ns, 0);
    }

    /// Charge a raw duration on `stream`. Engine work: consumes no
    /// compute slots, so it overlaps freely with kernels on other
    /// streams (copy and collective engines do not contend for SMs).
    pub fn charge_ns_on(&self, name: &'static str, phase: Phase, ns: f64, stream: usize) {
        if let Some(inj) = self.fault.lock().clone() {
            if !inj.on_charge(self.id, name) {
                return;
            }
        }
        let start_ns = self
            .ledger
            .lock()
            .charge_scheduled(stream, name, phase, ns, 0);
        if let Some(prof) = self.profiler.lock().clone() {
            prof.on_kernel(name, phase, ns, start_ns, 0.0, false, stream);
        }
        if let Some(tel) = self.telemetry.lock().clone() {
            tel.record_charge(self.id, name, phase.name(), ns, start_ns, stream);
        }
    }

    /// A charge handle bound to `stream`. Stream 0 is the default
    /// stream; other ids are created lazily, born idle at t = 0 —
    /// fence a fresh stream ([`Stream::wait_event`]) before its first
    /// charge when the work logically depends on anything.
    pub fn stream(&self, id: usize) -> Stream<'_> {
        Stream { device: self, id }
    }

    /// Fence the work issued to `stream` so far.
    pub fn record_event(&self, stream: usize) -> Event {
        self.ledger.lock().record_event(stream)
    }

    /// Make subsequent work on `stream` start no earlier than `event`.
    /// Events are plain timestamps, so fences recorded on *another*
    /// device compose here too (cross-device collective edges).
    pub fn wait_event(&self, stream: usize, event: Event) {
        self.ledger.lock().wait_event(stream, event);
    }

    /// Device-wide synchronization (`cudaDeviceSynchronize`): every
    /// stream clock joins the makespan. Books no idle time, and is a
    /// no-op when only the default stream has been used.
    pub fn sync(&self) {
        self.ledger.lock().sync_streams();
    }

    /// Completion clock of `stream`, nanoseconds (0 if never touched).
    pub fn stream_now(&self, stream: usize) -> f64 {
        self.ledger.lock().stream_now(stream)
    }

    /// Concurrent-kernel slots available to co-resident compute.
    pub fn compute_slots(&self) -> u32 {
        self.ledger.lock().compute_slots()
    }

    /// Current simulated time, nanoseconds: the timeline makespan (max
    /// over stream clocks and barrier targets).
    pub fn now_ns(&self) -> f64 {
        self.ledger.lock().total_ns()
    }

    /// Raise the device clock to `target_ns`, booking idle time.
    pub fn advance_to(&self, target_ns: f64) {
        let gap = {
            let mut ledger = self.ledger.lock();
            let gap = target_ns - ledger.total_ns();
            ledger.advance_to(target_ns);
            gap
        };
        // Mirror the ledger's idle booking (same gap, same order) so
        // the telemetry `Idle` phase reconciles bitwise.
        if gap > 0.0 {
            if let Some(tel) = self.telemetry.lock().clone() {
                tel.record_idle(gap);
            }
        }
    }

    /// Snapshot of the ledger.
    pub fn summary(&self) -> LedgerSummary {
        self.ledger.lock().summary()
    }

    /// Clone of the retained detailed kernel records (up to
    /// [`Device::DEFAULT_RECORD_LIMIT`]). Used by the determinism audit
    /// to diff replayed cost streams.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.ledger.lock().records().to_vec()
    }

    // ---- sanitizer ---------------------------------------------------------

    /// Attach a sanitizer in the given mode. Replaces any previous
    /// sanitizer (its accumulated state is dropped). Passing
    /// [`SanitizeMode::Off`] is equivalent to [`Device::disable_sanitizer`].
    pub fn enable_sanitizer(&self, mode: SanitizeMode) {
        let mut slot = self.sanitizer.lock();
        if mode.enabled() {
            *slot = Some(Arc::new(Sanitizer::new(mode, self.props.cost.warp_size)));
        } else {
            *slot = None;
        }
    }

    /// Detach the sanitizer; subsequent kernels run unchecked (and
    /// unrecorded). Accumulated state is dropped.
    pub fn disable_sanitizer(&self) {
        *self.sanitizer.lock() = None;
    }

    /// The attached sanitizer, if any. Kernels call this once per launch;
    /// `None` (the default) must keep the hot path free of recording
    /// overhead.
    pub fn sanitizer(&self) -> Option<Arc<Sanitizer>> {
        self.sanitizer.lock().clone()
    }

    /// Snapshot the sanitizer's accumulated report, or `None` when no
    /// sanitizer is attached.
    pub fn sanitize_report(&self) -> Option<SanitizeReport> {
        self.sanitizer.lock().as_ref().map(|s| s.report())
    }

    // ---- profiler ----------------------------------------------------------

    /// Attach a fresh profiler (replacing any previous one, whose state
    /// is dropped). Purely observational: attached or not, trees and
    /// charged nanoseconds are bit-identical (regression-tested in
    /// `crates/core/tests/profiling.rs`).
    pub fn enable_profiler(&self) {
        *self.profiler.lock() = Some(Arc::new(Profiler::default()));
    }

    /// Detach the profiler; accumulated state is dropped.
    pub fn disable_profiler(&self) {
        *self.profiler.lock() = None;
    }

    /// The attached profiler, if any. `None` (the default) keeps the
    /// charge hot path free of recording overhead.
    pub fn profiler(&self) -> Option<Arc<Profiler>> {
        self.profiler.lock().clone()
    }

    /// Open a hierarchical profiling scope (`kind` is the aggregation
    /// key, `index` labels this instance in the trace). No-op guard
    /// when no profiler is attached.
    pub fn prof_scope(&self, kind: &'static str, index: Option<u64>) -> ProfScope<'_> {
        ProfScope::open(self, kind, index)
    }

    /// Snapshot the schema-versioned profile summary, or `None` when no
    /// profiler is attached.
    pub fn profile_summary(&self) -> Option<ProfileSummary> {
        self.profiler
            .lock()
            .as_ref()
            .map(|p| p.summarize(&self.props.name, &self.ledger.lock().summary()))
    }

    /// Export the Chrome `chrome://tracing` JSON for this device, or
    /// `None` when no profiler is attached.
    pub fn chrome_trace(&self) -> Option<String> {
        self.profiler
            .lock()
            .as_ref()
            .map(|p| p.chrome_trace(self.id))
    }

    // ---- telemetry ---------------------------------------------------------

    /// Attach a fresh telemetry registry (replacing any previous one,
    /// whose state is dropped) and return it. Purely observational,
    /// like the sanitizer and profiler: attached or not, trees, clocks,
    /// and charge records are bit-identical (regression-tested in
    /// `crates/core/tests/telemetry.rs`).
    pub fn enable_telemetry(&self) -> Arc<Telemetry> {
        let tel = Arc::new(Telemetry::new());
        *self.telemetry.lock() = Some(Arc::clone(&tel));
        tel
    }

    /// Attach an existing registry — several devices (a multi-GPU
    /// group) can share one, interleaving their flight-recorder events
    /// by recording order.
    pub fn attach_telemetry(&self, tel: Arc<Telemetry>) {
        *self.telemetry.lock() = Some(tel);
    }

    /// Detach telemetry; accumulated state lives on in any clones of
    /// the returned `Arc`, but this device stops recording.
    pub fn disable_telemetry(&self) {
        *self.telemetry.lock() = None;
    }

    /// The attached telemetry registry, if any. `None` (the default)
    /// keeps the charge hot path free of recording overhead.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.lock().clone()
    }

    // ---- fault injection ---------------------------------------------------

    /// Attach a fault injector over `plan` (replacing any previous one,
    /// whose state is dropped). With an empty plan — or no injector at
    /// all — charges, trees, and nanoseconds are bit-identical to an
    /// uninstrumented device (regression-tested in
    /// `crates/core/tests/chaos.rs`).
    pub fn enable_faults(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(Arc::new(FaultInjector::new(plan)));
    }

    /// Detach the fault injector; accumulated state (including a sticky
    /// device loss) is dropped.
    pub fn disable_faults(&self) {
        *self.fault.lock() = None;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.lock().clone()
    }

    /// Surface the oldest unreported fault — the simulator's
    /// `cudaGetLastError` at a sync point. `Ok(())` when no injector is
    /// attached or nothing fired; transient faults are cleared by the
    /// poll, device loss is sticky.
    pub fn poll_fault(&self) -> Result<(), GpuFault> {
        let res = match self.fault.lock().clone() {
            Some(inj) => inj.poll(),
            None => Ok(()),
        };
        if let Err(ref fault) = res {
            // Observer only: the poll result is already decided; the
            // flight recorder just remembers what surfaced.
            if let Some(tel) = self.telemetry.lock().clone() {
                tel.record_fault(self.id, &fault.to_string());
            }
        }
        res
    }

    /// Whether this device has been lost to a planned [`GpuFault`].
    pub fn is_lost(&self) -> bool {
        self.fault
            .lock()
            .as_ref()
            .map(|inj| inj.is_lost())
            .unwrap_or(false)
    }

    /// Snapshot the fault-injection counters, or `None` when no
    /// injector is attached.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.fault.lock().as_ref().map(|inj| inj.report())
    }

    /// Apply any armed bit flips targeting the buffer labelled `label`.
    /// Silent (no charge, no poll): ECC-style corruption is only
    /// detectable by re-running [`crate::fault::buffer_checksum`].
    pub fn apply_planned_corruption<T: Bits32 + Send + Sync>(
        &self,
        label: &str,
        buf: &mut GpuBuffer<T>,
    ) {
        let Some(inj) = self.fault.lock().clone() else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        for (elem, bit) in inj.take_flips_for(label) {
            let idx = (elem % buf.len() as u64) as usize;
            let bits = buf.as_slice()[idx].to_bits32() ^ (1u32 << (bit % 32));
            // lint:allow(raw_buffer_mut): injected ECC corruption must bypass the checked mutation paths it exists to test
            buf.as_mut_slice()[idx] = T::from_bits32(bits);
        }
    }

    /// Reset the ledger to zero (e.g. between benchmark repetitions).
    pub fn reset(&self) {
        self.ledger.lock().reset();
    }

    // ---- memory management -------------------------------------------------

    /// Allocate a zero-initialized device buffer of `len` elements.
    /// Charges the memset's DRAM write traffic.
    pub fn alloc_zeroed<T: Copy + Default + Send + Sync>(&self, len: usize) -> GpuBuffer<T> {
        let bytes = (len * std::mem::size_of::<T>()) as f64;
        // lint:allow(prof_coverage): allocation-time zero-fill can happen before any profiler scope exists
        // lint:allow(sanitize): zero-fill of a freshly allocated buffer has no cross-kernel access stream to replay
        self.charge_kernel("memset", Phase::Other, &KernelCost::streaming(0.0, bytes));
        GpuBuffer::from_vec(self.id, vec![T::default(); len])
    }

    /// Copy host data to a new device buffer (`cudaMemcpyHostToDevice`).
    pub fn htod<T: Copy + Send + Sync>(&self, host: &[T]) -> GpuBuffer<T> {
        self.htod_on(host, 0)
    }

    /// Copy host data to a new device buffer on `stream` (an async H2D
    /// issued to a copy stream, `cudaMemcpyAsync`). The returned buffer
    /// is functionally complete immediately; consumers on other streams
    /// must wait a fence recorded after this call before charging work
    /// that reads it.
    pub fn htod_on<T: Copy + Send + Sync>(&self, host: &[T], stream: usize) -> GpuBuffer<T> {
        let bytes = std::mem::size_of_val(host) as f64;
        self.charge_ns_on(
            "htod",
            Phase::Transfer,
            self.model.host_copy_ns(bytes),
            stream,
        );
        GpuBuffer::from_vec(self.id, host.to_vec())
    }

    /// Copy a device buffer back to the host (`cudaMemcpyDeviceToHost`).
    pub fn dtoh<T: Copy + Send + Sync>(&self, buf: &GpuBuffer<T>) -> Vec<T> {
        assert_eq!(
            buf.device_id(),
            self.id,
            "dtoh from buffer on device {} via device {}",
            buf.device_id(),
            self.id
        );
        let bytes = (buf.len() * std::mem::size_of::<T>()) as f64;
        self.charge_ns("dtoh", Phase::Transfer, self.model.host_copy_ns(bytes));
        buf.as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_charges_accumulate() {
        let dev = Device::rtx4090();
        assert_eq!(dev.now_ns(), 0.0);
        dev.charge_kernel("k1", Phase::Gradient, &KernelCost::streaming(1e9, 1e8));
        let t1 = dev.now_ns();
        assert!(t1 > 0.0);
        dev.charge_kernel("k2", Phase::Histogram, &KernelCost::streaming(1e9, 1e8));
        assert!(dev.now_ns() > t1);
        let s = dev.summary();
        assert!(s.by_phase.contains_key(&Phase::Gradient));
        assert!(s.by_phase.contains_key(&Phase::Histogram));
    }

    #[test]
    fn htod_dtoh_roundtrip_charges_transfer() {
        let dev = Device::rtx4090();
        let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let buf = dev.htod(&data);
        assert_eq!(buf.len(), 1024);
        let back = dev.dtoh(&buf);
        assert_eq!(back, data);
        let s = dev.summary();
        assert!(s.phase_ns(Phase::Transfer) > 0.0);
    }

    #[test]
    fn alloc_zeroed_returns_defaults_and_charges_memset() {
        let dev = Device::rtx4090();
        let buf = dev.alloc_zeroed::<f64>(100);
        assert!(buf.as_slice().iter().all(|&x| x == 0.0));
        assert!(dev.summary().phase_ns(Phase::Other) > 0.0);
    }

    #[test]
    #[should_panic(expected = "dtoh from buffer on device")]
    fn dtoh_wrong_device_panics() {
        let a = Device::new(0, DeviceProps::rtx4090());
        let b = Device::new(1, DeviceProps::rtx4090());
        let buf = a.htod(&[1u32, 2, 3]);
        let _ = b.dtoh(&buf);
    }

    #[test]
    fn reset_zeroes_clock() {
        let dev = Device::rtx4090();
        dev.charge_ns("x", Phase::Other, 123.0);
        dev.reset();
        assert_eq!(dev.now_ns(), 0.0);
    }

    impl LedgerSummary {
        fn phase_ns(&self, phase: Phase) -> f64 {
            self.by_phase.get(&phase).copied().unwrap_or(0.0)
        }
    }
}
