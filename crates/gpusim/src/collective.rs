//! Multi-device groups and collective operations (the NCCL layer).
//!
//! The paper's multi-GPU mode (§3.4.2) partitions feature columns across
//! devices and aggregates summary statistics with "CUDA-aware collective
//! operations". [`DeviceGroup`] models a single-node group of devices
//! running in bulk-synchronous lockstep: collectives charge an α–β ring
//! cost to every participant, and [`DeviceGroup::barrier`] aligns device
//! clocks, booking the stragglers' wait as idle time.

use crate::device::{Device, DeviceProps, Phase};
use std::sync::Arc;

/// A group of simulated devices on one machine.
#[derive(Debug, Clone)]
pub struct DeviceGroup {
    devices: Vec<Arc<Device>>,
}

impl DeviceGroup {
    /// Create a group of `k` identical devices.
    pub fn homogeneous(k: usize, props: DeviceProps) -> Self {
        assert!(k > 0, "device group must not be empty");
        DeviceGroup {
            devices: (0..k).map(|i| Device::new(i, props.clone())).collect(),
        }
    }

    /// Create a group of `k` RTX 4090-like devices (the paper's testbed
    /// has 8).
    pub fn rtx4090s(k: usize) -> Self {
        Self::homogeneous(k, DeviceProps::rtx4090())
    }

    /// Wrap existing devices into a group.
    pub fn from_devices(devices: Vec<Arc<Device>>) -> Self {
        assert!(!devices.is_empty(), "device group must not be empty");
        DeviceGroup { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the group is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Access device `i`.
    pub fn device(&self, i: usize) -> &Arc<Device> {
        &self.devices[i]
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Simulated wall-clock of the group: the slowest device.
    pub fn now_ns(&self) -> f64 {
        self.devices.iter().map(|d| d.now_ns()).fold(0.0, f64::max)
    }

    /// Align all device clocks to the group maximum, booking idle time —
    /// the end of a bulk-synchronous step.
    pub fn barrier(&self) {
        let t = self.now_ns();
        for d in &self.devices {
            d.advance_to(t);
        }
    }

    /// Reset every device's ledger.
    pub fn reset(&self) {
        for d in &self.devices {
            d.reset();
        }
    }

    /// Ring all-reduce: elementwise sum of per-device vectors; every
    /// device receives the sum. Implies a barrier (collectives are
    /// synchronizing).
    pub fn all_reduce_sum_f64(&self, contributions: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(
            contributions.len(),
            self.devices.len(),
            "one contribution per device required"
        );
        let len = contributions[0].len();
        assert!(
            contributions.iter().all(|c| c.len() == len),
            "all contributions must have equal length"
        );
        let mut out = vec![0.0f64; len];
        for c in contributions {
            for (o, v) in out.iter_mut().zip(c) {
                *o += v;
            }
        }
        self.barrier();
        let ns = self.devices[0]
            .model()
            .ring_all_reduce_ns((len * 8) as f64, self.devices.len());
        for d in &self.devices {
            d.charge_ns("all_reduce", Phase::Comm, ns);
        }
        out
    }

    /// All-gather of raw byte payloads: every device receives the
    /// concatenation (in rank order). Returns the concatenated payload.
    pub fn all_gather_bytes(&self, contributions: &[Vec<u8>]) -> Vec<u8> {
        assert_eq!(
            contributions.len(),
            self.devices.len(),
            "one contribution per device required"
        );
        let max_part = contributions.iter().map(Vec::len).max().unwrap_or(0);
        let out: Vec<u8> = contributions.iter().flatten().copied().collect();
        self.barrier();
        let ns = self.devices[0]
            .model()
            .all_gather_ns(max_part as f64, self.devices.len());
        for d in &self.devices {
            d.charge_ns("all_gather", Phase::Comm, ns);
        }
        out
    }

    /// Broadcast `bytes` of payload from `root` to all devices; data
    /// movement is modeled only (callers share host-side state).
    pub fn broadcast(&self, root: usize, bytes: usize) {
        assert!(root < self.devices.len(), "broadcast root out of range");
        self.barrier();
        let ns = self.devices[0]
            .model()
            .broadcast_ns(bytes as f64, self.devices.len());
        for d in &self.devices {
            d.charge_ns("broadcast", Phase::Comm, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;

    #[test]
    fn all_reduce_sums_elementwise() {
        let g = DeviceGroup::rtx4090s(4);
        let contribs: Vec<Vec<f64>> = (0..4).map(|d| vec![d as f64; 8]).collect();
        let out = g.all_reduce_sum_f64(&contribs);
        assert_eq!(out, vec![6.0; 8]); // 0+1+2+3
        for d in g.devices() {
            assert!(d.summary().by_phase.contains_key(&Phase::Comm));
        }
    }

    #[test]
    fn single_device_all_reduce_is_free() {
        let g = DeviceGroup::rtx4090s(1);
        let out = g.all_reduce_sum_f64(&[vec![1.0, 2.0]]);
        assert_eq!(out, vec![1.0, 2.0]);
        assert_eq!(g.now_ns(), 0.0);
    }

    #[test]
    fn barrier_aligns_clocks_and_books_idle() {
        let g = DeviceGroup::rtx4090s(2);
        g.device(0)
            .charge_kernel("w", Phase::Histogram, &KernelCost::streaming(1e12, 1e9));
        assert!(g.device(0).now_ns() > g.device(1).now_ns());
        g.barrier();
        assert_eq!(g.device(0).now_ns(), g.device(1).now_ns());
        assert!(g.device(1).summary().by_phase.contains_key(&Phase::Idle));
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let g = DeviceGroup::rtx4090s(3);
        let parts = vec![vec![1u8], vec![2, 2], vec![3]];
        assert_eq!(g.all_gather_bytes(&parts), vec![1, 2, 2, 3]);
    }

    #[test]
    fn group_now_is_max_over_devices() {
        let g = DeviceGroup::rtx4090s(2);
        g.device(1).charge_ns("x", Phase::Other, 500.0);
        assert_eq!(g.now_ns(), 500.0);
    }

    #[test]
    #[should_panic(expected = "one contribution per device")]
    fn all_reduce_arity_checked() {
        let g = DeviceGroup::rtx4090s(2);
        let _ = g.all_reduce_sum_f64(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        let _ = DeviceGroup::from_devices(vec![]);
    }

    #[test]
    fn broadcast_charges_comm() {
        let g = DeviceGroup::rtx4090s(4);
        g.broadcast(0, 1 << 20);
        assert!(g.device(3).summary().by_phase.contains_key(&Phase::Comm));
    }
}
