//! Analytical cost model for simulated kernels.
//!
//! The model is roofline-shaped: a kernel's execution time is the maximum
//! of its compute time and its DRAM time, plus serialization terms that
//! cannot overlap (atomic replay, shared-memory bank conflicts) and a
//! fixed launch overhead. All throughput parameters live in
//! [`CostParams`]; the defaults approximate an NVIDIA RTX 4090, the
//! device used in the paper's evaluation.
//!
//! The purpose of the model is *shape fidelity*, not cycle accuracy: time
//! must be monotone in the quantities the paper's experiments vary
//! (instances, features, outputs, bins, atomic contention, coalescing
//! width, number of devices) with realistic relative magnitudes.

use serde::{Deserialize, Serialize};

/// Throughput and latency parameters of the modeled device.
///
/// Defaults approximate an RTX 4090 (Ada, AD102): 128 SMs × 128 FP32
/// lanes at ~2.5 GHz, ~1 TB/s GDDR6X, 48 KiB opt-in shared memory per
/// block with 32 banks, PCIe 4.0 x16 host link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 lanes per SM (throughput cores, not tensor cores).
    pub cores_per_sm: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Usable shared memory per thread block in bytes.
    pub smem_per_block: usize,
    /// Number of shared-memory banks (words are interleaved across them).
    pub smem_banks: u32,
    /// Sustained DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
    /// Minimum global-memory transaction (L2 sector) size in bytes.
    pub sector_bytes: u32,
    /// Aggregate global-memory atomic throughput in ops/second when
    /// accesses are spread across addresses (L2 atomic units).
    pub gmem_atomic_ops_per_sec: f64,
    /// Extra cost of one replayed (serialized) global atomic, seconds.
    pub gmem_atomic_replay_sec: f64,
    /// Aggregate shared-memory atomic throughput in ops/second across
    /// all SMs when accesses are conflict-free.
    pub smem_atomic_ops_per_sec: f64,
    /// Extra cost of one replayed shared-memory atomic, seconds.
    pub smem_atomic_replay_sec: f64,
    /// Fixed kernel launch overhead in seconds (driver + grid setup).
    pub launch_overhead_sec: f64,
    /// Radix sort throughput, 32-bit keys/second (CUB-class).
    pub sort_keys_per_sec: f64,
    /// Host link (PCIe) bandwidth in bytes/second for H2D/D2H copies.
    pub pcie_bw: f64,
    /// Peer-to-peer link bandwidth in bytes/second (4090 has no NVLink;
    /// P2P goes over PCIe).
    pub p2p_bw: f64,
    /// Per-message latency of a collective hop in seconds.
    pub p2p_latency_sec: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self::rtx4090()
    }
}

impl CostParams {
    /// Parameters approximating an NVIDIA RTX 4090.
    pub fn rtx4090() -> Self {
        CostParams {
            sm_count: 128,
            cores_per_sm: 128,
            clock_ghz: 2.52,
            warp_size: 32,
            smem_per_block: 48 * 1024,
            smem_banks: 32,
            dram_bw: 1.008e12,
            sector_bytes: 32,
            gmem_atomic_ops_per_sec: 1.5e11,
            gmem_atomic_replay_sec: 1.0e-10,
            smem_atomic_ops_per_sec: 6.0e11,
            smem_atomic_replay_sec: 1.0 / 6.4e10,
            launch_overhead_sec: 1.2e-6,
            sort_keys_per_sec: 3.0e9,
            pcie_bw: 2.5e10,
            p2p_bw: 2.2e10,
            p2p_latency_sec: 2.0e-6,
        }
    }

    /// Parameters approximating an NVIDIA RTX 3090 (used by the paper's
    /// sensitivity study, §4.3): 82 SMs, ~936 GB/s, 1.70 GHz boost.
    pub fn rtx3090() -> Self {
        CostParams {
            sm_count: 82,
            cores_per_sm: 128,
            clock_ghz: 1.70,
            dram_bw: 9.36e11,
            ..Self::rtx4090()
        }
    }

    /// Parameters approximating an NVIDIA A100-SXM4-80GB: 108 SMs at
    /// 1.41 GHz, ~1.95 TB/s HBM2e, NVLink peers.
    pub fn a100() -> Self {
        CostParams {
            sm_count: 108,
            cores_per_sm: 64,
            clock_ghz: 1.41,
            dram_bw: 1.95e12,
            p2p_bw: 2.4e11, // NVLink 3
            p2p_latency_sec: 1.0e-6,
            ..Self::rtx4090()
        }
    }

    /// Parameters approximating an NVIDIA H100-SXM5: 132 SMs at
    /// 1.98 GHz, ~3.35 TB/s HBM3, NVLink 4 peers.
    pub fn h100() -> Self {
        CostParams {
            sm_count: 132,
            cores_per_sm: 128,
            clock_ghz: 1.98,
            dram_bw: 3.35e12,
            gmem_atomic_ops_per_sec: 3.0e11,
            smem_atomic_ops_per_sec: 1.2e12,
            p2p_bw: 4.5e11, // NVLink 4
            p2p_latency_sec: 1.0e-6,
            ..Self::rtx4090()
        }
    }

    /// Total FP32 throughput in operations/second.
    pub fn flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9
    }
}

/// Work descriptor for one kernel launch, filled in by each primitive
/// from the *actual* work it performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelCost {
    /// Total arithmetic operations executed across all threads.
    pub flops: f64,
    /// Effective DRAM traffic in bytes *after* the coalescing model:
    /// number of distinct sectors touched × sector size, or plain bytes
    /// for streaming access.
    pub dram_bytes: f64,
    /// Global-memory atomic operations issued.
    pub gmem_atomics: f64,
    /// Extra replayed global atomics caused by intra-warp address
    /// collisions (excess over one op per distinct address per warp).
    pub gmem_atomic_replays: f64,
    /// Shared-memory atomic operations issued.
    pub smem_atomics: f64,
    /// Extra replayed shared-memory atomics caused by bank conflicts.
    pub smem_atomic_replays: f64,
    /// 32-bit keys processed by a radix sort inside this kernel.
    pub sort_keys: f64,
    /// Number of device-side kernel launches this logical operation
    /// corresponds to (e.g. a multi-pass radix sort is several).
    pub launches: f64,
}

impl KernelCost {
    /// A pure streaming kernel: `flops` arithmetic ops and `bytes` of
    /// perfectly coalesced DRAM traffic, one launch.
    pub fn streaming(flops: f64, bytes: f64) -> Self {
        KernelCost {
            flops,
            dram_bytes: bytes,
            launches: 1.0,
            ..Default::default()
        }
    }

    /// Merge two cost descriptors (summing all terms, including
    /// launches). Useful when a logical phase issues several kernels.
    pub fn merged(mut self, other: &KernelCost) -> Self {
        self.flops += other.flops;
        self.dram_bytes += other.dram_bytes;
        self.gmem_atomics += other.gmem_atomics;
        self.gmem_atomic_replays += other.gmem_atomic_replays;
        self.smem_atomics += other.smem_atomics;
        self.smem_atomic_replays += other.smem_atomic_replays;
        self.sort_keys += other.sort_keys;
        self.launches += other.launches;
        self
    }
}

/// The cost model: converts [`KernelCost`] descriptors to nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Device throughput/latency parameters.
    pub params: CostParams,
}

impl CostModel {
    /// Build a model over the given parameters.
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// Time for one kernel, in nanoseconds.
    ///
    /// `max(compute, dram)` captures overlap of arithmetic and memory;
    /// atomic and sort terms are serialized on dedicated units and are
    /// added on top together with per-launch overhead.
    pub fn kernel_ns(&self, c: &KernelCost) -> f64 {
        let p = &self.params;
        let compute = c.flops / p.flops();
        let dram = c.dram_bytes / p.dram_bw;
        let gmem_atomic = c.gmem_atomics / p.gmem_atomic_ops_per_sec
            + c.gmem_atomic_replays * p.gmem_atomic_replay_sec;
        let smem_atomic = c.smem_atomics / p.smem_atomic_ops_per_sec
            + c.smem_atomic_replays * p.smem_atomic_replay_sec;
        let sort = c.sort_keys / p.sort_keys_per_sec;
        let launches = c.launches.max(if c.flops > 0.0 || c.dram_bytes > 0.0 {
            1.0
        } else {
            0.0
        });
        let secs =
            compute.max(dram) + gmem_atomic + smem_atomic + sort + launches * p.launch_overhead_sec;
        secs * 1e9
    }

    /// True when a launch's serialized terms (atomics, replays, sort,
    /// launch overhead) exceed its overlapped streaming time
    /// `max(compute, dram)` — i.e. the kernel is limited by
    /// serialization/occupancy rather than raw throughput. Used for the
    /// profiler's occupancy-limited flag; deliberately *not* shared
    /// with [`CostModel::kernel_ns`] so the charged time's float
    /// summation order stays untouched.
    pub fn serialization_limited(&self, c: &KernelCost) -> bool {
        let p = &self.params;
        let streaming = (c.flops / p.flops()).max(c.dram_bytes / p.dram_bw);
        let serialized = c.gmem_atomics / p.gmem_atomic_ops_per_sec
            + c.gmem_atomic_replays * p.gmem_atomic_replay_sec
            + c.smem_atomics / p.smem_atomic_ops_per_sec
            + c.smem_atomic_replays * p.smem_atomic_replay_sec
            + c.sort_keys / p.sort_keys_per_sec
            + c.launches * p.launch_overhead_sec;
        serialized > streaming
    }

    /// True when a launch's streaming work `max(compute, dram)` exceeds
    /// one kernel-launch overhead — i.e. the grid is large enough to
    /// fill the SMs for longer than it takes to launch it. The stream
    /// scheduler uses this to size a kernel's compute-slot footprint:
    /// a saturating kernel takes every slot (co-resident compute
    /// serializes behind it, as on real hardware), while a small
    /// launch-bound kernel takes one slot and overlaps with siblings.
    /// Deliberately *not* shared with [`CostModel::kernel_ns`] so the
    /// charged time's float summation order stays untouched.
    pub fn saturates_device(&self, c: &KernelCost) -> bool {
        let p = &self.params;
        let streaming = (c.flops / p.flops()).max(c.dram_bytes / p.dram_bw);
        streaming > p.launch_overhead_sec
    }

    /// Time to move `bytes` across the host link (H2D or D2H), ns.
    pub fn host_copy_ns(&self, bytes: f64) -> f64 {
        (bytes / self.params.pcie_bw + self.params.p2p_latency_sec) * 1e9
    }

    /// Time for a ring all-reduce of `bytes` per device over `k`
    /// devices, ns. Standard α–β model: `2(k−1)/k · bytes / bw` plus
    /// `2(k−1)` hop latencies.
    pub fn ring_all_reduce_ns(&self, bytes: f64, k: usize) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let kf = k as f64;
        let transfer = 2.0 * (kf - 1.0) / kf * bytes / self.params.p2p_bw;
        let latency = 2.0 * (kf - 1.0) * self.params.p2p_latency_sec;
        (transfer + latency) * 1e9
    }

    /// Time for an all-gather where each of `k` devices contributes
    /// `bytes_per_rank`, ns.
    pub fn all_gather_ns(&self, bytes_per_rank: f64, k: usize) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let kf = k as f64;
        let transfer = (kf - 1.0) * bytes_per_rank / self.params.p2p_bw;
        let latency = (kf - 1.0) * self.params.p2p_latency_sec;
        (transfer + latency) * 1e9
    }

    /// Time to broadcast `bytes` from one device to the other `k-1`, ns.
    pub fn broadcast_ns(&self, bytes: f64, k: usize) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        // Tree broadcast: ceil(log2 k) hops of the full payload.
        let hops = (k as f64).log2().ceil();
        (hops * (bytes / self.params.p2p_bw + self.params.p2p_latency_sec)) * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(CostParams::rtx4090())
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound_for_low_flops() {
        let m = model();
        let bytes = 1e9; // 1 GB
        let t = m.kernel_ns(&KernelCost::streaming(1e6, bytes));
        // ~1 GB over ~1 TB/s ≈ 1 ms, plus the launch overhead.
        let expected = bytes / m.params.dram_bw * 1e9 + m.params.launch_overhead_sec * 1e9;
        assert!(
            (t - expected).abs() / expected < 1e-9,
            "t={t} expected={expected}"
        );
    }

    #[test]
    fn compute_bound_kernel_scales_with_flops() {
        let m = model();
        let t1 = m.kernel_ns(&KernelCost::streaming(1e12, 1.0));
        let t2 = m.kernel_ns(&KernelCost::streaming(2e12, 1.0));
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
    }

    #[test]
    fn atomic_replays_add_serialized_time() {
        let m = model();
        let base = KernelCost {
            gmem_atomics: 1e6,
            launches: 1.0,
            ..Default::default()
        };
        let contended = KernelCost {
            gmem_atomic_replays: 1e6,
            ..base
        };
        assert!(m.kernel_ns(&contended) > m.kernel_ns(&base));
    }

    #[test]
    fn saturation_classification_follows_streaming_vs_launch_overhead() {
        let m = model();
        // A tiny kernel streams for far less than one launch overhead:
        // it leaves SMs free for co-resident work.
        assert!(!m.saturates_device(&KernelCost::streaming(1e3, 1e3)));
        // A 1 GB streaming kernel occupies the SMs for ~1 ms ≫ 1.2 µs.
        assert!(m.saturates_device(&KernelCost::streaming(0.0, 1e9)));
    }

    #[test]
    fn smem_atomics_cheaper_than_gmem_atomics() {
        let m = model();
        let g = KernelCost {
            gmem_atomics: 1e8,
            launches: 1.0,
            ..Default::default()
        };
        let s = KernelCost {
            smem_atomics: 1e8,
            launches: 1.0,
            ..Default::default()
        };
        assert!(m.kernel_ns(&s) < m.kernel_ns(&g));
    }

    #[test]
    fn ring_all_reduce_grows_sublinearly_with_devices() {
        let m = model();
        let t2 = m.ring_all_reduce_ns(1e8, 2);
        let t8 = m.ring_all_reduce_ns(1e8, 8);
        assert!(t8 > t2);
        // 2(k-1)/k factor approaches 2: t8/t2 ≈ (2·7/8)/(2·1/2) = 1.75 on
        // the bandwidth term.
        assert!(t8 < t2 * 2.5);
        assert_eq!(m.ring_all_reduce_ns(1e8, 1), 0.0);
    }

    #[test]
    fn merged_sums_terms() {
        let a = KernelCost::streaming(10.0, 20.0);
        let b = KernelCost {
            gmem_atomics: 5.0,
            sort_keys: 7.0,
            launches: 2.0,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.flops, 10.0);
        assert_eq!(m.dram_bytes, 20.0);
        assert_eq!(m.gmem_atomics, 5.0);
        assert_eq!(m.sort_keys, 7.0);
        assert_eq!(m.launches, 3.0);
    }

    #[test]
    fn rtx3090_is_slower_than_rtx4090() {
        let a = CostModel::new(CostParams::rtx4090());
        let b = CostModel::new(CostParams::rtx3090());
        let c = KernelCost::streaming(1e12, 1e9);
        assert!(b.kernel_ns(&c) > a.kernel_ns(&c));
    }

    #[test]
    fn device_generations_order_on_memory_bound_work() {
        // A memory-bound kernel: 3090 > 4090 > A100 > H100.
        let c = KernelCost::streaming(1e9, 5e9);
        let times: Vec<f64> = [
            CostParams::rtx3090(),
            CostParams::rtx4090(),
            CostParams::a100(),
            CostParams::h100(),
        ]
        .into_iter()
        .map(|p| CostModel::new(p).kernel_ns(&c))
        .collect();
        assert!(
            times.windows(2).all(|w| w[0] > w[1]),
            "expected strictly improving generations: {times:?}"
        );
    }

    #[test]
    fn nvlink_collectives_beat_pcie() {
        let pcie = CostModel::new(CostParams::rtx4090());
        let nvlink = CostModel::new(CostParams::a100());
        assert!(nvlink.ring_all_reduce_ns(1e8, 4) < pcie.ring_all_reduce_ns(1e8, 4));
    }

    #[test]
    fn broadcast_and_all_gather_zero_for_single_device() {
        let m = model();
        assert_eq!(m.broadcast_ns(1e6, 1), 0.0);
        assert_eq!(m.all_gather_ns(1e6, 1), 0.0);
        assert!(m.broadcast_ns(1e6, 4) > 0.0);
        assert!(m.all_gather_ns(1e6, 4) > 0.0);
    }
}
