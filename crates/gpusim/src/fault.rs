//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultInjector`] attaches to a [`Device`] exactly like the
//! sanitizer and profiler (`Device::enable_faults`). It consumes a
//! [`FaultPlan`] — a seed-derived or hand-built list of fault events
//! keyed by the device's global charge index — and perturbs the device
//! in three CUDA-realistic ways:
//!
//! * **Transient kernel fault** — the launch is *booked* (its cost is
//!   paid, mirroring a grid that ran and trapped), and the error
//!   surfaces at the next [`Device::poll_fault`] call, the analogue of
//!   `cudaGetLastError` after a sync point. Retryable.
//! * **Device loss** — the causing charge is booked, then the device
//!   goes sticky-lost: every later charge is dropped (nothing executes
//!   on a fallen device) and `poll_fault` keeps returning
//!   [`GpuFault::DeviceLost`]. Permanent.
//! * **Bit flip** — ECC-style silent corruption of a *named* buffer.
//!   Never surfaced by `poll_fault`; it is only detectable by
//!   comparing [`buffer_checksum`] values before and after.
//!
//! Everything is deterministic: the same plan against the same charge
//! stream injects the same faults, which is what lets the chaos suite
//! assert bit-identical recovery.

use crate::buffer::GpuBuffer;
use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use crate::sanitize::{AccessKind, MemSpace, ThreadCtx};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One planned fault, keyed by the device-global charge index at which
/// it triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Global charge index (0-based, counting every `charge_kernel` /
    /// `charge_ns` on the device) at which this fault fires. Bit flips
    /// *arm* at this index and apply at the next matching
    /// [`Device::apply_planned_corruption`] call.
    pub at_charge: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// The taxonomy of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A retryable kernel fault: the charge is booked, the error is
    /// reported at the next [`Device::poll_fault`].
    Transient,
    /// Permanent device loss: the causing charge is booked, all later
    /// charges are dropped, `poll_fault` is forever `Err`.
    DeviceLost,
    /// Flip `bit` (mod 32) of element `elem` (mod buffer length) in
    /// the buffer labelled `buffer`. Silent — detection is via
    /// [`buffer_checksum`] mismatch, never via `poll_fault`.
    BitFlip {
        /// Label of the target buffer, as passed to
        /// [`Device::apply_planned_corruption`].
        buffer: String,
        /// Element index (taken modulo the buffer length).
        elem: u64,
        /// Bit position (taken modulo 32).
        bit: u8,
    },
}

/// A deterministic list of fault events, either hand-built or derived
/// from a seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64 step — the plan generator's only PRNG (no external
/// dependency, stable across platforms).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The planned events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add a transient kernel fault at charge index `at_charge`.
    pub fn transient_at(mut self, at_charge: u64) -> Self {
        self.events.push(FaultEvent {
            at_charge,
            kind: FaultKind::Transient,
        });
        self
    }

    /// Add a permanent device loss at charge index `at_charge`.
    pub fn device_lost_at(mut self, at_charge: u64) -> Self {
        self.events.push(FaultEvent {
            at_charge,
            kind: FaultKind::DeviceLost,
        });
        self
    }

    /// Arm an ECC-style bit flip against the buffer labelled `buffer`
    /// from charge index `at_charge` onward.
    pub fn bit_flip(mut self, at_charge: u64, buffer: &str, elem: u64, bit: u8) -> Self {
        self.events.push(FaultEvent {
            at_charge,
            kind: FaultKind::BitFlip {
                buffer: buffer.to_string(),
                elem,
                bit,
            },
        });
        self
    }

    /// Derive a plan from `seed`: 0–3 events at charge indices below
    /// `horizon`, weighted 3:1 transient vs device loss. Seeds map to
    /// plans deterministically, so a failing chaos seed replays exactly.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut s = seed ^ 0x5EED_FA17_5EED_FA17;
        // Warm the state so small consecutive seeds decorrelate.
        let _ = splitmix64(&mut s);
        let mut plan = FaultPlan::new();
        let n_events = (splitmix64(&mut s) % 4) as usize;
        let horizon = horizon.max(1);
        for _ in 0..n_events {
            let at = splitmix64(&mut s) % horizon;
            plan = if splitmix64(&mut s) % 4 < 3 {
                plan.transient_at(at)
            } else {
                plan.device_lost_at(at)
            };
        }
        plan
    }
}

/// A typed fault surfaced by [`Device::poll_fault`] — the simulator's
/// `cudaError_t`. Never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuFault {
    /// A transient kernel fault; the failed work may be retried.
    Transient {
        /// Device the fault fired on.
        device: usize,
        /// Name of the charged kernel that faulted.
        kernel: String,
        /// Global charge index of the faulting launch.
        charge_index: u64,
    },
    /// The device is permanently gone.
    DeviceLost {
        /// Device that was lost.
        device: usize,
        /// Name of the last kernel charged before the loss.
        kernel: String,
        /// Global charge index of the fatal launch.
        charge_index: u64,
    },
}

impl GpuFault {
    /// The device index the fault fired on.
    pub fn device(&self) -> usize {
        match self {
            GpuFault::Transient { device, .. } | GpuFault::DeviceLost { device, .. } => *device,
        }
    }

    /// True for retryable (transient) faults.
    pub fn is_transient(&self) -> bool {
        matches!(self, GpuFault::Transient { .. })
    }
}

impl std::fmt::Display for GpuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuFault::Transient {
                device,
                kernel,
                charge_index,
            } => write!(
                f,
                "transient kernel fault on device {device}: `{kernel}` (charge #{charge_index})"
            ),
            GpuFault::DeviceLost {
                device,
                kernel,
                charge_index,
            } => write!(
                f,
                "device {device} lost at `{kernel}` (charge #{charge_index})"
            ),
        }
    }
}

impl std::error::Error for GpuFault {}

/// Counters summarizing what an injector actually did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Charges observed (booked + dropped).
    pub charges_seen: u64,
    /// Transient faults injected.
    pub transient_injected: u64,
    /// 1 if the device was lost.
    pub device_lost: u64,
    /// Bit flips planned.
    pub flips_planned: u64,
    /// Bit flips actually applied to a buffer.
    pub flips_applied: u64,
    /// Charges dropped because the device was already lost.
    pub charges_dropped_after_loss: u64,
}

struct InjectorState {
    /// Events not yet triggered, keyed by charge index.
    scheduled: Vec<FaultEvent>,
    /// First un-polled transient fault.
    pending: Option<GpuFault>,
    /// Sticky loss, once triggered.
    lost: Option<GpuFault>,
    /// Armed but not yet applied bit flips.
    armed_flips: Vec<(String, u64, u8)>,
    report: FaultReport,
}

/// Seed-driven fault injector, attached to a [`Device`] via
/// [`Device::enable_faults`]. Thread-safe like the ledger: concurrent
/// charges serialize on an internal lock, and the in-order-stream
/// abstraction makes the global charge index well-defined.
pub struct FaultInjector {
    charge_counter: AtomicU64,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Build an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let flips_planned = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::BitFlip { .. }))
            .count() as u64;
        FaultInjector {
            charge_counter: AtomicU64::new(0),
            state: Mutex::new(InjectorState {
                scheduled: plan.events,
                pending: None,
                lost: None,
                armed_flips: Vec::new(),
                report: FaultReport {
                    flips_planned,
                    ..FaultReport::default()
                },
            }),
        }
    }

    /// Consult the injector for one charge. Returns `true` when the
    /// charge should be booked, `false` when it must be dropped (the
    /// device is already lost). Called by the `Device` charge paths.
    pub(crate) fn on_charge(&self, device: usize, kernel: &'static str) -> bool {
        let mut st = self.state.lock();
        st.report.charges_seen += 1;
        if st.lost.is_some() {
            st.report.charges_dropped_after_loss += 1;
            return false;
        }
        let idx = self.charge_counter.fetch_add(1, Ordering::SeqCst);
        // Drain every event scheduled at this index, in plan order.
        let mut i = 0;
        while i < st.scheduled.len() {
            if st.scheduled[i].at_charge != idx {
                i += 1;
                continue;
            }
            let ev = st.scheduled.remove(i);
            match ev.kind {
                FaultKind::Transient => {
                    st.report.transient_injected += 1;
                    if st.pending.is_none() {
                        st.pending = Some(GpuFault::Transient {
                            device,
                            kernel: kernel.to_string(),
                            charge_index: idx,
                        });
                    }
                }
                FaultKind::DeviceLost => {
                    st.report.device_lost = 1;
                    st.lost = Some(GpuFault::DeviceLost {
                        device,
                        kernel: kernel.to_string(),
                        charge_index: idx,
                    });
                }
                FaultKind::BitFlip { buffer, elem, bit } => {
                    st.armed_flips.push((buffer, elem, bit));
                }
            }
        }
        // Also arm any flip scheduled at an index the stream already
        // passed (e.g. a plan built after warm-up charges).
        let mut j = 0;
        while j < st.scheduled.len() {
            if st.scheduled[j].at_charge <= idx
                && matches!(st.scheduled[j].kind, FaultKind::BitFlip { .. })
            {
                let ev = st.scheduled.remove(j);
                if let FaultKind::BitFlip { buffer, elem, bit } = ev.kind {
                    st.armed_flips.push((buffer, elem, bit));
                }
            } else {
                j += 1;
            }
        }
        // The causing charge of a loss is still booked; later ones drop.
        true
    }

    /// Surface the oldest unreported fault, clearing transient state —
    /// the `cudaGetLastError` analogue. Loss dominates and is sticky.
    pub fn poll(&self) -> Result<(), GpuFault> {
        let mut st = self.state.lock();
        if let Some(lost) = st.lost.clone() {
            st.pending = None;
            return Err(lost);
        }
        match st.pending.take() {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Whether the device this injector is attached to has been lost.
    pub fn is_lost(&self) -> bool {
        self.state.lock().lost.is_some()
    }

    /// Remove and return the armed flips matching `label`.
    pub(crate) fn take_flips_for(&self, label: &str) -> Vec<(u64, u8)> {
        let mut st = self.state.lock();
        let mut out = Vec::new();
        let mut i = 0;
        while i < st.armed_flips.len() {
            if st.armed_flips[i].0 == label {
                let (_, elem, bit) = st.armed_flips.remove(i);
                out.push((elem, bit));
            } else {
                i += 1;
            }
        }
        st.report.flips_applied += out.len() as u64;
        out
    }

    /// Snapshot the injection counters.
    pub fn report(&self) -> FaultReport {
        self.state.lock().report.clone()
    }
}

/// 4-byte element types whose bit pattern can be checksummed and
/// corrupted without `unsafe`. Every buffer in the serving SoA layout
/// (u32 features, i32 children, f32 values) is 32-bit.
pub trait Bits32: Copy {
    /// The element's raw 32-bit pattern.
    fn to_bits32(self) -> u32;
    /// Rebuild an element from a raw 32-bit pattern.
    fn from_bits32(bits: u32) -> Self;
}

impl Bits32 for u32 {
    fn to_bits32(self) -> u32 {
        self
    }
    fn from_bits32(bits: u32) -> Self {
        bits
    }
}

impl Bits32 for i32 {
    fn to_bits32(self) -> u32 {
        self as u32
    }
    fn from_bits32(bits: u32) -> Self {
        bits as i32
    }
}

impl Bits32 for f32 {
    fn to_bits32(self) -> u32 {
        self.to_bits()
    }
    fn from_bits32(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

/// FNV-1a 64-bit checksum over a device buffer, charged as a
/// streaming `buffer_checksum` kernel — the ECC scrubber analogue.
///
/// The checksum hashes each element's little-endian 32-bit pattern, so
/// it is bit-exact: any single flipped bit changes the digest.
pub fn buffer_checksum<T: Bits32 + Send + Sync>(
    device: &Device,
    label: &'static str,
    buf: &GpuBuffer<T>,
) -> u64 {
    buffer_checksum_on(device, label, buf, 0)
}

/// [`buffer_checksum`] issued on a specific stream, so scrubs of a
/// staged upload can overlap in-flight compute on other streams. The
/// digest is identical regardless of stream; only the charge's start
/// timestamp differs.
pub fn buffer_checksum_on<T: Bits32 + Send + Sync>(
    device: &Device,
    label: &'static str,
    buf: &GpuBuffer<T>,
    stream: usize,
) -> u64 {
    assert_eq!(
        buf.device_id(),
        device.id,
        "buffer_checksum of buffer on device {} via device {}",
        buf.device_id(),
        device.id
    );
    let _scope = device.prof_scope("buffer_checksum", None);
    let bytes = (buf.len() * std::mem::size_of::<T>()) as f64;
    device.stream(stream).charge_kernel(
        "buffer_checksum",
        Phase::Other,
        &KernelCost::streaming(buf.len() as f64, bytes),
    );
    if let Some(san) = device.sanitizer() {
        let scope = san.scope("buffer_checksum");
        let id = scope.register(label, buf.len(), MemSpace::Global, true);
        let stride = (buf.len() / 64).max(1);
        let mut e = 0;
        while e < buf.len() {
            scope.touch(id, ThreadCtx::from_global(e, 256), e, AccessKind::Read);
            e += stride;
        }
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for v in buf.as_slice() {
        for b in v.to_bits32().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..50 {
            assert_eq!(FaultPlan::seeded(seed, 100), FaultPlan::seeded(seed, 100));
        }
    }

    #[test]
    fn seeded_plans_cover_all_kinds() {
        let (mut transient, mut lost, mut empty) = (0, 0, 0);
        for seed in 0..200 {
            let plan = FaultPlan::seeded(seed, 100);
            if plan.events().is_empty() {
                empty += 1;
            }
            for ev in plan.events() {
                match ev.kind {
                    FaultKind::Transient => transient += 1,
                    FaultKind::DeviceLost => lost += 1,
                    FaultKind::BitFlip { .. } => {}
                }
            }
        }
        assert!(transient > 0 && lost > 0 && empty > 0);
    }

    #[test]
    fn fnv_checksum_detects_single_bit_flip() {
        let dev = Device::rtx4090();
        let mut buf = dev.htod(&[1.0f32, 2.0, 3.0, 4.0]);
        let before = buffer_checksum(&dev, "t", &buf);
        let bits = buf.as_slice()[2].to_bits() ^ (1 << 7);
        buf.as_mut_slice()[2] = f32::from_bits(bits);
        let after = buffer_checksum(&dev, "t", &buf);
        assert_ne!(before, after);
    }
}
