//! Determinism audit: run a kernel (or kernel sequence) twice on fresh
//! devices and diff both the functional output and the charged costs.
//!
//! Nondeterministic cost accounting is the simulator's analogue of a
//! nondeterministic kernel: if the same launch charges a different
//! `ns` on replay (e.g. a `HashMap`-iteration-order-dependent sampler or
//! an uninitialized cost input), the paper's simulated-time claims stop
//! being reproducible. [`audit_determinism`] catches both functional and
//! cost divergence by comparing an FNV-1a digest of the output and the
//! *bit patterns* of every [`KernelRecord`](crate::timeline::KernelRecord).

use crate::device::{Device, DeviceProps};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over an arbitrary byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-sensitive digest of an `f32` slice (bit-exact, NaN-safe).
pub fn digest_f32s(xs: &[f32]) -> u64 {
    fnv1a(xs.iter().flat_map(|x| x.to_bits().to_le_bytes()))
}

/// Order-sensitive digest of an `f64` slice (bit-exact, NaN-safe).
pub fn digest_f64s(xs: &[f64]) -> u64 {
    fnv1a(xs.iter().flat_map(|x| x.to_bits().to_le_bytes()))
}

/// Order-sensitive digest of a `u32` slice.
pub fn digest_u32s(xs: &[u32]) -> u64 {
    fnv1a(xs.iter().flat_map(|x| x.to_le_bytes()))
}

/// One divergence found by the replay audit.
#[derive(Debug, Clone)]
pub struct ReplayDivergence {
    /// What diverged ("output digest", "kernel count", "record #i name", …).
    pub what: String,
    /// Value observed on the first run.
    pub first: String,
    /// Value observed on the second run.
    pub second: String,
}

impl std::fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: run1={} run2={}", self.what, self.first, self.second)
    }
}

/// Outcome of [`audit_determinism`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Output digest of the first run.
    pub digest: u64,
    /// Total simulated nanoseconds of the first run.
    pub total_ns: f64,
    /// Number of charges on the first run.
    pub kernel_count: u64,
    /// Every observed divergence between the two runs (empty = deterministic).
    pub divergences: Vec<ReplayDivergence>,
}

impl ReplayReport {
    /// True when both runs were bit-identical in output and cost stream.
    pub fn is_deterministic(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Render a short human-readable report.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replay: digest {:#018x}, {} charges, {:.3} ms simulated\n",
            self.digest,
            self.kernel_count,
            self.total_ns * 1e-6
        ));
        if self.divergences.is_empty() {
            out.push_str("replay: deterministic (output and cost stream bit-identical)\n");
        } else {
            for d in &self.divergences {
                out.push_str(&format!("replay DIVERGENCE {d}\n"));
            }
        }
        out
    }
}

/// Run `work` twice on fresh devices built from `props` and diff the
/// results.
///
/// `work` receives a brand-new device each time and must return an
/// order-sensitive digest of its functional output (use
/// [`digest_f32s`] / [`digest_f64s`] / [`digest_u32s`]). The audit
/// compares the returned digest, the total simulated time, the charge
/// count, and every retained [`KernelRecord`](crate::timeline::KernelRecord)
/// field-by-field (floats compared by bit pattern, so `-0.0` vs `0.0`
/// or NaN payload drift is caught).
pub fn audit_determinism<F>(props: &DeviceProps, work: F) -> ReplayReport
where
    F: Fn(&Arc<Device>) -> u64,
{
    let run = |id: usize| {
        let dev = Device::new(id, props.clone());
        let digest = work(&dev);
        let summary = dev.summary();
        let records = dev.records();
        (digest, summary, records)
    };
    let (d1, s1, r1) = run(0);
    let (d2, s2, r2) = run(0);

    let mut divergences = Vec::new();
    if d1 != d2 {
        divergences.push(ReplayDivergence {
            what: "output digest".to_string(),
            first: format!("{d1:#018x}"),
            second: format!("{d2:#018x}"),
        });
    }
    if s1.total_ns.to_bits() != s2.total_ns.to_bits() {
        divergences.push(ReplayDivergence {
            what: "total_ns".to_string(),
            first: format!("{}", s1.total_ns),
            second: format!("{}", s2.total_ns),
        });
    }
    if s1.kernel_count != s2.kernel_count {
        divergences.push(ReplayDivergence {
            what: "kernel count".to_string(),
            first: format!("{}", s1.kernel_count),
            second: format!("{}", s2.kernel_count),
        });
    }
    let max_reported = 8usize;
    for (i, (a, b)) in r1.iter().zip(r2.iter()).enumerate() {
        if divergences.len() >= max_reported {
            break;
        }
        if a.name != b.name || a.phase != b.phase {
            divergences.push(ReplayDivergence {
                what: format!("record #{i} identity"),
                first: format!("{} ({:?})", a.name, a.phase),
                second: format!("{} ({:?})", b.name, b.phase),
            });
        } else if a.ns.to_bits() != b.ns.to_bits() || a.start_ns.to_bits() != b.start_ns.to_bits() {
            divergences.push(ReplayDivergence {
                what: format!("record #{i} ({}) cost", a.name),
                first: format!("ns={} start={}", a.ns, a.start_ns),
                second: format!("ns={} start={}", b.ns, b.start_ns),
            });
        }
    }
    if r1.len() != r2.len() {
        divergences.push(ReplayDivergence {
            what: "record stream length".to_string(),
            first: format!("{}", r1.len()),
            second: format!("{}", r2.len()),
        });
    }

    ReplayReport {
        digest: d1,
        total_ns: s1.total_ns,
        kernel_count: s1.kernel_count,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;
    use crate::device::Phase;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn digests_are_order_and_bit_sensitive() {
        assert_ne!(digest_f32s(&[1.0, 2.0]), digest_f32s(&[2.0, 1.0]));
        assert_ne!(digest_f32s(&[0.0]), digest_f32s(&[-0.0]));
        assert_eq!(digest_u32s(&[1, 2, 3]), digest_u32s(&[1, 2, 3]));
        assert_ne!(digest_f64s(&[]), digest_f64s(&[0.0]));
    }

    #[test]
    fn deterministic_work_passes() {
        let report = audit_determinism(&DeviceProps::rtx4090(), |dev| {
            let out: Vec<f32> = (0..64).map(|i| (i as f32).sqrt()).collect();
            dev.charge_kernel("sqrt", Phase::Other, &KernelCost::streaming(64.0, 256.0));
            digest_f32s(&out)
        });
        assert!(report.is_deterministic(), "{}", report.table());
        assert_eq!(report.kernel_count, 1);
        assert!(report.total_ns > 0.0);
    }

    #[test]
    fn output_divergence_is_caught() {
        let calls = AtomicU64::new(0);
        let report = audit_determinism(&DeviceProps::rtx4090(), |_dev| {
            calls.fetch_add(1, Ordering::SeqCst)
        });
        assert!(!report.is_deterministic());
        assert!(report.divergences.iter().any(|d| d.what == "output digest"));
    }

    #[test]
    fn cost_divergence_is_caught() {
        let calls = AtomicU64::new(0);
        let report = audit_determinism(&DeviceProps::rtx4090(), |dev| {
            let n = calls.fetch_add(1, Ordering::SeqCst);
            dev.charge_ns("flaky", Phase::Other, 100.0 + n as f64);
            42
        });
        assert!(!report.is_deterministic());
        assert!(report
            .divergences
            .iter()
            .any(|d| d.what.contains("cost") || d.what == "total_ns"));
        let table = report.table();
        assert!(table.contains("DIVERGENCE"));
    }

    #[test]
    fn kernel_name_divergence_is_caught() {
        let calls = AtomicU64::new(0);
        let report = audit_determinism(&DeviceProps::rtx4090(), |dev| {
            let n = calls.fetch_add(1, Ordering::SeqCst);
            let name = if n == 0 { "a" } else { "b" };
            dev.charge_ns(if name == "a" { "a" } else { "b" }, Phase::Other, 1.0);
            7
        });
        assert!(!report.is_deterministic());
        assert!(report
            .divergences
            .iter()
            .any(|d| d.what.contains("identity")));
    }
}
