//! Post-kernel race analysis over a recorded access log.
//!
//! The analysis mirrors the subset of `compute-sanitizer --tool racecheck`
//! semantics that matter for the simulated substrate:
//!
//! * **Inter-block conflicts** — two different blocks touching the same
//!   global-memory word where at least one access is a plain (non-atomic)
//!   write. Blocks have no ordering guarantee in the simulator (they run
//!   under rayon in arbitrary order), so a plain write racing with anything
//!   from another block is a genuine hazard. Collisions where *every*
//!   involved access is [`AccessKind::Atomic`] are legal — this is exactly
//!   the escape hatch the histogram builders use.
//! * **Intra-warp conflicts** — two different lanes of the same warp writing
//!   the same word without declaring atomicity. On hardware this is
//!   undefined (one lane wins); in the simulator it usually signals a
//!   missing `atomic` annotation on a histogram-style scatter.
//!
//! [`MemSpace::Shared`] buffers are private to a block, so inter-block
//! checks are skipped for them; intra-warp checks still apply.

use super::{AccessKind, AccessRecord, BufferMeta, MemSpace, Violation, ViolationKind};

/// Per-offset access summary used while folding over the sorted log.
#[derive(Default)]
struct OffsetState {
    /// Block id of the first writer seen (plain write), if any.
    first_plain_write_block: Option<u32>,
    /// Block id of the first reader seen, if any.
    first_read_block: Option<u32>,
    /// Block id of the first atomic seen, if any.
    first_atomic_block: Option<u32>,
    /// True once more than one distinct block issued a plain write.
    plain_write_multi_block: bool,
    /// True once a read and a plain write came from different blocks.
    read_write_cross_block: bool,
    /// True once an atomic and a plain write came from different blocks.
    atomic_write_cross_block: bool,
}

impl OffsetState {
    fn absorb(&mut self, rec: &AccessRecord) {
        match rec.kind {
            AccessKind::Write => {
                match self.first_plain_write_block {
                    None => self.first_plain_write_block = Some(rec.block),
                    Some(b) if b != rec.block => self.plain_write_multi_block = true,
                    Some(_) => {}
                }
                if let Some(rb) = self.first_read_block {
                    if rb != rec.block {
                        self.read_write_cross_block = true;
                    }
                }
                if let Some(ab) = self.first_atomic_block {
                    if ab != rec.block {
                        self.atomic_write_cross_block = true;
                    }
                }
            }
            AccessKind::Read => {
                if self.first_read_block.is_none() {
                    self.first_read_block = Some(rec.block);
                }
                if let Some(wb) = self.first_plain_write_block {
                    if wb != rec.block {
                        self.read_write_cross_block = true;
                    }
                }
            }
            AccessKind::Atomic => {
                if self.first_atomic_block.is_none() {
                    self.first_atomic_block = Some(rec.block);
                }
                if let Some(wb) = self.first_plain_write_block {
                    if wb != rec.block {
                        self.atomic_write_cross_block = true;
                    }
                }
            }
        }
    }
}

/// Analyze one kernel scope's access log and append aggregated violations.
///
/// `log` holds every in-bounds access recorded during the scope; `buffers`
/// maps `AccessRecord::buffer` ids to their metadata. `warp_size` defines
/// the lane grouping for intra-warp checks.
pub(crate) fn analyze(
    kernel: &'static str,
    log: &[AccessRecord],
    buffers: &[BufferMeta],
    warp_size: u32,
    out: &mut Vec<Violation>,
) {
    if log.is_empty() {
        return;
    }
    let warp_size = warp_size.max(1);

    // Sort a copy by (buffer, offset) so each word's accesses are adjacent.
    let mut sorted: Vec<&AccessRecord> = log.iter().collect();
    sorted.sort_by_key(|a| (a.buffer, a.offset));

    let mut i = 0usize;
    while i < sorted.len() {
        let buf = sorted[i].buffer;
        let off = sorted[i].offset;
        let mut j = i;
        while j < sorted.len() && sorted[j].buffer == buf && sorted[j].offset == off {
            j += 1;
        }
        let group = &sorted[i..j];
        let meta = &buffers[buf as usize];
        check_group(kernel, meta, off, group, warp_size, out);
        i = j;
    }
}

/// Run inter-block and intra-warp checks on all accesses to one word.
fn check_group(
    kernel: &'static str,
    meta: &BufferMeta,
    offset: u32,
    group: &[&AccessRecord],
    warp_size: u32,
    out: &mut Vec<Violation>,
) {
    // ---- Inter-block (global memory only). ----
    if meta.space == MemSpace::Global {
        let mut st = OffsetState::default();
        for rec in group {
            st.absorb(rec);
        }
        if st.plain_write_multi_block || st.atomic_write_cross_block {
            super::push_aggregated(
                out,
                Violation {
                    kernel,
                    buffer: meta.label,
                    kind: ViolationKind::WriteWriteRace,
                    count: 1,
                    example: format!("offset {offset}: plain writes from multiple blocks"),
                },
            );
        }
        if st.read_write_cross_block {
            super::push_aggregated(
                out,
                Violation {
                    kernel,
                    buffer: meta.label,
                    kind: ViolationKind::ReadWriteRace,
                    count: 1,
                    example: format!("offset {offset}: read and plain write from different blocks"),
                },
            );
        }
    }

    // ---- Intra-warp: same (block, warp), distinct lanes, >=1 plain write. ----
    // Group members by (block, warp id); groups are tiny so a nested scan
    // keyed on first occurrence keeps this allocation-free.
    for (idx, rec) in group.iter().enumerate() {
        if rec.kind != AccessKind::Write {
            continue;
        }
        let warp = rec.thread / warp_size;
        // Only report once per (block, warp): skip if an earlier plain write
        // from the same warp exists (that one is the designated reporter).
        let is_first = group[..idx].iter().all(|r| {
            !(r.kind == AccessKind::Write && r.block == rec.block && r.thread / warp_size == warp)
        });
        if !is_first {
            continue;
        }
        let conflicting = group.iter().any(|r| {
            r.block == rec.block && r.thread / warp_size == warp && r.thread != rec.thread
        });
        if conflicting {
            super::push_aggregated(
                out,
                Violation {
                    kernel,
                    buffer: meta.label,
                    kind: ViolationKind::IntraWarpRace,
                    count: 1,
                    example: format!(
                        "offset {offset}: lanes of block {} warp {} collide without atomic",
                        rec.block, warp
                    ),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AccessKind, AccessRecord, BufferMeta, MemSpace, ViolationKind};
    use super::analyze;

    fn meta(label: &'static str, space: MemSpace) -> BufferMeta {
        BufferMeta {
            label,
            len: 1024,
            space,
            init: None,
        }
    }

    fn rec(buffer: u32, block: u32, thread: u32, offset: u32, kind: AccessKind) -> AccessRecord {
        AccessRecord {
            buffer,
            block,
            thread,
            offset,
            kind,
        }
    }

    #[test]
    fn cross_block_plain_writes_are_flagged() {
        let bufs = vec![meta("hist", MemSpace::Global)];
        let log = vec![
            rec(0, 0, 0, 7, AccessKind::Write),
            rec(0, 1, 0, 7, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::WriteWriteRace);
    }

    #[test]
    fn atomic_only_collisions_are_legal() {
        let bufs = vec![meta("hist", MemSpace::Global)];
        let log = vec![
            rec(0, 0, 0, 7, AccessKind::Atomic),
            rec(0, 1, 0, 7, AccessKind::Atomic),
            rec(0, 2, 5, 7, AccessKind::Atomic),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert!(out.is_empty(), "atomic collisions must not be races");
    }

    #[test]
    fn atomic_mixed_with_plain_write_races() {
        let bufs = vec![meta("hist", MemSpace::Global)];
        let log = vec![
            rec(0, 0, 0, 3, AccessKind::Atomic),
            rec(0, 1, 0, 3, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::WriteWriteRace);
    }

    #[test]
    fn cross_block_read_write_is_flagged() {
        let bufs = vec![meta("out", MemSpace::Global)];
        let log = vec![
            rec(0, 0, 0, 9, AccessKind::Read),
            rec(0, 1, 0, 9, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::ReadWriteRace);
    }

    #[test]
    fn same_block_write_then_read_is_not_cross_block() {
        let bufs = vec![meta("tile", MemSpace::Global)];
        let log = vec![
            rec(0, 2, 0, 1, AccessKind::Write),
            rec(0, 2, 64, 1, AccessKind::Read),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        // Same block => no inter-block race; lanes 0 and 64 are different
        // warps so no intra-warp race either.
        assert!(out.is_empty());
    }

    #[test]
    fn shared_memory_skips_inter_block_checks() {
        let bufs = vec![meta("smem_tile", MemSpace::Shared)];
        // Two blocks "touch" offset 0 — legal for per-block shared memory
        // (each block has its own tile; ids just collide in the log).
        let log = vec![
            rec(0, 0, 0, 0, AccessKind::Write),
            rec(0, 1, 0, 0, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intra_warp_plain_write_collision_is_flagged() {
        let bufs = vec![meta("smem_tile", MemSpace::Shared)];
        let log = vec![
            rec(0, 0, 3, 12, AccessKind::Write),
            rec(0, 0, 17, 12, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::IntraWarpRace);
    }

    #[test]
    fn intra_warp_atomic_collision_is_legal() {
        let bufs = vec![meta("smem_tile", MemSpace::Shared)];
        let log = vec![
            rec(0, 0, 3, 12, AccessKind::Atomic),
            rec(0, 0, 17, 12, AccessKind::Atomic),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn different_warps_same_block_plain_writes_not_intra_warp() {
        let bufs = vec![meta("buf", MemSpace::Shared)];
        let log = vec![
            rec(0, 0, 3, 12, AccessKind::Write),
            rec(0, 0, 40, 12, AccessKind::Write),
        ];
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        // Lanes 3 and 40 are warps 0 and 1: not an intra-warp hazard (the
        // block can synchronize between warps), and same block => no
        // inter-block report either. Shared space also skips inter-block.
        assert!(out.is_empty());
    }

    #[test]
    fn violations_aggregate_counts() {
        let bufs = vec![meta("hist", MemSpace::Global)];
        let mut log = Vec::new();
        for off in 0..5u32 {
            log.push(rec(0, 0, 0, off, AccessKind::Write));
            log.push(rec(0, 1, 0, off, AccessKind::Write));
        }
        let mut out = Vec::new();
        analyze("k", &log, &bufs, 32, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 5);
    }
}
