//! Checked buffer views: the "execute through the sanitizer" path.
//!
//! [`BufferView`] / [`BufferViewMut`] wrap plain slices and funnel every
//! element access through [`Sanitizer::record`], so kernels written against
//! them get memcheck (bounds + uninitialized reads) and feed the racecheck
//! log for free. Out-of-bounds accesses are *reported*, not panicked on —
//! the view returns `T::default()` for an OOB read and drops an OOB write,
//! mirroring how `compute-sanitizer` lets the kernel keep running while
//! collecting violations.
//!
//! Existing production kernels use the lighter-weight declaration path
//! ([`KernelScope::touch`]) instead; views are for test kernels, seeded
//! races, and new kernels that want genuine checked execution.
//!
//! [`KernelScope::touch`]: super::KernelScope::touch

use super::{AccessKind, Sanitizer, ThreadCtx};

/// Read-only checked view over a slice.
pub struct BufferView<'a, 'd, T> {
    san: &'a Sanitizer,
    id: u32,
    data: &'d [T],
}

impl<'a, 'd, T: Copy + Default> BufferView<'a, 'd, T> {
    /// Wrap `data` as buffer `id` registered on `san`.
    pub(crate) fn new(san: &'a Sanitizer, id: u32, data: &'d [T]) -> Self {
        Self { san, id, data }
    }

    /// Number of elements in the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checked read of element `i` by thread `ctx`.
    ///
    /// Records the access; returns `T::default()` when `i` is out of
    /// bounds (the violation is logged, execution continues).
    pub fn get(&self, ctx: ThreadCtx, i: usize) -> T {
        self.san.record(self.id, ctx, i, AccessKind::Read);
        self.data.get(i).copied().unwrap_or_default()
    }
}

/// Mutable checked view over a slice.
pub struct BufferViewMut<'a, 'd, T> {
    san: &'a Sanitizer,
    id: u32,
    data: &'d mut [T],
}

impl<'a, 'd, T: Copy + Default> BufferViewMut<'a, 'd, T> {
    /// Wrap `data` as buffer `id` registered on `san`.
    pub(crate) fn new(san: &'a Sanitizer, id: u32, data: &'d mut [T]) -> Self {
        Self { san, id, data }
    }

    /// Number of elements in the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checked read of element `i` by thread `ctx` (see [`BufferView::get`]).
    pub fn get(&self, ctx: ThreadCtx, i: usize) -> T {
        self.san.record(self.id, ctx, i, AccessKind::Read);
        self.data.get(i).copied().unwrap_or_default()
    }

    /// Checked plain (non-atomic) write of element `i` by thread `ctx`.
    ///
    /// Out-of-bounds writes are logged and dropped.
    pub fn set(&mut self, ctx: ThreadCtx, i: usize, v: T) {
        self.san.record(self.id, ctx, i, AccessKind::Write);
        if let Some(slot) = self.data.get_mut(i) {
            *slot = v;
        }
    }
}

impl<'a, 'd> BufferViewMut<'a, 'd, f32> {
    /// Checked atomic add: declared atomic, so concurrent updates to the
    /// same word from different blocks/lanes are *verified* legal.
    pub fn atomic_add(&mut self, ctx: ThreadCtx, i: usize, v: f32) {
        self.san.record(self.id, ctx, i, AccessKind::Atomic);
        if let Some(slot) = self.data.get_mut(i) {
            *slot += v;
        }
    }
}

impl<'a, 'd> BufferViewMut<'a, 'd, f64> {
    /// Checked atomic add (f64 lane).
    pub fn atomic_add(&mut self, ctx: ThreadCtx, i: usize, v: f64) {
        self.san.record(self.id, ctx, i, AccessKind::Atomic);
        if let Some(slot) = self.data.get_mut(i) {
            *slot += v;
        }
    }
}

impl<'a, 'd> BufferViewMut<'a, 'd, u32> {
    /// Checked atomic add (u32 lane, wrapping like hardware `atomicAdd`).
    pub fn atomic_add(&mut self, ctx: ThreadCtx, i: usize, v: u32) {
        self.san.record(self.id, ctx, i, AccessKind::Atomic);
        if let Some(slot) = self.data.get_mut(i) {
            *slot = slot.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MemSpace, SanitizeMode, Sanitizer, ThreadCtx, ViolationKind};

    fn t(block: u32, thread: u32) -> ThreadCtx {
        ThreadCtx { block, thread }
    }

    #[test]
    fn views_execute_and_stay_clean_when_disjoint() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        let input = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut output = vec![0.0f32; 4];
        {
            let scope = san.scope("scale2");
            let inp = scope.view("input", &input);
            let mut out = scope.view_mut("output", &mut output, MemSpace::Global, false);
            for i in 0..4 {
                let ctx = t(i as u32 / 2, i as u32 % 2);
                let v = inp.get(ctx, i);
                out.set(ctx, i, v * 2.0);
            }
        }
        assert_eq!(output, vec![2.0, 4.0, 6.0, 8.0]);
        let report = san.report();
        assert!(
            report.is_clean(),
            "disjoint writes must be clean: {report:?}"
        );
        assert_eq!(report.total_accesses, 8);
    }

    #[test]
    fn oob_read_returns_default_and_flags() {
        let san = Sanitizer::new(SanitizeMode::Memcheck, 32);
        let data = vec![5u32; 3];
        {
            let scope = san.scope("oob");
            let v = scope.view("data", &data);
            assert_eq!(v.get(t(0, 0), 10), 0, "OOB read must return default");
        }
        let report = san.report();
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::OutOfBounds));
    }

    #[test]
    fn oob_write_is_dropped_and_flagged() {
        let san = Sanitizer::new(SanitizeMode::Memcheck, 32);
        let mut data = vec![7u32; 2];
        {
            let scope = san.scope("oob_write");
            let mut v = scope.view_mut("data", &mut data, MemSpace::Global, true);
            v.set(t(0, 0), 5, 99);
        }
        assert_eq!(data, vec![7, 7], "OOB write must not corrupt memory");
        let report = san.report();
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::OutOfBounds));
    }

    #[test]
    fn atomic_adds_from_many_blocks_are_clean() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        let mut hist = vec![0.0f32; 4];
        {
            let scope = san.scope("atomic_hist");
            let mut h = scope.view_mut("hist", &mut hist, MemSpace::Global, true);
            for b in 0..8u32 {
                h.atomic_add(t(b, 0), (b % 4) as usize, 1.0);
            }
        }
        assert_eq!(hist, vec![2.0; 4]);
        let report = san.report();
        assert!(report.is_clean(), "atomics must verify clean: {report:?}");
        assert_eq!(report.kernels["atomic_hist"].atomics, 8);
    }

    #[test]
    fn plain_write_collision_across_blocks_is_racy() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        let mut out = vec![0u32; 2];
        {
            let scope = san.scope("racy");
            let mut v = scope.view_mut("out", &mut out, MemSpace::Global, true);
            v.set(t(0, 0), 1, 10);
            v.set(t(1, 0), 1, 20);
        }
        let report = san.report();
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::WriteWriteRace));
    }

    #[test]
    fn uninitialized_read_through_view_is_flagged() {
        let san = Sanitizer::new(SanitizeMode::Memcheck, 32);
        let mut scratch = vec![0.0f32; 4];
        {
            let scope = san.scope("uninit");
            let mut v = scope.view_mut("scratch", &mut scratch, MemSpace::Global, false);
            v.set(t(0, 0), 0, 1.0);
            let _ = v.get(t(0, 0), 0); // fine: written above
            let _ = v.get(t(0, 1), 1); // never written
        }
        let report = san.report();
        let uninit: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::UninitializedRead)
            .collect();
        assert_eq!(uninit.len(), 1);
        assert_eq!(uninit[0].count, 1);
    }
}
