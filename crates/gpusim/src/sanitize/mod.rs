//! `gpusim-sanitizer` — racecheck / memcheck / determinism auditing for
//! simulated kernels, the simulator's analogue of CUDA's
//! `compute-sanitizer`.
//!
//! On real hardware the paper's core correctness claim — three
//! atomics-heavy histogram builders producing bit-equivalent results —
//! is policed by `compute-sanitizer` (racecheck/memcheck). This module
//! provides the same policing for the simulated substrate:
//!
//! * **memcheck** — every declared access is validated at record time:
//!   out-of-bounds offsets and reads of never-written ("uninitialized")
//!   words are flagged immediately ([`ViolationKind::OutOfBounds`],
//!   [`ViolationKind::UninitializedRead`]).
//! * **racecheck** — when a kernel scope ends, its access log is
//!   analyzed for write-write and read-write conflicts between
//!   *different blocks*, and between lanes of the same warp when the
//!   access was not declared [`AccessKind::Atomic`]. Atomics are the
//!   escape hatch: a kernel that *declares* its histogram updates atomic
//!   gets them **verified** (atomic+atomic collisions are legal;
//!   atomic+plain-write collisions are not) rather than trusted.
//! * **determinism audit** — [`replay`] runs a kernel (or a whole
//!   training round) twice on fresh devices and diffs both the
//!   functional output digest and the charged [`crate::KernelRecord`]s,
//!   catching nondeterministic cost accounting.
//!
//! Two ways to feed the access log:
//!
//! 1. The checked execution layer ([`view::BufferView`] /
//!    [`view::BufferViewMut`]): kernels compute *through* the view, and
//!    every `get`/`set`/`atomic_add` is logged and checked.
//! 2. The shadow recorder ([`Sanitizer::record`] /
//!    [`KernelScope::touch`]): existing kernels keep their functional
//!    path untouched and *declare* the access pattern their launch
//!    geometry implies. This is how `gbdt-core`'s histogram, partition
//!    and leaf-value kernels are wired (their functional execution is a
//!    deterministic host fold, but the declared pattern mirrors what
//!    the real CUDA kernel would issue).
//!
//! Enabling the sanitizer never charges the ledger and never perturbs
//! functional results: with [`SanitizeMode::Off`] (the default) the
//! entire subsystem is a `None` check at each kernel boundary.

pub mod racecheck;
pub mod replay;
pub mod view;

pub use replay::{audit_determinism, digest_f32s, digest_f64s, digest_u32s, ReplayReport};
pub use view::{BufferView, BufferViewMut};

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// What the sanitizer checks. `Off` is free; every other mode records
/// the declared access stream of sanitized kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// No checking, no recording (the default).
    #[default]
    Off,
    /// Bounds + initialized-read checking only.
    Memcheck,
    /// Inter-block / intra-warp conflict detection only.
    Racecheck,
    /// Both memcheck and racecheck.
    Full,
}

impl SanitizeMode {
    /// Whether any recording happens at all.
    pub fn enabled(self) -> bool {
        self != SanitizeMode::Off
    }

    /// Whether bounds / initialized-read checks run.
    pub fn memcheck(self) -> bool {
        matches!(self, SanitizeMode::Memcheck | SanitizeMode::Full)
    }

    /// Whether conflict analysis runs at kernel end.
    pub fn racecheck(self) -> bool {
        matches!(self, SanitizeMode::Racecheck | SanitizeMode::Full)
    }
}

/// How a simulated thread touched a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store. Conflicting plain stores are a data race.
    Write,
    /// Declared read-modify-write atomic (`atomicAdd` and friends).
    /// Collisions between atomics are legal; the declaration is what
    /// racecheck verifies instead of trusts.
    Atomic,
}

/// Which address space a buffer lives in. [`MemSpace::Shared`] buffers
/// are per-block (each block owns a private copy), so racecheck only
/// applies intra-block checks to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemSpace {
    /// Device-global memory, visible to every block.
    Global,
    /// Per-block shared memory (48 KB scratchpad).
    Shared,
}

/// Simulated coordinates of the accessing thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
}

impl ThreadCtx {
    /// Coordinates of global thread `tid` under `block_threads`-wide
    /// blocks.
    pub fn from_global(tid: usize, block_threads: usize) -> Self {
        let bt = block_threads.max(1);
        ThreadCtx {
            block: (tid / bt) as u32,
            thread: (tid % bt) as u32,
        }
    }
}

/// One logged access: who touched which word of which buffer, and how.
#[derive(Debug, Clone, Copy)]
pub struct AccessRecord {
    /// Scope-local buffer id (from [`KernelScope::register`]).
    pub buffer: u32,
    /// Accessing block.
    pub block: u32,
    /// Accessing thread within the block.
    pub thread: u32,
    /// Element offset within the buffer.
    pub offset: u32,
    /// Access kind.
    pub kind: AccessKind,
}

/// Category of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Offset beyond the registered buffer length.
    OutOfBounds,
    /// Read of a word no prior access in this kernel initialized (and
    /// the buffer was registered uninitialized).
    UninitializedRead,
    /// Two non-atomic-compatible writes to the same word from different
    /// blocks (or a declared atomic colliding with a plain write).
    WriteWriteRace,
    /// A read and a write of the same word from different blocks.
    ReadWriteRace,
    /// Lanes of the same warp touching the same word where at least one
    /// access is a plain write.
    IntraWarpRace,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::OutOfBounds => "out-of-bounds",
            ViolationKind::UninitializedRead => "uninitialized-read",
            ViolationKind::WriteWriteRace => "write-write-race",
            ViolationKind::ReadWriteRace => "read-write-race",
            ViolationKind::IntraWarpRace => "intra-warp-race",
        };
        f.write_str(s)
    }
}

/// One aggregated sanitizer finding: all offending words of one
/// `(kernel, buffer, kind)` triple collapse into a single violation with
/// a count and a representative example, keeping reports readable.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Kernel in whose scope the violation occurred.
    pub kernel: &'static str,
    /// Registered label of the offending buffer.
    pub buffer: &'static str,
    /// Violation category.
    pub kind: ViolationKind,
    /// Number of offending words/accesses collapsed into this entry.
    pub count: u64,
    /// Human-readable example (first offending access).
    pub example: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in `{}` buffer `{}` ×{}: {}",
            self.kind, self.kernel, self.buffer, self.count, self.example
        )
    }
}

/// Per-kernel access telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Number of sanitized scopes run under this kernel name.
    pub launches: u64,
    /// Declared accesses recorded (after sampling caps, if the tracer
    /// samples).
    pub accesses: u64,
    /// Subset of accesses declared atomic.
    pub atomics: u64,
    /// Violations attributed to this kernel.
    pub violations: u64,
}

/// Snapshot of everything the sanitizer saw.
#[derive(Debug, Clone)]
pub struct SanitizeReport {
    /// Mode the sanitizer ran in.
    pub mode: SanitizeMode,
    /// Per-kernel telemetry, keyed by kernel name.
    pub kernels: BTreeMap<&'static str, KernelStats>,
    /// All findings, in detection order.
    pub violations: Vec<Violation>,
    /// Total accesses recorded across all kernels.
    pub total_accesses: u64,
    /// Accesses dropped because a single kernel exceeded the log cap
    /// (racecheck still ran on the retained prefix).
    pub dropped_accesses: u64,
}

impl SanitizeReport {
    /// Whether the run was clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render a fixed-width report table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>8} {:>12} {:>12} {:>6}\n",
            "kernel", "launches", "accesses", "atomics", "viol"
        ));
        for (name, s) in &self.kernels {
            out.push_str(&format!(
                "{:<26} {:>8} {:>12} {:>12} {:>6}\n",
                name, s.launches, s.accesses, s.atomics, s.violations
            ));
        }
        out.push_str(&format!(
            "total accesses {} (dropped {})\n",
            self.total_accesses, self.dropped_accesses
        ));
        if self.violations.is_empty() {
            out.push_str("violations: none\n");
        } else {
            out.push_str(&format!("violations: {}\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// Registered-buffer metadata (scope-local).
#[derive(Debug)]
pub(crate) struct BufferMeta {
    pub(crate) label: &'static str,
    pub(crate) len: usize,
    pub(crate) space: MemSpace,
    /// Shadow init bitmap; `None` when the buffer was registered as
    /// fully initialized (init tracking disabled).
    pub(crate) init: Option<Vec<bool>>,
}

/// State of the kernel scope currently recording.
#[derive(Debug, Default)]
struct ScopeState {
    name: &'static str,
    buffers: Vec<BufferMeta>,
    log: Vec<AccessRecord>,
    dropped: u64,
    atomics: u64,
}

#[derive(Debug)]
struct Inner {
    mode: SanitizeMode,
    warp_size: u32,
    current: Option<ScopeState>,
    violations: Vec<Violation>,
    kernels: BTreeMap<&'static str, KernelStats>,
    total_accesses: u64,
    dropped_accesses: u64,
}

/// Maximum retained accesses per kernel scope. Beyond this the log
/// stops growing (memcheck still runs per record; racecheck covers the
/// retained prefix) so sanitized runs stay memory-bounded.
pub const MAX_SCOPE_LOG: usize = 1 << 22;

/// The recording/checking engine, attached to a [`crate::Device`] via
/// [`crate::Device::enable_sanitizer`]. Thread-safe: block-parallel
/// kernels may record concurrently (the log order between blocks is
/// irrelevant to racecheck, which groups by word, not by time).
#[derive(Debug)]
pub struct Sanitizer {
    inner: Mutex<Inner>,
}

impl Sanitizer {
    /// Create a sanitizer in `mode` for a device with `warp_size`-lane
    /// warps.
    pub fn new(mode: SanitizeMode, warp_size: u32) -> Self {
        Sanitizer {
            inner: Mutex::new(Inner {
                mode,
                warp_size: warp_size.max(1),
                current: None,
                violations: Vec::new(),
                kernels: BTreeMap::new(),
                total_accesses: 0,
                dropped_accesses: 0,
            }),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> SanitizeMode {
        self.inner.lock().mode
    }

    /// Open a kernel scope. Accesses recorded until the scope is closed
    /// (dropped) are attributed to `name` and race-checked together.
    /// Scopes must not nest; opening a scope while one is active closes
    /// the active one first (simulated kernels are launched on one
    /// in-order stream).
    pub fn scope<'a>(&'a self, name: &'static str) -> KernelScope<'a> {
        let mut inner = self.inner.lock();
        if inner.current.is_some() {
            Self::close_scope(&mut inner);
        }
        inner.current = Some(ScopeState {
            name,
            ..Default::default()
        });
        inner.kernels.entry(name).or_default().launches += 1;
        KernelScope { san: self }
    }

    /// Register a buffer with the active scope, returning its id.
    /// `initialized` buffers skip uninitialized-read tracking.
    fn register(&self, label: &'static str, len: usize, space: MemSpace, initialized: bool) -> u32 {
        let mut inner = self.inner.lock();
        let track = inner.mode.memcheck() && !initialized;
        let scope = inner.current.as_mut().expect("no active kernel scope");
        scope.buffers.push(BufferMeta {
            label,
            len,
            space,
            init: track.then(|| vec![false; len]),
        });
        (scope.buffers.len() - 1) as u32
    }

    /// Record one access in the active scope (memcheck runs
    /// immediately; the record feeds racecheck at scope end).
    pub fn record(&self, buffer: u32, ctx: ThreadCtx, offset: usize, kind: AccessKind) {
        let mut inner = self.inner.lock();
        let mode = inner.mode;
        if !mode.enabled() {
            return;
        }
        let Some(scope) = inner.current.as_mut() else {
            return;
        };
        let name = scope.name;
        let meta = &mut scope.buffers[buffer as usize];
        let mut violation: Option<Violation> = None;
        if offset >= meta.len {
            if mode.memcheck() {
                violation = Some(Violation {
                    kernel: name,
                    buffer: meta.label,
                    kind: ViolationKind::OutOfBounds,
                    count: 1,
                    example: format!(
                        "block {} thread {} {:?} offset {} ≥ len {}",
                        ctx.block, ctx.thread, kind, offset, meta.len
                    ),
                });
            }
        } else if let Some(init) = meta.init.as_mut() {
            match kind {
                AccessKind::Read => {
                    if !init[offset] {
                        violation = Some(Violation {
                            kernel: name,
                            buffer: meta.label,
                            kind: ViolationKind::UninitializedRead,
                            count: 1,
                            example: format!(
                                "block {} thread {} read of never-written offset {}",
                                ctx.block, ctx.thread, offset
                            ),
                        });
                    }
                }
                AccessKind::Write | AccessKind::Atomic => init[offset] = true,
            }
        }
        // Log (bounded) for racecheck; OOB records are excluded from
        // the conflict analysis (already reported, and they index
        // nothing real).
        if offset < meta.len {
            if scope.log.len() < MAX_SCOPE_LOG {
                scope.log.push(AccessRecord {
                    buffer,
                    block: ctx.block,
                    thread: ctx.thread,
                    offset: offset as u32,
                    kind,
                });
            } else {
                scope.dropped += 1;
            }
        }
        if kind == AccessKind::Atomic {
            scope.atomics += 1;
        }
        inner.total_accesses += 1;
        if let Some(v) = violation {
            push_aggregated(&mut inner.violations, v);
            inner.kernels.entry(name).or_default().violations += 1;
        }
    }

    /// Close the active scope: run racecheck on its log and fold its
    /// telemetry into the per-kernel stats.
    fn end_scope(&self) {
        let mut inner = self.inner.lock();
        Self::close_scope(&mut inner);
    }

    fn close_scope(inner: &mut Inner) {
        let Some(scope) = inner.current.take() else {
            return;
        };
        let stats = inner.kernels.entry(scope.name).or_default();
        stats.accesses += scope.log.len() as u64 + scope.dropped;
        stats.atomics += scope.atomics;
        inner.dropped_accesses += scope.dropped;
        if inner.mode.racecheck() {
            let mut found = Vec::new();
            racecheck::analyze(
                scope.name,
                &scope.log,
                &scope.buffers,
                inner.warp_size,
                &mut found,
            );
            inner.kernels.entry(scope.name).or_default().violations += found.len() as u64;
            for v in found {
                push_aggregated(&mut inner.violations, v);
            }
        }
    }

    /// Violations found so far (aggregated per kernel/buffer/kind).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Full report snapshot.
    pub fn report(&self) -> SanitizeReport {
        let mut inner = self.inner.lock();
        // A dangling scope (kernel without explicit end) is closed first
        // so its accesses are not silently lost.
        Self::close_scope(&mut inner);
        SanitizeReport {
            mode: inner.mode,
            kernels: inner.kernels.clone(),
            violations: inner.violations.clone(),
            total_accesses: inner.total_accesses,
            dropped_accesses: inner.dropped_accesses,
        }
    }
}

/// Aggregate `v` into `list`: same `(kernel, buffer, kind)` entries
/// merge, bumping the count and keeping the first example.
fn push_aggregated(list: &mut Vec<Violation>, v: Violation) {
    if let Some(existing) = list
        .iter_mut()
        .find(|e| e.kernel == v.kernel && e.buffer == v.buffer && e.kind == v.kind)
    {
        existing.count += v.count;
    } else {
        list.push(v);
    }
}

/// RAII handle over one sanitized kernel: register buffers, touch
/// words, and let the drop run racecheck.
pub struct KernelScope<'a> {
    san: &'a Sanitizer,
}

impl<'a> KernelScope<'a> {
    /// Register a buffer for this kernel; `initialized` marks it fully
    /// written before the kernel starts (skips uninit tracking).
    pub fn register(
        &self,
        label: &'static str,
        len: usize,
        space: MemSpace,
        initialized: bool,
    ) -> u32 {
        self.san.register(label, len, space, initialized)
    }

    /// Declare one access (shadow-recorder path for kernels whose
    /// functional execution does not go through the checked views).
    pub fn touch(&self, buffer: u32, ctx: ThreadCtx, offset: usize, kind: AccessKind) {
        self.san.record(buffer, ctx, offset, kind);
    }

    /// Checked read-only view over `data`, registered as initialized.
    pub fn view<'d, T: Copy + Default>(
        &'a self,
        label: &'static str,
        data: &'d [T],
    ) -> BufferView<'a, 'd, T> {
        let id = self.register(label, data.len(), MemSpace::Global, true);
        BufferView::new(self.san, id, data)
    }

    /// Checked mutable view over `data` in `space`; `initialized`
    /// declares whether pre-existing contents may be read before the
    /// kernel writes them.
    pub fn view_mut<'d, T: Copy + Default>(
        &'a self,
        label: &'static str,
        data: &'d mut [T],
        space: MemSpace,
        initialized: bool,
    ) -> BufferViewMut<'a, 'd, T> {
        let id = self.register(label, data.len(), space, initialized);
        BufferViewMut::new(self.san, id, data)
    }
}

impl Drop for KernelScope<'_> {
    fn drop(&mut self) {
        self.san.end_scope();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(block: u32, thread: u32) -> ThreadCtx {
        ThreadCtx { block, thread }
    }

    #[test]
    fn mode_flags() {
        assert!(!SanitizeMode::Off.enabled());
        assert!(SanitizeMode::Memcheck.memcheck() && !SanitizeMode::Memcheck.racecheck());
        assert!(!SanitizeMode::Racecheck.memcheck() && SanitizeMode::Racecheck.racecheck());
        assert!(SanitizeMode::Full.memcheck() && SanitizeMode::Full.racecheck());
    }

    #[test]
    fn oob_and_uninit_reads_are_flagged() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        {
            let scope = san.scope("k");
            let b = scope.register("buf", 4, MemSpace::Global, false);
            scope.touch(b, t(0, 0), 9, AccessKind::Write); // OOB
            scope.touch(b, t(0, 1), 2, AccessKind::Read); // uninit
            scope.touch(b, t(0, 2), 3, AccessKind::Write);
            scope.touch(b, t(0, 2), 3, AccessKind::Read); // fine: written above
        }
        let r = san.report();
        let kinds: Vec<ViolationKind> = r.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::OutOfBounds), "{kinds:?}");
        assert!(
            kinds.contains(&ViolationKind::UninitializedRead),
            "{kinds:?}"
        );
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
    }

    #[test]
    fn initialized_buffers_skip_uninit_tracking() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        {
            let scope = san.scope("k");
            let b = scope.register("buf", 4, MemSpace::Global, true);
            scope.touch(b, t(0, 0), 2, AccessKind::Read);
        }
        assert!(san.report().is_clean());
    }

    #[test]
    fn violations_aggregate_per_kernel_buffer_kind() {
        let san = Sanitizer::new(SanitizeMode::Full, 32);
        {
            let scope = san.scope("k");
            let b = scope.register("buf", 2, MemSpace::Global, true);
            for i in 0..10 {
                scope.touch(b, t(0, i), 5 + i as usize, AccessKind::Write);
            }
        }
        let r = san.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].count, 10);
        assert_eq!(r.kernels["k"].violations, 10);
    }

    #[test]
    fn report_counts_accesses_and_atomics() {
        let san = Sanitizer::new(SanitizeMode::Racecheck, 32);
        {
            let scope = san.scope("hist");
            let b = scope.register("h", 16, MemSpace::Global, true);
            scope.touch(b, t(0, 0), 1, AccessKind::Atomic);
            scope.touch(b, t(1, 0), 1, AccessKind::Atomic);
            scope.touch(b, t(2, 0), 2, AccessKind::Read);
        }
        let r = san.report();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.kernels["hist"].launches, 1);
        assert_eq!(r.kernels["hist"].accesses, 3);
        assert_eq!(r.kernels["hist"].atomics, 2);
        assert_eq!(r.total_accesses, 3);
        assert!(r.table().contains("hist"));
    }

    #[test]
    fn off_mode_records_nothing() {
        let san = Sanitizer::new(SanitizeMode::Off, 32);
        {
            let scope = san.scope("k");
            let b = scope.register("buf", 1, MemSpace::Global, true);
            scope.touch(b, t(0, 0), 99, AccessKind::Write);
        }
        let r = san.report();
        assert!(r.is_clean());
        assert_eq!(r.total_accesses, 0);
    }

    #[test]
    fn thread_ctx_from_global() {
        let c = ThreadCtx::from_global(600, 256);
        assert_eq!((c.block, c.thread), (2, 88));
        let z = ThreadCtx::from_global(3, 0); // degenerate block width
        assert_eq!((z.block, z.thread), (3, 0));
    }
}
