//! Elementwise transforms.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use crate::launch::LaunchCfg;
use rayon::prelude::*;

/// Elementwise `out[i] = f(input[i])` over `f32` data.
///
/// `flops_per_elem` is the caller's estimate of arithmetic per element
/// (e.g. ~4 for an FMA-based loss, ~20 for `exp`-heavy softmax terms).
pub fn map_f32<F>(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    input: &[f32],
    flops_per_elem: f64,
    f: F,
) -> Vec<f32>
where
    F: Fn(f32) -> f32 + Sync,
{
    let n = input.len();
    let cfg = LaunchCfg::for_elems(n);
    let out: Vec<f32> = input.par_iter().map(|&x| f(x)).collect();
    let _ = cfg;
    dev.charge_kernel(
        name,
        phase,
        &KernelCost::streaming(n as f64 * flops_per_elem, (n * 8) as f64),
    );
    out
}

/// Elementwise `out[i] = f(a[i], b[i])`.
pub fn zip_map_f32<F>(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    a: &[f32],
    b: &[f32],
    flops_per_elem: f64,
    f: F,
) -> Vec<f32>
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    assert_eq!(a.len(), b.len(), "zip_map length mismatch");
    let n = a.len();
    let out: Vec<f32> = a
        .par_iter()
        .zip(b.par_iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    dev.charge_kernel(
        name,
        phase,
        &KernelCost::streaming(n as f64 * flops_per_elem, (n * 12) as f64),
    );
    out
}

/// Fill a device-resident `f64` slice with a constant.
pub fn fill_f64(dev: &Device, phase: Phase, name: &'static str, out: &mut [f64], value: f64) {
    out.par_iter_mut().for_each(|x| *x = value);
    dev.charge_kernel(
        name,
        phase,
        &KernelCost::streaming(0.0, (out.len() * 8) as f64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_applies_function() {
        let dev = Device::rtx4090();
        let input: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let out = map_f32(&dev, Phase::Other, "sq", &input, 1.0, |x| x * x);
        assert_eq!(out[7], 49.0);
        assert!(dev.now_ns() > 0.0);
    }

    #[test]
    fn zip_map_combines() {
        let dev = Device::rtx4090();
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![10.0f32, 20.0, 30.0];
        let out = zip_map_f32(&dev, Phase::Other, "add", &a, &b, 1.0, |x, y| x + y);
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_map_length_mismatch_panics() {
        let dev = Device::rtx4090();
        let _ = zip_map_f32(
            &dev,
            Phase::Other,
            "bad",
            &[1.0],
            &[1.0, 2.0],
            1.0,
            |x, _| x,
        );
    }

    #[test]
    fn fill_sets_all() {
        let dev = Device::rtx4090();
        let mut v = vec![0.0f64; 50];
        fill_f64(&dev, Phase::Other, "fill", &mut v, 3.5);
        assert!(v.iter().all(|&x| x == 3.5));
    }
}
