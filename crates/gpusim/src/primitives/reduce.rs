//! Reductions: global sums/argmax and their segmented variants.
//!
//! Segmented reduction is the workhorse of split selection (paper
//! §3.1.3): every (node, feature) pair forms one segment of gain values;
//! a segmented argmax finds the best threshold within each feature, and a
//! global argmax finds the best split per node. The paper's adaptive
//! "segments per block" mapping — `1 + #segments/#SMs × C` — is modeled
//! in the launch sizing here.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use crate::launch::{run_blocks, LaunchCfg};
use rayon::prelude::*;

/// Deterministic block-ordered sum of an `f64` slice.
pub fn reduce_sum_f64(dev: &Device, phase: Phase, name: &'static str, vals: &[f64]) -> f64 {
    let n = vals.len();
    let cfg = LaunchCfg::for_elems(n);
    let partials = run_blocks(cfg, |b| {
        let (s, e) = cfg.block_range(b, n);
        vals[s..e].iter().sum::<f64>()
    });
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: n as f64,
            dram_bytes: (n * 8) as f64,
            launches: 2.0, // block partials + final combine
            ..Default::default()
        },
    );
    partials.into_iter().sum()
}

/// Global argmax: returns `(index, value)` of the maximum; ties resolve
/// to the lowest index. Empty input returns `(0, -inf)`.
pub fn argmax_f64(dev: &Device, phase: Phase, name: &'static str, vals: &[f64]) -> (usize, f64) {
    let n = vals.len();
    let cfg = LaunchCfg::for_elems(n.max(1));
    let partials = run_blocks(cfg, |b| {
        let (s, e) = cfg.block_range(b, n);
        let mut best = (usize::MAX, f64::NEG_INFINITY);
        for (i, &v) in vals[s..e].iter().enumerate() {
            if v > best.1 {
                best = (s + i, v);
            }
        }
        best
    });
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: n as f64,
            dram_bytes: (n * 8) as f64,
            launches: 2.0,
            ..Default::default()
        },
    );
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, v) in partials {
        if i != usize::MAX && v > best.1 {
            best = (i, v);
        }
    }
    best
}

/// Number of segments each block handles under the paper's adaptive
/// mapping (§3.1.3): `1 + #segments / #SMs × C`. A naive one-segment-
/// per-block grid pays kernel-launch and scheduling overhead per segment
/// on high-dimensional data; batching segments amortizes it.
pub fn segments_per_block(num_segments: usize, sm_count: u32, c: f64) -> usize {
    (1.0 + num_segments as f64 / sm_count as f64 * c).floor() as usize
}

/// Sum within each fixed-length segment: `out[s] = Σ vals[s*len .. (s+1)*len]`.
pub fn segmented_reduce_sum_f64(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    vals: &[f64],
    seg_len: usize,
) -> Vec<f64> {
    assert!(seg_len > 0, "segment length must be positive");
    assert_eq!(vals.len() % seg_len, 0, "values not a multiple of seg_len");
    let num_segments = vals.len() / seg_len;
    let out: Vec<f64> = (0..num_segments)
        .into_par_iter()
        .map(|s| vals[s * seg_len..(s + 1) * seg_len].iter().sum())
        .collect();
    charge_segmented(dev, phase, name, vals.len(), num_segments);
    out
}

/// Argmax within each fixed-length segment: `out[s] = (local_idx, value)`.
/// Ties resolve to the lowest local index; all-(-inf) segments return
/// local index 0.
pub fn segmented_argmax_f64(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    vals: &[f64],
    seg_len: usize,
) -> Vec<(usize, f64)> {
    assert!(seg_len > 0, "segment length must be positive");
    assert_eq!(vals.len() % seg_len, 0, "values not a multiple of seg_len");
    let num_segments = vals.len() / seg_len;
    let out: Vec<(usize, f64)> = (0..num_segments)
        .into_par_iter()
        .map(|s| {
            let seg = &vals[s * seg_len..(s + 1) * seg_len];
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, &v) in seg.iter().enumerate() {
                if v > best.1 {
                    best = (i, v);
                }
            }
            best
        })
        .collect();
    charge_segmented(dev, phase, name, vals.len(), num_segments);
    out
}

/// Charge a segmented reduction: streaming read of all values plus the
/// per-block overhead implied by the adaptive segments-per-block mapping.
fn charge_segmented(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    total_vals: usize,
    num_segments: usize,
) {
    let sms = dev.model().params.sm_count;
    let spb = segments_per_block(num_segments, sms, 4.0);
    let blocks = num_segments.div_ceil(spb.max(1));
    // Block scheduling overhead: each wave of `sm_count` blocks costs a
    // scheduling quantum; a grid much larger than the SM count pays
    // proportionally more.
    let waves = (blocks as f64 / sms as f64).ceil();
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: total_vals as f64 + waves * 1e3,
            dram_bytes: (total_vals * 8 + num_segments * 8) as f64,
            launches: 1.0,
            ..Default::default()
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let dev = Device::rtx4090();
        let vals: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64 * 0.25).collect();
        let got = reduce_sum_f64(&dev, Phase::Other, "sum", &vals);
        let want: f64 = vals.iter().sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn sum_is_deterministic() {
        let dev = Device::rtx4090();
        let vals: Vec<f64> = (0..100_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let a = reduce_sum_f64(&dev, Phase::Other, "s", &vals);
        let b = reduce_sum_f64(&dev, Phase::Other, "s", &vals);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn argmax_finds_max_and_breaks_ties_low() {
        let dev = Device::rtx4090();
        let vals = vec![1.0, 5.0, 3.0, 5.0, 2.0];
        assert_eq!(argmax_f64(&dev, Phase::Other, "am", &vals), (1, 5.0));
        let empty: Vec<f64> = vec![];
        let (i, v) = argmax_f64(&dev, Phase::Other, "am", &empty);
        assert_eq!(i, 0);
        assert_eq!(v, f64::NEG_INFINITY);
    }

    #[test]
    fn segmented_sum() {
        let dev = Device::rtx4090();
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = segmented_reduce_sum_f64(&dev, Phase::Other, "ss", &vals, 2);
        assert_eq!(out, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn segmented_argmax() {
        let dev = Device::rtx4090();
        let vals = vec![1.0, 9.0, 2.0, /**/ 7.0, 7.0, 0.0];
        let out = segmented_argmax_f64(&dev, Phase::Other, "sa", &vals, 3);
        assert_eq!(out, vec![(1, 9.0), (0, 7.0)]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn segmented_requires_multiple() {
        let dev = Device::rtx4090();
        let _ = segmented_reduce_sum_f64(&dev, Phase::Other, "bad", &[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn segments_per_block_adaptive_mapping() {
        // Few segments on many SMs → one per block (naive mapping).
        assert_eq!(segments_per_block(10, 128, 4.0), 1);
        // Many segments → batched.
        assert!(segments_per_block(100_000, 128, 4.0) > 1000);
        // Monotone in C.
        assert!(segments_per_block(5000, 128, 8.0) >= segments_per_block(5000, 128, 2.0));
    }

    #[test]
    fn more_segments_costs_more_time() {
        let dev = Device::rtx4090();
        let vals = vec![1.0f64; 1 << 16];
        let t0 = dev.now_ns();
        let _ = segmented_reduce_sum_f64(&dev, Phase::Other, "a", &vals, 1 << 16);
        let t1 = dev.now_ns();
        let _ = segmented_reduce_sum_f64(&dev, Phase::Other, "b", &vals, 4);
        let t2 = dev.now_ns();
        assert!(t2 - t1 >= t1 - t0); // many small segments at least as costly
    }
}
