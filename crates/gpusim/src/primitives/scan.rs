//! Prefix sums (scans), global and segmented.
//!
//! The segmented exclusive scan computes, for every candidate split
//! threshold, the gradient/Hessian mass of the left child (paper
//! §3.1.3): within each (node, feature, output) segment of histogram
//! bins, `scan[b] = Σ_{b' < b} hist[b']`.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use rayon::prelude::*;

/// Exclusive prefix sum of `u32` counts, returning a vector one longer
/// than the input whose final element is the total. Used for stream
/// compaction offsets.
pub fn exclusive_scan_u32(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    vals: &[u32],
) -> Vec<u32> {
    let n = vals.len();
    let mut out = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    out.push(0);
    for &v in vals {
        acc = acc
            .checked_add(v)
            .expect("exclusive_scan_u32 overflowed u32");
        out.push(acc);
    }
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: 2.0 * n as f64,
            dram_bytes: (n * 8) as f64,
            launches: 2.0, // up-sweep + down-sweep
            ..Default::default()
        },
    );
    out
}

/// Exclusive prefix sum within each fixed-length segment.
///
/// `out[s*len + i] = Σ_{j<i} vals[s*len + j]`; segments are independent
/// and processed in parallel.
pub fn segmented_exclusive_scan_f64(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    vals: &[f64],
    seg_len: usize,
) -> Vec<f64> {
    assert!(seg_len > 0, "segment length must be positive");
    assert_eq!(vals.len() % seg_len, 0, "values not a multiple of seg_len");
    let num_segments = vals.len() / seg_len;
    let mut out = vec![0.0f64; vals.len()];
    out.par_chunks_mut(seg_len)
        .zip(vals.par_chunks(seg_len))
        .for_each(|(o, v)| {
            let mut acc = 0.0;
            for i in 0..seg_len {
                o[i] = acc;
                acc += v[i];
            }
        });
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: 2.0 * vals.len() as f64,
            dram_bytes: (vals.len() * 16) as f64,
            launches: 1.0,
            ..Default::default()
        },
    );
    let _ = num_segments;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_basic() {
        let dev = Device::rtx4090();
        let out = exclusive_scan_u32(&dev, Phase::Other, "scan", &[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![0, 3, 4, 8, 9, 14]);
    }

    #[test]
    fn exclusive_scan_empty() {
        let dev = Device::rtx4090();
        let out = exclusive_scan_u32(&dev, Phase::Other, "scan", &[]);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn segmented_scan_independent_segments() {
        let dev = Device::rtx4090();
        let vals = vec![1.0, 2.0, 3.0, /**/ 10.0, 20.0, 30.0];
        let out = segmented_exclusive_scan_f64(&dev, Phase::Other, "ss", &vals, 3);
        assert_eq!(out, vec![0.0, 1.0, 3.0, 0.0, 10.0, 30.0]);
    }

    #[test]
    fn segmented_scan_seg_len_one_is_zeroes() {
        let dev = Device::rtx4090();
        let out = segmented_exclusive_scan_f64(&dev, Phase::Other, "ss", &[5.0, 7.0], 1);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn segmented_scan_rejects_ragged() {
        let dev = Device::rtx4090();
        let _ = segmented_exclusive_scan_f64(&dev, Phase::Other, "ss", &[1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn scan_overflow_detected() {
        let dev = Device::rtx4090();
        let _ = exclusive_scan_u32(&dev, Phase::Other, "scan", &[u32::MAX, 1]);
    }
}
