//! Gather/scatter and stream compaction.
//!
//! Gathers through an index vector are the canonical *uncoalesced*
//! access pattern; the cost here is derived from the actual index stream
//! by counting distinct memory sectors per sampled warp — the same
//! mechanism that makes the paper's bin-packing optimization (§3.4.1)
//! measurable in this simulator.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use crate::warp::{sectors_touched, WarpSampler};
use rayon::prelude::*;

/// `out[i] = src[idx[i]]` for `f32` data, with data-derived coalescing
/// cost. Panics on out-of-range indices.
pub fn gather_f32(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    src: &[f32],
    idx: &[u32],
) -> Vec<f32> {
    let out: Vec<f32> = idx.par_iter().map(|&i| src[i as usize]).collect();
    dev.charge_kernel(name, phase, &gather_cost(dev, idx, 4));
    out
}

/// Cost of gathering `elem_bytes`-wide elements through `idx`: streamed
/// index reads plus one transaction per distinct sector per warp
/// (sampled), plus coalesced writes of the output.
pub fn gather_cost(dev: &Device, idx: &[u32], elem_bytes: usize) -> KernelCost {
    let p = &dev.model().params;
    let n = idx.len();
    let warp = p.warp_size as usize;
    let total_warps = n.div_ceil(warp).max(1);
    let sampler = WarpSampler::new(total_warps);

    let mut sampled_sectors = 0usize;
    let mut addrs = Vec::with_capacity(warp);
    for w in sampler.indices() {
        let s = w * warp;
        let e = (s + warp).min(n);
        addrs.clear();
        addrs.extend(idx[s..e].iter().map(|&i| i as u64 * elem_bytes as u64));
        sampled_sectors += sectors_touched(&addrs, elem_bytes as u32, p.sector_bytes);
    }
    let transactions = sampled_sectors as f64 * sampler.scale();

    KernelCost {
        flops: n as f64,
        dram_bytes: (n * 4) as f64                 // index reads
            + transactions * p.sector_bytes as f64 // gathered reads
            + (n * elem_bytes) as f64, // coalesced writes
        launches: 1.0,
        ..Default::default()
    }
}

/// Split `idx` into `(kept, rejected)` according to per-element `flags`
/// (`true` → kept), preserving order within both halves — the simulated
/// equivalent of a scan-based `thrust::stable_partition`, used to route
/// instances into left/right children (paper §2.4, lines 14–17).
pub fn partition_by_flag(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    idx: &[u32],
    flags: &[bool],
) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(idx.len(), flags.len(), "index/flag length mismatch");
    let n = idx.len();
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    for i in 0..n {
        if flags[i] {
            left.push(idx[i]);
        } else {
            right.push(idx[i]);
        }
    }
    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: 3.0 * n as f64,
            // flag read + index read + scan traffic + scattered write
            dram_bytes: (n * (1 + 4 + 8 + 4)) as f64,
            launches: 2.0, // fused flag scan + two-sided scatter
            ..Default::default()
        },
    );
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_selects_elements() {
        let dev = Device::rtx4090();
        let src = vec![10.0f32, 20.0, 30.0, 40.0];
        let out = gather_f32(&dev, Phase::Other, "g", &src, &[3, 0, 0, 2]);
        assert_eq!(out, vec![40.0, 10.0, 10.0, 30.0]);
    }

    #[test]
    fn sequential_gather_cheaper_than_random() {
        let n = 1 << 18;
        let src = vec![1.0f32; n];
        let seq: Vec<u32> = (0..n as u32).collect();
        // Stride that scatters every lane into its own sector.
        let rnd: Vec<u32> = (0..n as u32).map(|i| (i * 97) % n as u32).collect();

        let d1 = Device::rtx4090();
        let _ = gather_f32(&d1, Phase::Other, "seq", &src, &seq);
        let d2 = Device::rtx4090();
        let _ = gather_f32(&d2, Phase::Other, "rnd", &src, &rnd);
        assert!(d2.now_ns() > d1.now_ns());
    }

    #[test]
    fn partition_preserves_order() {
        let dev = Device::rtx4090();
        let idx = vec![5u32, 6, 7, 8, 9];
        let flags = vec![true, false, true, false, true];
        let (l, r) = partition_by_flag(&dev, Phase::Other, "p", &idx, &flags);
        assert_eq!(l, vec![5, 7, 9]);
        assert_eq!(r, vec![6, 8]);
    }

    #[test]
    fn partition_all_one_side() {
        let dev = Device::rtx4090();
        let idx = vec![1u32, 2, 3];
        let (l, r) = partition_by_flag(&dev, Phase::Other, "p", &idx, &[true; 3]);
        assert_eq!(l, vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn partition_length_mismatch_panics() {
        let dev = Device::rtx4090();
        let _ = partition_by_flag(&dev, Phase::Other, "p", &[1, 2], &[true]);
    }
}
