//! Key sorting and key-grouped reduction — the backbone of the paper's
//! *sort-and-reduce* histogram strategy (§3.3.4).
//!
//! `sort_by_key_u32` is a stable LSD radix sort over 8-bit digits (four
//! passes for 32-bit keys), matching how CUB's `DeviceRadixSort`
//! processes keys; the cost model charges its measured-throughput
//! equivalent. `reduce_by_key_sorted` then collapses runs of equal keys,
//! exactly like `thrust::reduce_by_key` on pre-sorted input.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use rayon::prelude::*;

/// Number of radix passes for 32-bit keys with 8-bit digits.
const RADIX_PASSES: usize = 4;

/// Stable radix sort of `keys`; returns `(sorted_keys, permutation)`
/// where `sorted_keys[i] = keys[permutation[i]]`.
pub fn sort_by_key_u32(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    keys: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let n = keys.len();
    assert!(n < u32::MAX as usize, "sort index space exceeds u32");

    let mut cur_keys: Vec<u32> = keys.to_vec();
    let mut cur_idx: Vec<u32> = (0..n as u32).collect();
    let mut next_keys: Vec<u32> = vec![0; n];
    let mut next_idx: Vec<u32> = vec![0; n];

    for pass in 0..RADIX_PASSES {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &k in &cur_keys {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            offsets[d] = acc;
            acc += counts[d];
        }
        for i in 0..n {
            let d = ((cur_keys[i] >> shift) & 0xFF) as usize;
            let dst = offsets[d];
            offsets[d] += 1;
            next_keys[dst] = cur_keys[i];
            next_idx[dst] = cur_idx[i];
        }
        std::mem::swap(&mut cur_keys, &mut next_keys);
        std::mem::swap(&mut cur_idx, &mut next_idx);
    }

    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            sort_keys: n as f64,
            // Keys + payload move through DRAM once per pass.
            dram_bytes: (n * 8 * RADIX_PASSES) as f64,
            launches: RADIX_PASSES as f64 * 2.0, // histogram + scatter per pass
            ..Default::default()
        },
    );
    (cur_keys, cur_idx)
}

/// Collapse runs of equal keys in pre-sorted input, summing values:
/// returns `(unique_keys, sums)`.
pub fn reduce_by_key_sorted(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    sorted_keys: &[u32],
    vals: &[f64],
) -> (Vec<u32>, Vec<f64>) {
    assert_eq!(sorted_keys.len(), vals.len(), "key/value length mismatch");
    debug_assert!(
        sorted_keys.windows(2).all(|w| w[0] <= w[1]),
        "reduce_by_key_sorted requires sorted keys"
    );
    let n = sorted_keys.len();

    // Head flags → run boundaries, then per-run sequential sums in
    // parallel over runs (deterministic: runs are disjoint).
    let mut boundaries: Vec<usize> = Vec::new();
    for i in 0..n {
        if i == 0 || sorted_keys[i] != sorted_keys[i - 1] {
            boundaries.push(i);
        }
    }
    boundaries.push(n);

    let uniq: Vec<u32> = boundaries[..boundaries.len().saturating_sub(1)]
        .iter()
        .map(|&b| sorted_keys[b])
        .collect();
    let sums: Vec<f64> = boundaries
        .par_windows(2)
        .map(|w| vals[w[0]..w[1]].iter().sum())
        .collect();

    dev.charge_kernel(
        name,
        phase,
        &KernelCost {
            flops: 2.0 * n as f64,
            dram_bytes: (n * 12 + uniq.len() * 12) as f64,
            launches: 2.0,
            ..Default::default()
        },
    );
    (uniq, sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sort_orders_and_permutes() {
        let dev = Device::rtx4090();
        let keys = vec![5u32, 1, 4, 1, 3];
        let (sorted, perm) = sort_by_key_u32(&dev, Phase::Other, "sort", &keys);
        assert_eq!(sorted, vec![1, 1, 3, 4, 5]);
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(sorted[i], keys[p as usize]);
        }
    }

    #[test]
    fn sort_is_stable() {
        let dev = Device::rtx4090();
        // Two equal keys: original order of their indices must persist.
        let keys = vec![2u32, 7, 2, 7, 2];
        let (_, perm) = sort_by_key_u32(&dev, Phase::Other, "sort", &keys);
        assert_eq!(perm, vec![0, 2, 4, 1, 3]);
    }

    #[test]
    fn sort_random_agrees_with_std() {
        let dev = Device::rtx4090();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let keys: Vec<u32> = (0..10_000).map(|_| rng.gen()).collect();
        let (sorted, _) = sort_by_key_u32(&dev, Phase::Other, "sort", &keys);
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn sort_empty() {
        let dev = Device::rtx4090();
        let (s, p) = sort_by_key_u32(&dev, Phase::Other, "sort", &[]);
        assert!(s.is_empty() && p.is_empty());
    }

    #[test]
    fn reduce_by_key_sums_runs() {
        let dev = Device::rtx4090();
        let keys = vec![1u32, 1, 3, 3, 3, 9];
        let vals = vec![1.0, 2.0, 10.0, 20.0, 30.0, 100.0];
        let (uk, sums) = reduce_by_key_sorted(&dev, Phase::Other, "rbk", &keys, &vals);
        assert_eq!(uk, vec![1, 3, 9]);
        assert_eq!(sums, vec![3.0, 60.0, 100.0]);
    }

    #[test]
    fn reduce_by_key_empty() {
        let dev = Device::rtx4090();
        let (uk, sums) = reduce_by_key_sorted(&dev, Phase::Other, "rbk", &[], &[]);
        assert!(uk.is_empty() && sums.is_empty());
    }

    #[test]
    fn sort_reduce_pipeline_builds_histogram() {
        // End-to-end sanity of the sort-and-reduce histogram path.
        let dev = Device::rtx4090();
        let keys = vec![2u32, 0, 2, 1, 0, 2];
        let weights = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let (sorted, perm) = sort_by_key_u32(&dev, Phase::Other, "s", &keys);
        let permuted: Vec<f64> = perm.iter().map(|&p| weights[p as usize]).collect();
        let (uk, sums) = reduce_by_key_sorted(&dev, Phase::Other, "r", &sorted, &permuted);
        assert_eq!(uk, vec![0, 1, 2]);
        assert_eq!(sums, vec![2.0, 1.0, 3.0]);
    }
}
