//! Generic contended histogram over global-memory atomics.
//!
//! This is the simulator-level analogue of the paper's §3.3.2 kernel: a
//! thread per element computes a bin and `atomicAdd`s a weight into a
//! global accumulator. The *result* is computed with deterministic
//! block-partial merging; the *cost* is derived by sampling warps of the
//! actual key stream and measuring intra-warp address collisions, so
//! skewed bin distributions genuinely cost more simulated time than
//! uniform ones — the effect the shared-memory and sort-and-reduce
//! strategies exist to mitigate.
//!
//! The domain-specific multi-output gradient histograms live in
//! `gbdt-core::hist`; this primitive is the shared machinery and a
//! directly-testable model probe.

use crate::cost::KernelCost;
use crate::device::{Device, Phase};
use crate::launch::{run_blocks, LaunchCfg};
use crate::sanitize::{AccessKind, MemSpace, Sanitizer, ThreadCtx};
use crate::warp::{atomic_replay_excess, WarpSampler};

/// Histogram of `weights` over `keys` (bin indices), `nbins` wide, built
/// with simulated global-memory atomics.
///
/// Returns the dense histogram. Panics if any key is out of range.
pub fn atomic_histogram_gmem(
    dev: &Device,
    phase: Phase,
    name: &'static str,
    keys: &[u32],
    weights: &[f64],
    nbins: usize,
) -> Vec<f64> {
    assert_eq!(keys.len(), weights.len(), "key/weight length mismatch");
    let n = keys.len();

    // ---- functional result: deterministic block partials ----
    let cfg = LaunchCfg::for_elems(n.max(1));
    let partials = run_blocks(cfg, |b| {
        let (s, e) = cfg.block_range(b, n);
        let mut local = vec![0.0f64; nbins];
        for i in s..e {
            let k = keys[i] as usize;
            assert!(k < nbins, "key {k} out of range for {nbins} bins");
            local[k] += weights[i];
        }
        local
    });
    let mut hist = vec![0.0f64; nbins];
    for local in partials {
        for (h, l) in hist.iter_mut().zip(local) {
            *h += l;
        }
    }

    // ---- cost: warp-sampled atomic contention ----
    dev.charge_kernel(name, phase, &gmem_histogram_cost(dev, keys, 8));

    // ---- sanitize: declare the access stream the launch implies ----
    if let Some(san) = dev.sanitizer() {
        trace_atomic_histogram(&san, name, cfg, keys, nbins);
    }
    hist
}

/// Maximum warps whose accesses are declared per sanitized launch; the
/// sanitizer extrapolates nothing (it checks, it does not cost), so a
/// deterministic sample keeps logs bounded while still covering the
/// cross-block collision structure.
const MAX_TRACE_WARPS: usize = 256;

/// Declare the per-thread access stream of the global-atomic histogram
/// kernel to the sanitizer: each thread reads its key and weight, then
/// issues one *declared-atomic* update to the histogram bin. Racecheck
/// then verifies the atomicity claim instead of trusting it.
fn trace_atomic_histogram(
    san: &Sanitizer,
    name: &'static str,
    cfg: LaunchCfg,
    keys: &[u32],
    nbins: usize,
) {
    let n = keys.len();
    let scope = san.scope(name);
    let k_id = scope.register("keys", n, MemSpace::Global, true);
    let w_id = scope.register("weights", n, MemSpace::Global, true);
    let h_id = scope.register("hist", nbins, MemSpace::Global, true);
    let warp = 32usize;
    let total_warps = n.div_ceil(warp).max(1);
    let sampler = WarpSampler::with_cap(total_warps, MAX_TRACE_WARPS);
    for w in sampler.indices() {
        let s = w * warp;
        let e = (s + warp).min(n);
        for (i, &key) in keys.iter().enumerate().take(e).skip(s) {
            let ctx = ThreadCtx::from_global(i, cfg.block_threads);
            scope.touch(k_id, ctx, i, AccessKind::Read);
            scope.touch(w_id, ctx, i, AccessKind::Read);
            scope.touch(h_id, ctx, key as usize, AccessKind::Atomic);
        }
    }
}

/// Cost descriptor for a global-atomic histogram over `keys`, where each
/// atomic updates `bytes_per_update` bytes (8 for one f64 counter; the
/// multi-output GBDT kernels pass `2 × d × 4` for d (g,h) pairs).
///
/// Exposed so `gbdt-core` can reuse the same contention accounting for
/// its fused kernels.
pub fn gmem_histogram_cost(dev: &Device, keys: &[u32], bytes_per_update: usize) -> KernelCost {
    let n = keys.len();
    let warp = dev.model().params.warp_size as usize;
    let total_warps = n.div_ceil(warp).max(1);
    let sampler = WarpSampler::new(total_warps);

    let mut sampled_excess = 0u64;
    let mut addrs = Vec::with_capacity(warp);
    for w in sampler.indices() {
        let s = w * warp;
        let e = (s + warp).min(n);
        addrs.clear();
        addrs.extend(keys[s..e].iter().map(|&k| k as u64));
        sampled_excess += atomic_replay_excess(&addrs);
    }
    let replays = sampled_excess as f64 * sampler.scale();

    KernelCost {
        flops: 2.0 * n as f64,
        // Keys streamed in + histogram updates (read-modify-write).
        dram_bytes: (n * 4) as f64 + n as f64 * bytes_per_update as f64,
        gmem_atomics: n as f64,
        gmem_atomic_replays: replays,
        launches: 1.0,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn histogram_counts_correctly() {
        let dev = Device::rtx4090();
        let keys = vec![0u32, 1, 1, 2, 2, 2];
        let weights = vec![1.0; 6];
        let h = atomic_histogram_gmem(&dev, Phase::Other, "h", &keys, &weights, 4);
        assert_eq!(h, vec![1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn histogram_weighted() {
        let dev = Device::rtx4090();
        let keys = vec![1u32, 1, 0];
        let weights = vec![0.5, 0.25, 4.0];
        let h = atomic_histogram_gmem(&dev, Phase::Other, "h", &keys, &weights, 2);
        assert_eq!(h, vec![4.0, 0.75]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let dev = Device::rtx4090();
        let _ = atomic_histogram_gmem(&dev, Phase::Other, "h", &[5], &[1.0], 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let dev = Device::rtx4090();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let keys: Vec<u32> = (0..50_000).map(|_| rng.gen_range(0..256)).collect();
        let weights: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let a = atomic_histogram_gmem(&dev, Phase::Other, "h", &keys, &weights, 256);
        let b = atomic_histogram_gmem(&dev, Phase::Other, "h", &keys, &weights, 256);
        assert_eq!(a, b);
    }

    #[test]
    fn contention_costs_more_simulated_time() {
        // All keys identical (maximum intra-warp collisions) must be
        // slower than uniformly spread keys — the paper's motivation for
        // the shared-memory and sort-and-reduce strategies.
        let n = 1 << 18;
        let uniform: Vec<u32> = (0..n as u32).map(|i| i % 256).collect();
        let skewed = vec![0u32; n];
        let weights = vec![1.0f64; n];

        let dev_u = Device::rtx4090();
        let _ = atomic_histogram_gmem(&dev_u, Phase::Other, "u", &uniform, &weights, 256);
        let dev_s = Device::rtx4090();
        let _ = atomic_histogram_gmem(&dev_s, Phase::Other, "s", &skewed, &weights, 256);

        assert!(
            dev_s.now_ns() > dev_u.now_ns() * 2.0,
            "skewed {} vs uniform {}",
            dev_s.now_ns(),
            dev_u.now_ns()
        );
    }

    #[test]
    fn sanitized_run_is_clean_and_charges_identically() {
        use crate::sanitize::SanitizeMode;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let keys: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..64)).collect();
        let weights = vec![1.0f64; keys.len()];

        let plain = Device::rtx4090();
        let a = atomic_histogram_gmem(&plain, Phase::Other, "h", &keys, &weights, 64);

        let sanitized = Device::rtx4090();
        sanitized.enable_sanitizer(SanitizeMode::Full);
        let b = atomic_histogram_gmem(&sanitized, Phase::Other, "h", &keys, &weights, 64);

        assert_eq!(a, b, "sanitizer must not perturb results");
        assert_eq!(
            plain.now_ns().to_bits(),
            sanitized.now_ns().to_bits(),
            "sanitizer must not charge the ledger"
        );
        let report = sanitized.sanitize_report().expect("sanitizer attached");
        assert!(report.is_clean(), "{}", report.table());
        assert!(report.kernels["h"].atomics > 0, "atomics were declared");
    }

    #[test]
    fn cost_scales_with_update_width() {
        let dev = Device::rtx4090();
        let keys: Vec<u32> = (0..10_000u32).map(|i| i % 64).collect();
        let narrow = gmem_histogram_cost(&dev, &keys, 8);
        let wide = gmem_histogram_cost(&dev, &keys, 80); // d=10 outputs
        assert!(wide.dram_bytes > narrow.dram_bytes * 5.0);
    }
}
