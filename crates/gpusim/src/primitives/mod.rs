//! Data-parallel primitives — the simulator's Thrust/CUB layer.
//!
//! Each primitive (a) computes its real result on the host, parallelized
//! over simulated thread blocks, and (b) charges the owning device for
//! the work using the cost model. Convention: primitives take a
//! [`crate::Device`], a [`crate::Phase`] to attribute the time to, and
//! plain slices for inputs (persistent training state lives in
//! [`crate::GpuBuffer`]s at the crate boundary; inside the device, slices
//! avoid ceremony without changing the accounting, which is descriptor-
//! based rather than per-access).

pub mod gather;
pub mod histogram;
pub mod map;
pub mod reduce;
pub mod scan;
pub mod sort;

pub use gather::{gather_f32, partition_by_flag};
pub use histogram::atomic_histogram_gmem;
pub use map::{fill_f64, map_f32, zip_map_f32};
pub use reduce::{argmax_f64, reduce_sum_f64, segmented_argmax_f64, segmented_reduce_sum_f64};
pub use scan::{exclusive_scan_u32, segmented_exclusive_scan_f64};
pub use sort::{reduce_by_key_sorted, sort_by_key_u32};
