//! Warp-level access-pattern analysis.
//!
//! These helpers inspect the set of addresses touched by the 32 lanes of
//! one warp and derive the hardware penalties the paper's optimizations
//! target: uncoalesced global transactions (§3.4.1 "bin packing"),
//! shared-memory bank conflicts, and atomic replay serialization
//! (§3.3.2/§3.3.3).
//!
//! Analyzing *every* warp of a large kernel would double the simulator's
//! own runtime, so [`WarpSampler`] samples a bounded number of warps with
//! a fixed stride and extrapolates; the sampling is deterministic.

/// Count distinct memory sectors touched by one warp's lane addresses.
///
/// A sector is `sector_bytes` wide (32 B on modern NVIDIA L2). Each lane
/// accesses `access_bytes` starting at its address; accesses that
/// straddle a sector boundary touch both sectors. The returned count is
/// the number of global-memory transactions the warp issues.
pub fn sectors_touched(addrs: &[u64], access_bytes: u32, sector_bytes: u32) -> usize {
    debug_assert!(sector_bytes.is_power_of_two());
    let mut sectors: Vec<u64> = Vec::with_capacity(addrs.len() * 2);
    let sb = sector_bytes as u64;
    for &a in addrs {
        let first = a / sb;
        let last = (a + access_bytes as u64 - 1) / sb;
        sectors.push(first);
        if last != first {
            sectors.push(last);
        }
    }
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len()
}

/// Shared-memory bank-conflict degree of one warp access.
///
/// Shared memory interleaves 4-byte words across `banks` banks. Lanes
/// that read the *same* word are served by a broadcast (no conflict);
/// lanes hitting *different* words in the same bank serialize. The
/// returned degree is the maximum, over banks, of the number of distinct
/// words addressed in that bank — i.e. the number of serialized passes
/// the access takes (1 = conflict-free).
pub fn bank_conflict_degree(addrs: &[u64], banks: u32) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    // (bank, word) pairs; degree = max per-bank count of distinct words.
    let mut pairs: Vec<(u32, u64)> = addrs
        .iter()
        .map(|&a| {
            let word = a / 4;
            ((word % banks as u64) as u32, word)
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut best = 1u32;
    let mut i = 0;
    while i < pairs.len() {
        let bank = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == bank {
            j += 1;
        }
        best = best.max((j - i) as u32);
        i = j;
    }
    best
}

/// Atomic replay degree of one warp's atomic operations.
///
/// Hardware resolves a warp-wide atomic to the same address by replaying
/// the instruction once per colliding lane. The degree is the maximum
/// multiplicity of any single address among the lanes (1 = no replay).
pub fn atomic_replay_degree(addrs: &[u64]) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    let mut sorted = addrs.to_vec();
    sorted.sort_unstable();
    let mut best = 1u32;
    let mut run = 1u32;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best
}

/// Total excess (replayed) atomic operations for one warp: issued ops
/// minus the number of distinct addresses. This is the quantity charged
/// as `*_atomic_replays` in [`crate::KernelCost`].
pub fn atomic_replay_excess(addrs: &[u64]) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    let mut sorted = addrs.to_vec();
    sorted.sort_unstable();
    let mut distinct = 1u64;
    for w in sorted.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    addrs.len() as u64 - distinct
}

/// Deterministic warp sampler: selects up to `max_samples` warps out of
/// `total_warps` with a uniform stride and reports the factor by which
/// sampled statistics must be scaled to estimate the full kernel.
#[derive(Debug, Clone, Copy)]
pub struct WarpSampler {
    /// Total number of warps the kernel executes.
    pub total_warps: usize,
    /// Stride between sampled warps (≥ 1).
    pub stride: usize,
    /// Number of warps that will be sampled.
    pub sampled: usize,
}

impl WarpSampler {
    /// Default cap on sampled warps; keeps modeling overhead a few
    /// percent of functional execution.
    pub const DEFAULT_MAX_SAMPLES: usize = 512;

    /// Build a sampler over `total_warps` with the default cap.
    pub fn new(total_warps: usize) -> Self {
        Self::with_cap(total_warps, Self::DEFAULT_MAX_SAMPLES)
    }

    /// Build a sampler with an explicit cap.
    pub fn with_cap(total_warps: usize, max_samples: usize) -> Self {
        let max_samples = max_samples.max(1);
        if total_warps <= max_samples {
            WarpSampler {
                total_warps,
                stride: 1,
                sampled: total_warps,
            }
        } else {
            let stride = total_warps.div_ceil(max_samples);
            let sampled = total_warps.div_ceil(stride);
            WarpSampler {
                total_warps,
                stride,
                sampled,
            }
        }
    }

    /// Iterate the indices of the sampled warps.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.sampled).map(move |i| i * self.stride)
    }

    /// Scale factor from sampled statistics to the full kernel.
    pub fn scale(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.total_warps as f64 / self.sampled as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_f32_warp_touches_four_sectors() {
        // 32 lanes × 4 B contiguous = 128 B = 4 × 32 B sectors.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(sectors_touched(&addrs, 4, 32), 4);
    }

    #[test]
    fn byte_access_same_sector_is_one_transaction() {
        // 32 lanes × 1 B contiguous = 32 B = 1 sector. This is why bin
        // packing matters: packed u32 reads serve 4 bins per transaction.
        let addrs: Vec<u64> = (0..32).collect();
        assert_eq!(sectors_touched(&addrs, 1, 32), 1);
    }

    #[test]
    fn strided_access_is_uncoalesced() {
        // Stride-32 float accesses: every lane in its own sector.
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(sectors_touched(&addrs, 4, 32), 32);
    }

    #[test]
    fn straddling_access_touches_two_sectors() {
        assert_eq!(sectors_touched(&[30], 4, 32), 2);
        assert_eq!(sectors_touched(&[28], 4, 32), 1);
    }

    #[test]
    fn conflict_free_unit_stride() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(bank_conflict_degree(&addrs, 32), 1);
    }

    #[test]
    fn broadcast_same_word_no_conflict() {
        let addrs = vec![128u64; 32];
        assert_eq!(bank_conflict_degree(&addrs, 32), 1);
    }

    #[test]
    fn stride_two_words_gives_two_way_conflict() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_degree(&addrs, 32), 2);
    }

    #[test]
    fn stride_bank_count_gives_full_serialization() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4 * 32).collect();
        assert_eq!(bank_conflict_degree(&addrs, 32), 32);
    }

    #[test]
    fn replay_degree_counts_max_multiplicity() {
        assert_eq!(atomic_replay_degree(&[1, 2, 3, 4]), 1);
        assert_eq!(atomic_replay_degree(&[7, 7, 7, 3]), 3);
        assert_eq!(atomic_replay_degree(&[5; 32]), 32);
        assert_eq!(atomic_replay_degree(&[]), 0);
    }

    #[test]
    fn replay_excess_is_ops_minus_distinct() {
        assert_eq!(atomic_replay_excess(&[1, 2, 3, 4]), 0);
        assert_eq!(atomic_replay_excess(&[7, 7, 7, 3]), 2);
        assert_eq!(atomic_replay_excess(&[5; 32]), 31);
        assert_eq!(atomic_replay_excess(&[]), 0);
    }

    #[test]
    fn sampler_covers_small_kernels_exactly() {
        let s = WarpSampler::new(100);
        assert_eq!(s.sampled, 100);
        assert_eq!(s.stride, 1);
        assert!((s.scale() - 1.0).abs() < 1e-12);
        assert_eq!(s.indices().count(), 100);
    }

    #[test]
    fn sampler_caps_large_kernels() {
        let s = WarpSampler::new(1_000_000);
        assert!(s.sampled <= WarpSampler::DEFAULT_MAX_SAMPLES);
        assert!(s.scale() > 1.0);
        let idx: Vec<usize> = s.indices().collect();
        assert!(idx.iter().all(|&i| i < 1_000_000));
        // Deterministic: same sampler, same indices.
        let idx2: Vec<usize> = WarpSampler::new(1_000_000).indices().collect();
        assert_eq!(idx, idx2);
    }

    #[test]
    fn sampler_scale_times_sampled_approximates_total() {
        let s = WarpSampler::new(12345);
        let est = s.scale() * s.sampled as f64;
        assert!((est - 12345.0).abs() < 1.0);
    }

    // ---- edge cases ----------------------------------------------------

    #[test]
    fn bank_conflict_all_lanes_same_bank_distinct_words() {
        // 32 lanes, each a *different* word in bank 0 (stride = banks
        // words): worst case, fully serialized.
        let banks = 32u32;
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4 * banks as u64).collect();
        assert_eq!(bank_conflict_degree(&addrs, banks), banks);
        // Duplicate those addresses: broadcast dedup keeps degree at 32.
        let doubled: Vec<u64> = addrs.iter().chain(addrs.iter()).copied().collect();
        assert_eq!(bank_conflict_degree(&doubled, banks), banks);
    }

    #[test]
    fn bank_conflict_empty_addrs_is_zero() {
        assert_eq!(bank_conflict_degree(&[], 32), 0);
    }

    #[test]
    fn bank_conflict_single_lane_is_one_pass() {
        assert_eq!(bank_conflict_degree(&[4096], 32), 1);
    }

    #[test]
    fn replay_duplicate_free_lanes_have_no_excess() {
        let addrs: Vec<u64> = (0..32).map(|i| 1000 + i * 4).collect();
        assert_eq!(atomic_replay_degree(&addrs), 1);
        assert_eq!(atomic_replay_excess(&addrs), 0);
    }

    #[test]
    fn replay_all_duplicate_lanes_fully_serialize() {
        let addrs = vec![42u64; 32];
        assert_eq!(atomic_replay_degree(&addrs), 32);
        assert_eq!(atomic_replay_excess(&addrs), 31);
        // Single lane: degree 1, no excess.
        assert_eq!(atomic_replay_degree(&[42]), 1);
        assert_eq!(atomic_replay_excess(&[42]), 0);
    }

    #[test]
    fn replay_excess_consistent_with_degree_bound() {
        // excess ≤ ops − ops/degree for any multiset.
        let addrs = vec![1u64, 1, 2, 2, 2, 3];
        assert_eq!(atomic_replay_degree(&addrs), 3);
        assert_eq!(atomic_replay_excess(&addrs), 3); // 6 ops − 3 distinct
    }

    #[test]
    fn sampler_with_cap_zero_warps() {
        let s = WarpSampler::with_cap(0, 64);
        assert_eq!(s.sampled, 0);
        assert_eq!(s.indices().count(), 0);
        assert_eq!(s.scale(), 0.0);
    }

    #[test]
    fn sampler_with_cap_zero_cap_is_clamped_to_one() {
        let s = WarpSampler::with_cap(1000, 0);
        assert_eq!(s.sampled, 1);
        assert!(s.stride >= 1000);
        let idx: Vec<usize> = s.indices().collect();
        assert_eq!(idx, vec![0]);
        assert!((s.scale() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_with_cap_indices_stay_in_bounds_and_respect_cap() {
        for total in [1usize, 2, 7, 63, 64, 65, 511, 512, 513, 100_000] {
            for cap in [1usize, 2, 3, 64, 512] {
                let s = WarpSampler::with_cap(total, cap);
                assert!(s.sampled <= cap.max(1), "total={total} cap={cap}");
                assert!(s.sampled <= total.max(0));
                let idx: Vec<usize> = s.indices().collect();
                assert_eq!(idx.len(), s.sampled);
                assert!(idx.iter().all(|&i| i < total.max(1)));
                // Indices are strictly increasing (deterministic stride).
                assert!(idx.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
