//! Differential oracle: the simulated-GPU pipeline against the CPU
//! GBDT-MO baseline (`gbdt-baselines::CpuMoTrainer`).
//!
//! Both trainers implement the *same algorithm* (shared binning,
//! histogram, split-search, and leaf-value helpers) on different
//! execution substrates, so they must agree **split for split**: every
//! tree, every internal node (feature, bin, threshold, topology), and
//! every leaf vector. Any divergence means one side's kernel decomposed
//! the math differently — exactly the class of bug a simulator can hide.
//!
//! Three seeded dataset families cover the paper's task spread:
//! regression (RF1-like), multiclass (MNIST-like), and sparse
//! multilabel (NUS-WIDE-like).

use gbdt_baselines::{CpuMoTrainer, CpuStorage};
use gbdt_core::config::{HistogramMethod, TrainConfig};
use gbdt_core::tree::Node;
use gbdt_core::GpuTrainer;
use gbdt_data::synth::{
    make_classification, make_multilabel, make_regression, ClassificationSpec, MultilabelSpec,
    RegressionSpec,
};
use gbdt_data::Dataset;
use gpusim::Device;

fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            "regression",
            make_regression(&RegressionSpec {
                instances: 500,
                features: 12,
                outputs: 4,
                informative: 8,
                noise: 0.1,
                seed: 7,
                ..Default::default()
            }),
        ),
        (
            "classification",
            make_classification(&ClassificationSpec {
                instances: 500,
                features: 16,
                classes: 5,
                informative: 10,
                seed: 21,
                ..Default::default()
            }),
        ),
        (
            "multilabel",
            make_multilabel(&MultilabelSpec {
                instances: 400,
                features: 30,
                labels: 6,
                sparsity: 0.3,
                seed: 35,
                ..Default::default()
            }),
        ),
    ]
}

fn config() -> TrainConfig {
    TrainConfig {
        num_trees: 3,
        max_depth: 5,
        max_bins: 64,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

/// Node-by-node comparison: identical topology, identical split
/// decisions, bit-identical leaf vectors.
fn assert_trees_agree(tag: &str, gpu: &gbdt_core::model::Model, cpu: &gbdt_core::model::Model) {
    assert_eq!(
        gpu.trees.len(),
        cpu.trees.len(),
        "{tag}: ensemble sizes differ"
    );
    for (t, (tg, tc)) in gpu.trees.iter().zip(&cpu.trees).enumerate() {
        assert_eq!(
            tg.num_nodes(),
            tc.num_nodes(),
            "{tag}: tree {t} node counts differ"
        );
        for (i, (ng, nc)) in tg.nodes().iter().zip(tc.nodes()).enumerate() {
            match (ng, nc) {
                (
                    Node::Split {
                        feature: fg,
                        bin: bg,
                        threshold: hg,
                        left: lg,
                        right: rg,
                    },
                    Node::Split {
                        feature: fc,
                        bin: bc,
                        threshold: hc,
                        left: lc,
                        right: rc,
                    },
                ) => {
                    assert_eq!(fg, fc, "{tag}: tree {t} node {i} split feature");
                    assert_eq!(bg, bc, "{tag}: tree {t} node {i} split bin");
                    assert_eq!(
                        hg.to_bits(),
                        hc.to_bits(),
                        "{tag}: tree {t} node {i} threshold"
                    );
                    assert_eq!((lg, rg), (lc, rc), "{tag}: tree {t} node {i} topology");
                }
                (Node::Leaf { value: vg }, Node::Leaf { value: vc }) => {
                    assert_eq!(vg.len(), vc.len(), "{tag}: tree {t} leaf {i} dim");
                    for (k, (a, b)) in vg.iter().zip(vc).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                            "{tag}: tree {t} leaf {i} output {k}: gpu={a} cpu={b}"
                        );
                    }
                }
                _ => panic!("{tag}: tree {t} node {i} kind mismatch (split vs leaf)"),
            }
        }
    }
}

/// Every histogram method on the simulated GPU must reproduce the CPU
/// oracle's trees on all three task families.
#[test]
fn gpu_pipeline_matches_cpu_oracle_split_for_split() {
    for (tag, ds) in datasets() {
        let cpu = CpuMoTrainer::new(config(), CpuStorage::Dense).fit(&ds);
        for m in [
            HistogramMethod::GlobalMemory,
            HistogramMethod::SharedMemory,
            HistogramMethod::SortReduce,
            HistogramMethod::Adaptive,
        ] {
            let gpu = GpuTrainer::new(Device::rtx4090(), config().with_hist_method(m)).fit(&ds);
            assert_trees_agree(&format!("{tag}/{m:?}"), &gpu, &cpu);
        }
    }
}

/// The sparse-storage CPU variant is algorithmically equivalent to the
/// dense one, so it inherits the same oracle agreement.
#[test]
fn sparse_cpu_storage_agrees_with_gpu() {
    for (tag, ds) in datasets() {
        let cpu = CpuMoTrainer::new(config(), CpuStorage::Sparse).fit(&ds);
        let gpu = GpuTrainer::new(
            Device::rtx4090(),
            config().with_hist_method(HistogramMethod::SharedMemory),
        )
        .fit(&ds);
        assert_trees_agree(&format!("{tag}/sparse"), &gpu, &cpu);
    }
}

/// Predictions from oracle-equal models agree on held-out-style inputs
/// (the training features double as probes here; routing is what's
/// under test, not generalisation).
#[test]
fn predictions_agree_with_oracle() {
    for (tag, ds) in datasets() {
        let cpu = CpuMoTrainer::new(config(), CpuStorage::Dense).fit(&ds);
        let gpu = GpuTrainer::new(
            Device::rtx4090(),
            config().with_hist_method(HistogramMethod::Adaptive),
        )
        .fit(&ds);
        let pa = gpu.predict(ds.features());
        let pb = cpu.predict(ds.features());
        assert_eq!(pa.len(), pb.len());
        for (i, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "{tag}: prediction {i}: gpu={a} cpu={b}"
            );
        }
    }
}
