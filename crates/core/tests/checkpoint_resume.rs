//! Property test: checkpoint after tree `t`, resume on a fresh device,
//! and the resumed run is bit-identical to the uninterrupted one — for
//! every histogram method × output-sketch mode combination.
//!
//! "Bit-identical" covers three layers: the grown trees, the final
//! predictions, and the simulated charge stream (the resumed device's
//! records after its two preprocess charges must match the tail of the
//! uninterrupted device's stream exactly, name and bit-pattern).

use gbdt_core::config::{OutputSketch, TrainConfig};
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{Checkpoint, HistOptions, HistogramMethod};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::{Device, DeviceProps};

fn dataset() -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 250,
        features: 8,
        classes: 6,
        informative: 6,
        seed: 9,
        ..Default::default()
    })
}

fn grid() -> Vec<(HistogramMethod, OutputSketch)> {
    let methods = [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ];
    let sketches = [
        OutputSketch::None,
        OutputSketch::TopOutputs(2),
        OutputSketch::RandomSampling(2),
        OutputSketch::RandomProjection(2),
    ];
    methods
        .into_iter()
        .flat_map(|h| sketches.into_iter().map(move |s| (h, s)))
        .collect()
}

#[test]
fn resume_is_bit_identical_across_hist_methods_and_sketches() {
    let ds = dataset();
    for (hist, sketch) in grid() {
        let cfg = TrainConfig {
            num_trees: 6,
            max_depth: 3,
            max_bins: 16,
            min_instances: 5,
            hist: HistOptions {
                method: hist,
                ..HistOptions::default()
            },
            sketch,
            ..TrainConfig::default()
        };
        let label = format!("{hist:?}/{}", sketch.label());

        let dev_a = Device::new(0, DeviceProps::rtx4090());
        let trainer = GpuTrainer::try_new(dev_a.clone(), cfg.clone())
            .unwrap_or_else(|e| panic!("{label}: invalid config: {e}"));
        let (full, checkpoints) = trainer
            .try_fit_checkpointed(&ds)
            .unwrap_or_else(|e| panic!("{label}: checkpointed fit failed: {e}"));
        assert_eq!(checkpoints.len(), 6, "{label}: one checkpoint per tree");

        let ck = checkpoints
            .iter()
            .find(|c| c.completed_trees == 3)
            .unwrap_or_else(|| panic!("{label}: no checkpoint at tree 3"));
        // Serialization roundtrip must preserve the resume point.
        let ck = Checkpoint::from_bytes(&ck.to_bytes())
            .unwrap_or_else(|e| panic!("{label}: checkpoint roundtrip failed: {e}"));
        assert_eq!(ck.completed_trees, 3);

        let dev_b = Device::new(0, DeviceProps::rtx4090());
        let resumed = gbdt_core::Model::resume_from(dev_b.clone(), &ck, &ds)
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));

        assert_eq!(
            resumed.model.trees, full.model.trees,
            "{label}: resumed trees diverged"
        );
        assert_eq!(
            resumed.model.predict(ds.features()),
            full.model.predict(ds.features()),
            "{label}: resumed predictions diverged"
        );

        // Charge-stream identity: after its preprocess re-charges
        // (htod_features + quantile_binning), the resumed device must
        // book exactly the tail of the uninterrupted stream.
        let a = dev_a.records();
        let b = dev_b.records();
        assert!(b.len() > 2, "{label}: resumed run booked no round work");
        let tail = &b[2..];
        assert!(
            a.len() >= tail.len(),
            "{label}: resumed stream longer than the full run"
        );
        let a_tail = &a[a.len() - tail.len()..];
        for (x, y) in a_tail.iter().zip(tail) {
            assert_eq!(x.name, y.name, "{label}: kernel sequence drifted");
            assert_eq!(
                x.ns.to_bits(),
                y.ns.to_bits(),
                "{label}: {} charge drifted on resume",
                x.name
            );
        }
    }
}

/// Resuming from the final checkpoint grows nothing: the model is
/// already complete and only the preprocess charges are booked.
#[test]
fn resume_from_final_checkpoint_is_a_no_op_fit() {
    let ds = dataset();
    let cfg = TrainConfig {
        num_trees: 4,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    };
    let dev_a = Device::new(0, DeviceProps::rtx4090());
    let (full, checkpoints) = GpuTrainer::try_new(dev_a, cfg)
        .expect("valid config")
        .try_fit_checkpointed(&ds)
        .expect("fit succeeds");
    let last = checkpoints.last().expect("checkpoints recorded");
    assert_eq!(last.completed_trees, 4);

    let dev_b = Device::new(0, DeviceProps::rtx4090());
    let resumed = gbdt_core::Model::resume_from(dev_b.clone(), last, &ds).expect("resume");
    assert_eq!(resumed.model.trees, full.model.trees);
    assert_eq!(
        dev_b.records().len(),
        2,
        "only htod_features + quantile_binning should be charged"
    );
}

/// A checkpoint taken against one dataset refuses to resume against a
/// mismatched one — typed error, not a wrong model.
#[test]
fn resume_rejects_mismatched_dataset() {
    let ds = dataset();
    let cfg = TrainConfig {
        num_trees: 3,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    };
    let (_, checkpoints) = GpuTrainer::try_new(Device::rtx4090(), cfg)
        .expect("valid config")
        .try_fit_checkpointed(&ds)
        .expect("fit succeeds");
    let ck = &checkpoints[0];

    let other = make_classification(&ClassificationSpec {
        instances: 100,
        features: 8,
        classes: 6,
        informative: 6,
        seed: 10,
        ..Default::default()
    });
    let err = gbdt_core::Model::resume_from(Device::rtx4090(), ck, &other)
        .expect_err("shape mismatch must be rejected");
    assert!(!err.to_string().is_empty());
}

/// Corrupted checkpoint bytes are a typed error, never a panic.
#[test]
fn corrupted_checkpoint_bytes_are_typed_errors() {
    let ds = dataset();
    let cfg = TrainConfig {
        num_trees: 3,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    };
    let (_, checkpoints) = GpuTrainer::try_new(Device::rtx4090(), cfg)
        .expect("valid config")
        .try_fit_checkpointed(&ds)
        .expect("fit succeeds");
    let bytes = checkpoints[1].to_bytes();

    // Truncation at every prefix length must fail cleanly.
    for len in 0..bytes.len().min(96) {
        assert!(
            Checkpoint::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }
    // Bad magic.
    let mut bad = bytes.to_vec();
    bad[0] ^= 0xFF;
    assert!(Checkpoint::from_bytes(&bad).is_err());
    // Bad version.
    let mut bad = bytes.to_vec();
    bad[4] = 0xFF;
    assert!(Checkpoint::from_bytes(&bad).is_err());
}
