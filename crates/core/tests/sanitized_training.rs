//! Full-pipeline sanitizer tests (the PR's acceptance gate):
//!
//! 1. A complete sanitized boosting round — for **every** histogram
//!    method, including adaptive — reports **zero** violations across
//!    the histogram builders, the partition kernel, and the leaf-value
//!    kernels, and the traced kernel set actually covers them.
//! 2. Turning the sanitizer **off** is free: the trained model's
//!    predictions are bit-identical and the simulated timeline is
//!    exactly equal to a run that never knew the sanitizer existed.

use gbdt_core::config::{HistogramMethod, TrainConfig};
use gbdt_core::GpuTrainer;
use gbdt_data::synth::{make_regression, RegressionSpec};
use gbdt_data::Dataset;
use gpusim::{Device, SanitizeMode};

fn dataset() -> Dataset {
    make_regression(&RegressionSpec {
        instances: 400,
        features: 8,
        outputs: 3,
        informative: 6,
        noise: 0.05,
        seed: 11,
        ..Default::default()
    })
}

fn config(m: HistogramMethod) -> TrainConfig {
    TrainConfig {
        num_trees: 2,
        max_depth: 4,
        max_bins: 32,
        min_instances: 5,
        ..TrainConfig::default()
    }
    .with_hist_method(m)
}

#[test]
fn sanitized_training_round_is_clean_for_every_method() {
    let ds = dataset();
    for m in [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ] {
        let device = Device::rtx4090();
        device.enable_sanitizer(SanitizeMode::Full);
        let _model = GpuTrainer::new(device.clone(), config(m)).fit(&ds);
        let report = device.sanitize_report().expect("sanitizer enabled");
        assert!(
            report.is_clean(),
            "{m:?}: sanitized training must be violation-free, got {:#?}",
            report.violations
        );
        assert!(report.total_accesses > 0, "{m:?}: nothing was traced");
        // The pipeline's kernels were actually covered, not skipped.
        for required in ["partition_level", "leaf_values", "update_scores"] {
            assert!(
                report.kernels.contains_key(required),
                "{m:?}: kernel {required} missing from {:?}",
                report.kernels.keys().collect::<Vec<_>>()
            );
        }
        let hist_traced = report.kernels.keys().any(|k| {
            k.starts_with("hist_gmem") || k.starts_with("hist_smem") || *k == "hist_sort_reduce"
        });
        assert!(hist_traced, "{m:?}: no histogram kernel was traced");
    }
}

#[test]
fn histogram_builders_declare_verified_atomics() {
    let ds = dataset();
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Full);
    let _ = GpuTrainer::new(device.clone(), config(HistogramMethod::GlobalMemory)).fit(&ds);
    let report = device.sanitize_report().expect("enabled");
    let atomics: u64 = report
        .kernels
        .iter()
        .filter(|(k, _)| k.starts_with("hist_gmem"))
        .map(|(_, s)| s.atomics)
        .sum();
    assert!(
        atomics > 0,
        "gmem histogram updates must be declared atomic"
    );
}

#[test]
fn sanitizer_off_is_bit_identical_to_never_enabled() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive);

    let plain = Device::rtx4090();
    let model_plain = GpuTrainer::new(plain.clone(), cfg.clone()).fit(&ds);

    let sanitized = Device::rtx4090();
    sanitized.enable_sanitizer(SanitizeMode::Full);
    let model_san = GpuTrainer::new(sanitized.clone(), cfg.clone()).fit(&ds);

    // Functional results do not shift by a single bit…
    let p_plain = model_plain.predict(ds.features());
    let p_san = model_san.predict(ds.features());
    assert_eq!(p_plain.len(), p_san.len());
    for (a, b) in p_plain.iter().zip(&p_san) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // …and the simulated timeline is exactly the one the paper's cost
    // model would produce with no sanitizer in the build.
    assert_eq!(
        plain.now_ns().to_bits(),
        sanitized.now_ns().to_bits(),
        "sanitizer must never charge the ledger"
    );

    // A third device with the sanitizer enabled then disabled matches too.
    let toggled = Device::rtx4090();
    toggled.enable_sanitizer(SanitizeMode::Full);
    toggled.disable_sanitizer();
    let model_toggled = GpuTrainer::new(toggled.clone(), cfg).fit(&ds);
    let p_toggled = model_toggled.predict(ds.features());
    for (a, b) in p_plain.iter().zip(&p_toggled) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(plain.now_ns().to_bits(), toggled.now_ns().to_bits());
}

#[test]
fn streamed_histogram_charging_still_traces() {
    // streams > 1 takes the LPT branch in HistCharges::charge, which
    // bypasses the builders' charge() entry points; trace_hist must
    // cover it explicitly.
    let ds = dataset();
    let device = Device::rtx4090();
    device.enable_sanitizer(SanitizeMode::Full);
    let cfg = TrainConfig {
        streams: 4,
        ..config(HistogramMethod::GlobalMemory)
    };
    let _ = GpuTrainer::new(device.clone(), cfg).fit(&ds);
    let report = device.sanitize_report().expect("enabled");
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert!(
        report.kernels.keys().any(|k| k.starts_with("hist_gmem")),
        "streamed charging must still declare histogram accesses: {:?}",
        report.kernels.keys().collect::<Vec<_>>()
    );
}
