//! Zero-perturbation contract for the telemetry registry.
//!
//! Telemetry is an *observer*: attached, detached, or toggled mid-run,
//! it must change nothing the simulation can measure — trees,
//! predictions, the device clock, and every charge record are
//! bit-identical with the registry on or off. These tests pin that
//! contract across the full histogram-method × sketch grid, multi-GPU
//! training under both strategies, and batched serving, and then prove
//! the flight recorder actually pays for its keep: a seeded device
//! loss must leave behind a non-empty, parseable postmortem.

use gbdt_core::config::{OutputSketch, TrainConfig};
use gbdt_core::serve::{BatchConfig, BatchServer, DeviceEnsemble};
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{
    HistOptions, HistogramMethod, MultiGpuStrategy, MultiGpuTrainer, RetryPolicy, TrainError,
};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::{Device, DeviceGroup, DeviceProps, FaultPlan, Telemetry};
use serde::Value;
use std::sync::Arc;

fn dataset() -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 250,
        features: 8,
        classes: 6,
        informative: 6,
        seed: 9,
        ..Default::default()
    })
}

fn grid() -> Vec<(HistogramMethod, OutputSketch)> {
    let methods = [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ];
    let sketches = [
        OutputSketch::None,
        OutputSketch::TopOutputs(2),
        OutputSketch::RandomSampling(2),
        OutputSketch::RandomProjection(2),
    ];
    methods
        .into_iter()
        .flat_map(|h| sketches.into_iter().map(move |s| (h, s)))
        .collect()
}

fn config(hist: HistogramMethod, sketch: OutputSketch, streams: usize) -> TrainConfig {
    TrainConfig {
        num_trees: 4,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        hist: HistOptions {
            method: hist,
            ..HistOptions::default()
        },
        sketch,
        streams,
        ..TrainConfig::default()
    }
}

/// Charge streams must agree bit-for-bit: names, durations, start
/// stamps, and stream assignments.
fn assert_records_identical(label: &str, plain: &Arc<Device>, observed: &Arc<Device>) {
    assert_eq!(
        plain.now_ns().to_bits(),
        observed.now_ns().to_bits(),
        "{label}: telemetry perturbed the clock"
    );
    let (a, b) = (plain.records(), observed.records());
    assert_eq!(
        a.len(),
        b.len(),
        "{label}: telemetry perturbed charge count"
    );
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name, "{label}: charge order changed");
        assert_eq!(x.ns.to_bits(), y.ns.to_bits(), "{label}: {} ns", x.name);
        assert_eq!(
            x.start_ns.to_bits(),
            y.start_ns.to_bits(),
            "{label}: {} start",
            x.name
        );
        assert_eq!(x.stream, y.stream, "{label}: {} stream", x.name);
    }
}

/// Headline zero-perturbation sweep: the full hist-method × sketch
/// grid, plain device vs. telemetry-enabled device. The registry must
/// also come back non-trivial — it watched the run, it just didn't
/// touch it.
#[test]
fn telemetry_is_invisible_across_methods_and_sketches() {
    let ds = dataset();
    for (hist, sketch) in grid() {
        let label = format!("{hist:?}/{}", sketch.label());
        let cfg = config(hist, sketch, 1);

        let plain_dev = Device::new(0, DeviceProps::rtx4090());
        let plain = GpuTrainer::new(plain_dev.clone(), cfg.clone()).fit(&ds);

        let tel_dev = Device::new(0, DeviceProps::rtx4090());
        let tel = tel_dev.enable_telemetry();
        let observed = GpuTrainer::new(tel_dev.clone(), cfg).fit(&ds);

        assert_eq!(
            plain.predict(ds.features()),
            observed.predict(ds.features()),
            "{label}: telemetry perturbed the model"
        );
        assert_records_identical(&label, &plain_dev, &tel_dev);

        let snap = tel.snapshot();
        assert_eq!(
            snap.counters.get("train.rounds_total").copied(),
            Some(4),
            "{label}: registry missed training rounds"
        );
        assert!(
            snap.charges_recorded > 0,
            "{label}: flight recorder saw no charges"
        );
    }
}

/// Toggling mid-run is still invisible: train with the registry
/// attached, detach it, train again on the same device, re-attach a
/// fresh one, train a third time — the clock and charge stream must
/// match a device that never carried telemetry through the same three
/// fits.
#[test]
fn telemetry_toggled_mid_run_is_invisible() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::TopOutputs(2), 2);

    let plain_dev = Device::new(0, DeviceProps::rtx4090());
    let mut plain_preds = Vec::new();
    for _ in 0..3 {
        let model = GpuTrainer::new(plain_dev.clone(), cfg.clone()).fit(&ds);
        plain_preds.push(model.predict(ds.features()));
    }

    let tog_dev = Device::new(0, DeviceProps::rtx4090());
    let mut tog_preds = Vec::new();
    tog_dev.enable_telemetry();
    tog_preds.push(
        GpuTrainer::new(tog_dev.clone(), cfg.clone())
            .fit(&ds)
            .predict(ds.features()),
    );
    tog_dev.disable_telemetry();
    tog_preds.push(
        GpuTrainer::new(tog_dev.clone(), cfg.clone())
            .fit(&ds)
            .predict(ds.features()),
    );
    let tel = tog_dev.enable_telemetry();
    tog_preds.push(
        GpuTrainer::new(tog_dev.clone(), cfg)
            .fit(&ds)
            .predict(ds.features()),
    );

    assert_eq!(plain_preds, tog_preds, "toggling telemetry changed models");
    assert_records_identical("toggled", &plain_dev, &tog_dev);
    // The final registry only watched the third fit.
    assert_eq!(
        tel.snapshot().counters.get("train.rounds_total").copied(),
        Some(4),
        "re-attached registry should see exactly one fit"
    );
}

/// Multi-GPU: one registry shared by every group member (the
/// `attach_telemetry` pattern) perturbs neither strategy — predictions
/// and every member's charge stream stay bit-identical, while the
/// group-level series (collective bytes, makespan skew) land in the
/// shared registry.
#[test]
fn telemetry_is_invisible_to_multi_gpu_training() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::None, 1);
    for strategy in [
        MultiGpuStrategy::FeatureParallel,
        MultiGpuStrategy::DataParallel,
    ] {
        let label = format!("{strategy:?}");

        let plain_group = DeviceGroup::rtx4090s(2);
        let plain =
            MultiGpuTrainer::with_strategy(plain_group.clone(), cfg.clone(), strategy).fit(&ds);

        let tel_group = DeviceGroup::rtx4090s(2);
        let tel = Arc::new(Telemetry::new());
        for dev in tel_group.devices() {
            dev.attach_telemetry(Arc::clone(&tel));
        }
        let observed =
            MultiGpuTrainer::with_strategy(tel_group.clone(), cfg.clone(), strategy).fit(&ds);

        assert_eq!(
            plain.predict(ds.features()),
            observed.predict(ds.features()),
            "{label}: telemetry perturbed the multi-GPU model"
        );
        for (p, t) in plain_group.devices().iter().zip(tel_group.devices()) {
            assert_records_identical(&label, p, t);
        }

        let snap = tel.snapshot();
        assert!(
            snap.counters
                .get("multigpu.collective_bytes")
                .copied()
                .unwrap_or(0)
                > 0,
            "{label}: no collective bytes were counted"
        );
        assert!(
            snap.gauges.contains_key("multigpu.makespan_skew_ns"),
            "{label}: makespan skew gauge never set"
        );
    }
}

/// Serving: a telemetry-carrying device serves the same batches with
/// bit-identical outputs and charges, and toggling the registry
/// between submissions changes nothing either.
#[test]
fn telemetry_is_invisible_to_serving() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::None, 1);
    let compiled = GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds).compile();
    let rows: Vec<Vec<f32>> = (0..24).map(|i| ds.features().row(i).to_vec()).collect();

    let drive = |server: &mut BatchServer, toggle_dev: Option<&Arc<Device>>| {
        let mut out = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if i == rows.len() / 2 {
                if let Some(dev) = toggle_dev {
                    // Mid-stream toggle: detach, re-attach fresh.
                    dev.disable_telemetry();
                    dev.enable_telemetry();
                }
            }
            for batch in server.submit(i as f64 * 50.0, row) {
                out.extend(batch.scores);
            }
        }
        if let Some(batch) = server.flush() {
            out.extend(batch.scores);
        }
        out
    };

    let plain_dev = Device::rtx4090();
    let mut plain_srv = BatchServer::new(
        DeviceEnsemble::upload(Arc::clone(&plain_dev), &compiled),
        BatchConfig::default(),
    )
    .expect("valid config");
    let plain_out = drive(&mut plain_srv, None);

    let tel_dev = Device::rtx4090();
    let tel = tel_dev.enable_telemetry();
    let mut tel_srv = BatchServer::new(
        DeviceEnsemble::upload(Arc::clone(&tel_dev), &compiled),
        BatchConfig::default(),
    )
    .expect("valid config");
    let tel_out = drive(&mut tel_srv, None);

    let tog_dev = Device::rtx4090();
    tog_dev.enable_telemetry();
    let mut tog_srv = BatchServer::new(
        DeviceEnsemble::upload(Arc::clone(&tog_dev), &compiled),
        BatchConfig::default(),
    )
    .expect("valid config");
    let tog_out = drive(&mut tog_srv, Some(&tog_dev));

    assert_eq!(plain_out, tel_out, "telemetry perturbed served outputs");
    assert_eq!(plain_out, tog_out, "toggling perturbed served outputs");
    assert_records_identical("serve", &plain_dev, &tel_dev);
    assert_records_identical("serve-toggled", &plain_dev, &tog_dev);
    assert!(
        tel.snapshot()
            .counters
            .get("serve.requests_total")
            .copied()
            .unwrap_or(0)
            > 0,
        "registry missed served requests"
    );
}

/// The per-phase nanosecond series in the registry must reconcile
/// *bitwise* with the device ledger — same clamps, same accumulation
/// order, both directions.
#[test]
fn phase_ns_reconciles_bitwise_with_the_ledger() {
    let ds = dataset();
    let dev = Device::new(0, DeviceProps::rtx4090());
    let tel = dev.enable_telemetry();
    let model = GpuTrainer::new(
        dev.clone(),
        config(HistogramMethod::Adaptive, OutputSketch::TopOutputs(2), 2),
    )
    .fit(&ds);
    // Fold serving into the same timeline so the Serve phase is present.
    let ens = DeviceEnsemble::upload(dev.clone(), &model.compile());
    let mut server = BatchServer::new(ens, BatchConfig::default()).expect("valid config");
    let t0 = dev.now_ns();
    for i in 0..8 {
        server.submit(t0 + i as f64, ds.features().row(i));
    }
    server.flush();

    let ledger = dev.summary();
    let snap = tel.snapshot();
    for (phase, ledger_ns) in &ledger.by_phase {
        assert_eq!(
            snap.phase_ns.get(phase.name()).map(|ns| ns.to_bits()),
            Some(ledger_ns.to_bits()),
            "phase {} drifted from the ledger",
            phase.name()
        );
    }
    for name in snap.phase_ns.keys() {
        assert!(
            ledger.by_phase.keys().any(|p| p.name() == name),
            "telemetry invented phase {name}"
        );
    }
}

/// Acceptance criterion: a seeded `DeviceLost` run leaves a non-empty
/// flight-recorder postmortem whose JSON parses, names the failure,
/// and carries the events leading up to it.
#[test]
fn seeded_device_loss_dumps_a_nonempty_postmortem() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::None, 1)
        .with_retry(RetryPolicy::retries(1));
    let mut dumped = false;
    for seed in 0..64u64 {
        let dev = Device::new(0, DeviceProps::rtx4090());
        let tel = dev.enable_telemetry();
        dev.enable_faults(FaultPlan::seeded(seed, 150));
        let trainer = GpuTrainer::try_new(dev.clone(), cfg.clone()).expect("valid config");
        match trainer.try_fit(&ds) {
            Err(TrainError::DeviceLost { .. }) => {
                let json = tel
                    .last_postmortem_json()
                    .expect("device loss must record a postmortem");
                assert!(!json.is_empty());
                let doc: Value = serde_json::from_str(&json).expect("postmortem JSON must parse");
                let obj = doc.as_object().expect("postmortem is an object");
                let events = obj
                    .iter()
                    .find(|(k, _)| k == "events")
                    .and_then(|(_, v)| v.as_array())
                    .expect("postmortem carries an events array");
                assert!(!events.is_empty(), "flight-recorder ring was empty");
                let reason = obj
                    .iter()
                    .find(|(k, _)| k == "reason")
                    .and_then(|(_, v)| v.as_str())
                    .expect("postmortem names its reason");
                assert!(
                    reason.contains("lost"),
                    "reason should describe the loss: {reason}"
                );
                dumped = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(dumped, "no seed in 0..64 produced a device loss");
}
