//! Integration tests for the batched serving subsystem: differential
//! bit-identity against the interpreter, micro-batching semantics, cost
//! accounting, and observer (profiler/sanitizer) zero-perturbation.

use gbdt_core::compiled::CompiledEnsemble;
use gbdt_core::config::TrainConfig;
use gbdt_core::memory::estimate_serving_bytes;
use gbdt_core::serve::{BatchConfig, BatchServer, DeviceEnsemble};
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{Model, PredictMode};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::sanitize::SanitizeMode;
use gpusim::{Device, Phase};
use std::sync::Arc;

fn trained() -> (Model, Dataset) {
    let ds = make_classification(&ClassificationSpec {
        instances: 300,
        features: 12,
        classes: 5,
        informative: 8,
        seed: 77,
        ..Default::default()
    });
    let cfg = TrainConfig {
        num_trees: 10,
        max_depth: 5,
        max_bins: 32,
        min_instances: 5,
        ..TrainConfig::default()
    };
    (GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds), ds)
}

fn serve_all(server: &mut BatchServer, ds: &Dataset, arrival: impl Fn(usize) -> f64) -> Vec<f32> {
    let n = ds.features().rows();
    let d = server.ensemble().d();
    let mut out = vec![0.0f32; n * d];
    let mut place = |b: gbdt_core::ServedBatch| {
        let start = b.first_id as usize * d;
        out[start..start + b.scores.len()].copy_from_slice(&b.scores);
    };
    for i in 0..n {
        for b in server.submit(arrival(i), ds.features().row(i)) {
            place(b);
        }
    }
    if let Some(b) = server.flush() {
        place(b);
    }
    out
}

/// Differential: `BatchServer` outputs are bit-identical to
/// `CompiledEnsemble::predict` and `Model::predict` across batch sizes,
/// in both predict modes.
#[test]
fn batch_server_is_bit_identical_across_batch_sizes_and_modes() {
    let (model, ds) = trained();
    let reference = model.predict(ds.features());
    let compiled = CompiledEnsemble::compile(&model);
    assert_eq!(compiled.predict(ds.features()), reference);
    let n = ds.features().rows();
    for mode in [PredictMode::InstanceLevel, PredictMode::TreeLevel] {
        for max_batch in [1usize, 7, 256, n] {
            let device = Device::rtx4090();
            let ens = DeviceEnsemble::upload(device, &compiled);
            let mut server = BatchServer::new(
                ens,
                BatchConfig {
                    max_batch,
                    ..BatchConfig::default()
                },
            )
            .expect("valid batch config");
            let got = serve_all(&mut server, &ds, |_| 0.0);
            assert_eq!(
                got, reference,
                "mode {mode:?} batch {max_batch} diverged from Model::predict"
            );
            let stats = server.stats();
            assert_eq!(stats.served, n as u64);
            assert_eq!(stats.batches as usize, n.div_ceil(max_batch));
            assert!(stats.p50_ns <= stats.p90_ns && stats.p90_ns <= stats.p99_ns);
            assert!(stats.p99_ns <= stats.max_ns);
            assert!(stats.throughput_rps > 0.0);
        }
    }
}

/// Serving charges land in `Phase::Serve`; the upload is a charged
/// transfer whose resident bytes match the memory estimate.
#[test]
fn upload_and_serve_charge_the_right_phases() {
    let (model, ds) = trained();
    let compiled = model.compile();
    let device = Device::rtx4090();
    let ens = DeviceEnsemble::upload(Arc::clone(&device), &compiled);
    let transfer_ns = device.summary().by_phase[&Phase::Transfer];
    assert!(transfer_ns > 0.0, "upload must charge Transfer");
    let est = estimate_serving_bytes(
        compiled.num_nodes(),
        compiled.num_leaf_values(),
        compiled.num_trees(),
        compiled.d(),
        ds.features().cols(),
        256,
    );
    assert_eq!(ens.resident_bytes(), est.resident_bytes());
    let _ = ens.predict(PredictMode::InstanceLevel, ds.features());
    let serve_ns = device.summary().by_phase[&Phase::Serve];
    assert!(serve_ns > 0.0, "prediction must charge Serve");
    // No Predict-phase leakage: serving is its own pipeline phase.
    assert!(!device.summary().by_phase.contains_key(&Phase::Predict));
}

/// Tree-level serving pays the partial-matrix reduction: strictly more
/// simulated time than instance-level on the same batch.
#[test]
fn tree_level_serving_charges_strictly_more() {
    let (model, ds) = trained();
    let compiled = model.compile();
    let mut times = Vec::new();
    for mode in [PredictMode::InstanceLevel, PredictMode::TreeLevel] {
        let device = Device::rtx4090();
        let ens = DeviceEnsemble::upload(Arc::clone(&device), &compiled);
        let t0 = device.now_ns();
        let _ = ens.predict(mode, ds.features());
        times.push(device.now_ns() - t0);
    }
    assert!(
        times[1] > times[0],
        "tree-level {} ns must exceed instance-level {} ns",
        times[1],
        times[0]
    );
}

/// The deadline trigger flushes the oldest pending request at
/// `arrival + max_delay_ns`, before the triggering arrival joins.
#[test]
fn deadline_flushes_stale_batches() {
    let (model, ds) = trained();
    let compiled = model.compile();
    let ens = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
    let mut server = BatchServer::new(
        ens,
        BatchConfig {
            max_batch: 1000,
            max_delay_ns: 5_000.0,
            ..BatchConfig::default()
        },
    )
    .expect("valid batch config");
    let row = ds.features().row(0);
    assert!(server.submit(0.0, row).is_empty());
    assert!(server.submit(1_000.0, row).is_empty());
    // This arrival finds the oldest request 6 µs old → flush of the
    // two pending rows, stamped at the 5 µs deadline.
    let served = server.submit(6_000.0, row);
    assert_eq!(served.len(), 1);
    assert_eq!(served[0].rows, 2);
    assert_eq!(served[0].first_id, 0);
    assert!(served[0].completed_ns >= 5_000.0);
    let last = server.flush().expect("one row still pending");
    assert_eq!(last.first_id, 2);
    assert_eq!(last.rows, 1);
}

/// Batched submission beats single-row submission on throughput: one
/// launch per batch amortizes the fixed launch overhead.
#[test]
fn batching_amortizes_launch_overhead() {
    let (model, ds) = trained();
    let compiled = model.compile();
    let mut throughput = Vec::new();
    for max_batch in [1usize, 256] {
        let ens = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
        let mut server = BatchServer::new(
            ens,
            BatchConfig {
                max_batch,
                ..BatchConfig::default()
            },
        )
        .expect("valid batch config");
        let _ = serve_all(&mut server, &ds, |_| 0.0);
        throughput.push(server.stats().throughput_rps);
    }
    assert!(
        throughput[1] > throughput[0] * 2.0,
        "batched {} rows/s should far exceed single-row {} rows/s",
        throughput[1],
        throughput[0]
    );
}

/// Degenerate batching policies are configuration errors, not panics:
/// a zero batch size would never flush, and NaN/negative deadlines
/// compare as never-expired.
#[test]
fn degenerate_batch_configs_are_typed_errors() {
    let (model, _) = trained();
    let compiled = model.compile();
    for cfg in [
        BatchConfig {
            max_batch: 0,
            ..BatchConfig::default()
        },
        BatchConfig {
            max_delay_ns: f64::NAN,
            ..BatchConfig::default()
        },
        BatchConfig {
            max_delay_ns: -1.0,
            ..BatchConfig::default()
        },
    ] {
        let ens = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
        let err = match BatchServer::new(ens, cfg) {
            Err(e) => e,
            Ok(_) => panic!("degenerate config accepted: {cfg:?}"),
        };
        assert!(!err.message().is_empty());
    }
}

/// A zero deadline is legal: every arrival finds the pending batch
/// already expired, so requests flush one behind the arrival stream.
#[test]
fn zero_deadline_flushes_every_pending_request() {
    let (model, ds) = trained();
    let compiled = model.compile();
    let ens = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
    let mut server = BatchServer::new(
        ens,
        BatchConfig {
            max_batch: 1000,
            max_delay_ns: 0.0,
            ..BatchConfig::default()
        },
    )
    .expect("zero deadline is valid");
    let row = ds.features().row(0);
    assert!(server.submit(0.0, row).is_empty());
    for i in 1..5u64 {
        let served = server.submit(i as f64 * 100.0, row);
        assert_eq!(served.len(), 1, "arrival {i} must flush the pending row");
        assert_eq!(served[0].rows, 1);
        assert_eq!(served[0].first_id, i - 1);
    }
    assert_eq!(server.flush().expect("last row pending").rows, 1);
    assert!(server.flush().is_none(), "empty flush must be a no-op");
}

/// `flush` on a server that never saw a submission is `None`, and the
/// stats of an idle server are all zeros — no division by an empty
/// latency set.
#[test]
fn empty_flush_and_idle_stats_are_benign() {
    let (model, _) = trained();
    let compiled = model.compile();
    let ens = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
    let mut server = BatchServer::new(ens, BatchConfig::default()).expect("valid");
    assert!(server.flush().is_none());
    let stats = server.stats();
    assert_eq!(stats.served, 0);
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.throughput_rps, 0.0);
}

/// The upload captures per-buffer digests; a planned ECC flip in any
/// resident array is caught by `verify` as a typed corruption error
/// naming the buffer, while a clean upload verifies endlessly.
#[test]
fn verify_catches_planted_corruption_in_each_buffer() {
    let (model, _) = trained();
    let compiled = model.compile();
    let clean = DeviceEnsemble::upload(Device::rtx4090(), &compiled);
    clean.verify().expect("clean upload verifies");
    clean.verify().expect("verification is idempotent");
    for buffer in [
        "serve_feature",
        "serve_threshold",
        "serve_left",
        "serve_right",
        "serve_leaf_values",
        "serve_roots",
        "serve_base",
    ] {
        let device = Device::rtx4090();
        device.enable_faults(gpusim::FaultPlan::new().bit_flip(0, buffer, 3, 11));
        // Pass the arming index with a throwaway charge, then upload:
        // the corruption lands after the digests are captured.
        device.charge_ns("warmup", Phase::Other, 1.0);
        let ens = DeviceEnsemble::upload(Arc::clone(&device), &compiled);
        match ens.verify() {
            Err(gbdt_core::ServeError::Corruption {
                buffer: b,
                expected,
                actual,
            }) => {
                assert_eq!(b, buffer);
                assert_ne!(expected, actual);
            }
            other => panic!("expected corruption in {buffer}, got {other:?}"),
        }
        assert!(
            device.poll_fault().is_ok(),
            "ECC flips must stay silent to the fault poll"
        );
    }
}

/// A staged model version double-buffers behind in-flight batches: its
/// SoA upload and checksum pass run on the copy stream during the
/// arrival gaps, and the first flush that finds the upload complete
/// swaps it in. Batches before the swap serve the old model
/// bit-identically, batches after serve the new one.
#[test]
fn staged_upload_double_buffers_behind_batches() {
    let (model_a, ds) = trained();
    let model_b = GpuTrainer::new(
        Device::rtx4090(),
        TrainConfig {
            num_trees: 16,
            max_depth: 5,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        },
    )
    .fit(&ds);
    let compiled_a = CompiledEnsemble::compile(&model_a);
    let compiled_b = CompiledEnsemble::compile(&model_b);
    let ref_a = compiled_a.predict(ds.features());
    let ref_b = compiled_b.predict(ds.features());

    let device = Device::rtx4090();
    let ens = DeviceEnsemble::upload(Arc::clone(&device), &compiled_a);
    let d = ens.d();
    let mut server = BatchServer::new(
        ens,
        BatchConfig {
            max_batch: 50,
            ..BatchConfig::default()
        },
    )
    .expect("valid batch config");

    // Rows arrive 1 ms apart: batch kernels and the staged upload are
    // microseconds, so the copy drains long before the next trigger.
    let n = ds.features().rows();
    let mut batches = Vec::new();
    for i in 0..n {
        let arrival = i as f64 * 1e6;
        if i == 150 {
            server.stage(&compiled_b).expect("same output dimension");
        }
        batches.extend(server.submit(arrival, ds.features().row(i)));
    }
    batches.extend(server.flush());
    assert_eq!(batches.len(), 6);

    for b in &batches {
        let reference = if b.first_id < 150 { &ref_a } else { &ref_b };
        let start = b.first_id as usize * d;
        assert_eq!(
            b.scores,
            reference[start..start + b.rows * d],
            "batch at id {} served the wrong model version",
            b.first_id
        );
    }

    // The upload ran on the copy stream, and it ran at stage time —
    // inside the arrival gap, before the swapping flush's trigger —
    // not serialized into the swap.
    let swap_trigger_ns = 199e6;
    let copies: Vec<_> = device
        .records()
        .into_iter()
        .filter(|r| r.stream == 1)
        .collect();
    assert_eq!(
        copies.len(),
        14,
        "7 htod transfers + 7 checksum kernels on the copy stream"
    );
    for r in &copies {
        assert!(
            r.start_ns + r.ns <= swap_trigger_ns,
            "{} on the copy stream finished at {} ns, after the swap trigger",
            r.name,
            r.start_ns + r.ns
        );
    }

    // Staging a model with a different output dimension is rejected.
    let tiny = make_classification(&ClassificationSpec {
        instances: 100,
        features: 12,
        classes: 2,
        informative: 6,
        seed: 9,
        ..Default::default()
    });
    let model_c = GpuTrainer::new(
        Device::rtx4090(),
        TrainConfig {
            num_trees: 2,
            max_depth: 3,
            max_bins: 16,
            min_instances: 5,
            ..TrainConfig::default()
        },
    )
    .fit(&tiny);
    let err = server
        .stage(&CompiledEnsemble::compile(&model_c))
        .expect_err("dimension change must be rejected");
    assert!(err.message().contains("output dimension"));
}

/// Zero perturbation: attaching the profiler and sanitizer changes
/// neither the results nor the charged cost stream, and the sanitized
/// run is clean in both predict modes.
#[test]
fn observers_do_not_perturb_serving() {
    let (model, ds) = trained();
    let compiled = model.compile();
    for mode in [PredictMode::InstanceLevel, PredictMode::TreeLevel] {
        let plain_dev = Device::rtx4090();
        let plain_ens = DeviceEnsemble::upload(Arc::clone(&plain_dev), &compiled);
        let plain = plain_ens.predict(mode, ds.features());

        let observed_dev = Device::rtx4090();
        observed_dev.enable_profiler();
        observed_dev.enable_sanitizer(SanitizeMode::Full);
        let observed_ens = DeviceEnsemble::upload(Arc::clone(&observed_dev), &compiled);
        let observed = observed_ens.predict(mode, ds.features());

        assert_eq!(plain, observed, "results perturbed in {mode:?}");
        let (a, b) = (plain_dev.records(), observed_dev.records());
        assert_eq!(a.len(), b.len(), "charge count perturbed in {mode:?}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ns.to_bits(), y.ns.to_bits(), "{} charge drifted", x.name);
        }
        let report = observed_dev.sanitize_report().expect("sanitizer attached");
        assert!(report.is_clean(), "violations: {}", report.table());
        let profile = observed_dev.profile_summary().expect("profiler attached");
        assert!(
            profile.by_phase.get("Serve").copied().unwrap_or(0.0) > 0.0,
            "profiler must see the Serve phase"
        );
    }
}
