//! Fuzz-style corruption tests for [`CompiledEnsemble::from_json`].
//!
//! Serving artifacts cross a trust boundary: the JSON a server loads
//! was written by some earlier training job and may have been
//! truncated, bit-rotted, or hand-edited in transit. The decoder's
//! contract is that *any* byte string either parses into an ensemble
//! that passes [`CompiledEnsemble::validate`] or returns `Err` — it
//! never panics, never hangs, and never yields an ensemble whose
//! traversal could index out of bounds.

use gbdt_core::config::TrainConfig;
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::CompiledEnsemble;
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gpusim::Device;

/// Deterministic splitmix64 — the tests need repeatable "randomness"
/// without pulling an RNG crate into the fixture.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn valid_json() -> String {
    let ds = make_classification(&ClassificationSpec {
        instances: 200,
        features: 6,
        classes: 4,
        informative: 5,
        seed: 21,
        ..Default::default()
    });
    let cfg = TrainConfig {
        num_trees: 4,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    };
    let model = GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds);
    serde_json::to_string(&CompiledEnsemble::compile(&model)).expect("ensemble serializes")
}

/// 300 seeded byte-level mutations (replace, delete, insert, truncate).
/// Every mutant must decode to `Err` or to a validated ensemble —
/// exercised by predicting with it — with zero panics.
#[test]
fn seeded_byte_mutations_never_panic() {
    let json = valid_json();
    assert!(
        CompiledEnsemble::from_json(&json).is_ok(),
        "baseline artifact must be valid"
    );
    assert!(json.is_ascii(), "serde_json output here is pure ASCII");

    let (mut rejected, mut survived) = (0u32, 0u32);
    for seed in 0..300u64 {
        let mut rng = SplitMix(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let mut bytes = json.clone().into_bytes();
        // 1–4 mutations per mutant: single flips are often absorbed by
        // whitespace-free JSON, stacked ones corrupt structure.
        for _ in 0..=rng.below(4) {
            if bytes.is_empty() {
                break;
            }
            let pos = rng.below(bytes.len());
            match rng.below(4) {
                0 => bytes[pos] = (rng.next() & 0xFF) as u8,
                1 => {
                    bytes.remove(pos);
                }
                2 => bytes.insert(pos, (rng.next() & 0x7F) as u8),
                _ => bytes.truncate(pos),
            }
        }
        let mutant = String::from_utf8_lossy(&bytes);
        match CompiledEnsemble::from_json(&mutant) {
            Err(e) => {
                rejected += 1;
                assert!(!e.is_empty(), "seed {seed}: error must carry a message");
            }
            Ok(ens) => {
                // A mutation can be semantically neutral (e.g. inside
                // insignificant digits). Whatever decodes must be safe
                // to traverse.
                survived += 1;
                ens.validate()
                    .unwrap_or_else(|e| panic!("seed {seed}: decoded ensemble invalid: {e}"));
                let row = vec![0.5f32; 6];
                let mut out = vec![0.0f32; ens.d()];
                ens.predict_row_into(&row, &mut out);
                assert!(out.iter().all(|v| v.is_finite() || v.is_nan()));
            }
        }
    }
    assert!(rejected > 0, "no mutant was rejected — mutations too weak");
    // `survived` may be 0; the property is about panics, not acceptance.
    let _ = survived;
}

/// Truncation at every prefix must be a clean `Err` (JSON here is
/// ASCII, so every prefix is a valid UTF-8 boundary).
#[test]
fn every_truncation_is_rejected() {
    let json = valid_json();
    for len in 0..json.len() {
        assert!(
            CompiledEnsemble::from_json(&json[..len]).is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
}

/// Targeted semantic corruptions: structurally valid JSON whose
/// content violates ensemble invariants must always be rejected.
#[test]
fn semantic_corruptions_are_rejected() {
    let json = valid_json();
    let cases: Vec<(&str, String)> = vec![
        (
            "zero output dim",
            regex_replace(&json, "\"d\":", "\"d\":0,\"_x\":"),
        ),
        (
            "base length mismatch",
            json.replacen("\"base\":[", "\"base\":[1e9,", 1),
        ),
        (
            "wrong type for trees",
            json.replacen("\"trees\":[", "\"trees\":42,\"_y\":[", 1),
        ),
        ("empty object", "{}".to_string()),
        (
            "not json at all",
            "threshold feature left right".to_string(),
        ),
        ("json scalar", "17".to_string()),
        ("json array", "[1,2,3]".to_string()),
    ];
    for (name, bad) in cases {
        assert!(
            CompiledEnsemble::from_json(&bad).is_err(),
            "{name}: corrupted artifact decoded successfully"
        );
    }
}

/// Replace the value following `key` with a literal — enough of a
/// "regex" for the fixed serde_json layout used here.
fn regex_replace(json: &str, key: &str, with: &str) -> String {
    let start = json.find(key).expect("key present");
    let rest = &json[start + key.len()..];
    let end = rest.find([',', '}']).expect("value terminated");
    // Keep the displaced value alive under the decoy key so the result
    // stays well-formed JSON and rejection happens at validation.
    format!("{}{}{}{}", &json[..start], with, &rest[..end], &rest[end..])
}

/// Hostile but well-formed inputs must fail fast — no hangs on deep
/// nesting or absurd sizes.
#[test]
fn hostile_inputs_fail_fast() {
    // Deep nesting.
    let deep = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
    assert!(CompiledEnsemble::from_json(&deep).is_err());
    // A huge flat array.
    let mut big = String::from("{\"trees\":[");
    big.push_str(&"0,".repeat(100_000));
    big.push_str("0]}");
    assert!(CompiledEnsemble::from_json(&big).is_err());
    // Unterminated string.
    assert!(CompiledEnsemble::from_json("{\"d\":\"").is_err());
}
