//! Recovery paths under full memcheck + racecheck.
//!
//! Retry, multi-GPU degradation, and checkpoint/resume all *re-execute*
//! kernels whose first run already registered sanitizer traces; a
//! replay that re-registers buffers wrongly or races on the recovered
//! state would only surface here. Each scenario must finish with a
//! clean sanitizer report on every surviving device.

use gbdt_core::config::TrainConfig;
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{MultiGpuTrainer, RetryPolicy};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::sanitize::SanitizeMode;
use gpusim::{Device, DeviceGroup, FaultPlan};

fn dataset() -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 200,
        features: 8,
        classes: 4,
        informative: 6,
        seed: 5,
        ..Default::default()
    })
}

fn cfg() -> TrainConfig {
    TrainConfig {
        num_trees: 4,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

fn assert_clean(device: &Device, what: &str) {
    let report = device.sanitize_report().expect("sanitizer enabled");
    assert!(
        report.is_clean(),
        "{what}: sanitizer violations on replayed recovery path:\n{}",
        report.table()
    );
}

#[test]
fn transient_retry_replays_clean_under_sanitizer() {
    let ds = dataset();
    let dev = Device::rtx4090();
    dev.enable_sanitizer(SanitizeMode::Full);
    dev.enable_faults(FaultPlan::new().transient_at(20));
    GpuTrainer::try_new(dev.clone(), cfg().with_retry(RetryPolicy::retries(1)))
        .expect("valid config")
        .try_fit(&ds)
        .expect("one retry suffices");
    assert_clean(&dev, "transient retry");
}

#[test]
fn multi_gpu_degradation_replays_clean_under_sanitizer() {
    let ds = dataset();
    let group = DeviceGroup::rtx4090s(2);
    for dev in group.devices() {
        dev.enable_sanitizer(SanitizeMode::Full);
    }
    group
        .device(1)
        .enable_faults(FaultPlan::new().device_lost_at(10));
    MultiGpuTrainer::try_new(group.clone(), cfg())
        .expect("valid config")
        .try_fit(&ds)
        .expect("survivor finishes");
    // Only the survivor is held to a clean report: the lost device's
    // traces stop mid-flight by construction.
    assert_clean(group.device(0), "degraded multi-GPU");
}

#[test]
fn resumed_fit_replays_clean_under_sanitizer() {
    let ds = dataset();
    let (_, checkpoints) = GpuTrainer::try_new(Device::rtx4090(), cfg())
        .expect("valid config")
        .try_fit_checkpointed(&ds)
        .expect("fit succeeds");
    let ck = &checkpoints[1];

    let dev = Device::rtx4090();
    dev.enable_sanitizer(SanitizeMode::Full);
    gbdt_core::Model::resume_from(dev.clone(), ck, &ds).expect("resume succeeds");
    assert_clean(&dev, "resumed fit");
}
