//! Stream-schedule invariants on the training paths.
//!
//! The multi-stream timeline must be invisible to everything except
//! start timestamps and the makespan:
//!
//! * `streams = 1` keeps every charge on the default stream with zero
//!   recorded overlap — the schedule is the old serial clock (the
//!   gpusim property suite proves the stream-0 scheduler is bitwise
//!   identical to the plain serial ledger);
//! * `streams > 1` changes neither the model nor the *order* of the
//!   charge stream, only shortens the timeline;
//! * observers (profiler/sanitizer), faults, and checkpoint/resume all
//!   keep their guarantees on streamed schedules.

use gbdt_core::config::{OutputSketch, TrainConfig};
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{HistOptions, HistogramMethod, RetryPolicy};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::sanitize::SanitizeMode;
use gpusim::{Device, DeviceProps, FaultPlan};

fn dataset() -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 250,
        features: 8,
        classes: 6,
        informative: 6,
        seed: 9,
        ..Default::default()
    })
}

fn grid() -> Vec<(HistogramMethod, OutputSketch)> {
    let methods = [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ];
    let sketches = [
        OutputSketch::None,
        OutputSketch::TopOutputs(2),
        OutputSketch::RandomSampling(2),
        OutputSketch::RandomProjection(2),
    ];
    methods
        .into_iter()
        .flat_map(|h| sketches.into_iter().map(move |s| (h, s)))
        .collect()
}

fn config(hist: HistogramMethod, sketch: OutputSketch, streams: usize) -> TrainConfig {
    TrainConfig {
        num_trees: 4,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        hist: HistOptions {
            method: hist,
            ..HistOptions::default()
        },
        sketch,
        streams,
        ..TrainConfig::default()
    }
}

/// `streams = 1` is the serial schedule: every charge sits on the
/// default stream, nothing is saved by overlap, and the run is
/// bit-for-bit reproducible — clock, durations, and start stamps —
/// across every histogram method × sketch mode.
#[test]
fn serial_stream_config_is_bitwise_stable_across_methods_and_sketches() {
    let ds = dataset();
    for (hist, sketch) in grid() {
        let label = format!("{hist:?}/{}", sketch.label());
        let mut runs = Vec::new();
        for _ in 0..2 {
            let dev = Device::new(0, DeviceProps::rtx4090());
            let model = GpuTrainer::new(dev.clone(), config(hist, sketch, 1)).fit(&ds);
            runs.push((model.predict(ds.features()), dev.now_ns(), dev.records()));
            let summary = dev.summary();
            assert_eq!(
                summary.overlap_saved_ns.to_bits(),
                0.0f64.to_bits(),
                "{label}: serial schedule must save nothing"
            );
        }
        let (p1, t1, r1) = &runs[0];
        let (p2, t2, r2) = &runs[1];
        assert_eq!(p1, p2, "{label}: predictions drifted between runs");
        assert_eq!(t1.to_bits(), t2.to_bits(), "{label}: clock drifted");
        assert_eq!(r1.len(), r2.len(), "{label}: charge count drifted");
        for (a, b) in r1.iter().zip(r2) {
            assert_eq!(a.name, b.name, "{label}: charge order drifted");
            assert_eq!(a.ns.to_bits(), b.ns.to_bits(), "{label}: {} ns", a.name);
            assert_eq!(
                a.start_ns.to_bits(),
                b.start_ns.to_bits(),
                "{label}: {} start",
                a.name
            );
            assert_eq!(a.stream, 0, "{label}: {} left the default stream", a.name);
        }
    }
}

/// Streams shorten the single-device timeline without touching the
/// model, the charge order, or the charged durations, across the full
/// method × sketch grid; the shrinkage is recorded as overlap savings.
#[test]
fn streamed_training_preserves_model_and_charge_order() {
    let ds = dataset();
    for (hist, sketch) in grid() {
        let label = format!("{hist:?}/{}", sketch.label());
        let d1 = Device::new(0, DeviceProps::rtx4090());
        let serial = GpuTrainer::new(d1.clone(), config(hist, sketch, 1)).fit(&ds);
        let d4 = Device::new(0, DeviceProps::rtx4090());
        let streamed = GpuTrainer::new(d4.clone(), config(hist, sketch, 4)).fit(&ds);

        assert_eq!(
            serial.predict(ds.features()),
            streamed.predict(ds.features()),
            "{label}: streams changed the model"
        );
        assert!(
            d4.now_ns() <= d1.now_ns(),
            "{label}: streamed clock {} exceeds serial {}",
            d4.now_ns(),
            d1.now_ns()
        );
        let saved = d4.summary().overlap_saved_ns;
        assert!(saved > 0.0, "{label}: no overlap was recorded");
        let (r1, r4) = (d1.records(), d4.records());
        assert_eq!(r1.len(), r4.len(), "{label}: charge count changed");
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(a.name, b.name, "{label}: charge order changed");
            assert_eq!(
                a.ns.to_bits(),
                b.ns.to_bits(),
                "{label}: {} duration changed",
                a.name
            );
        }
    }
}

/// Zero perturbation on streamed schedules: attaching the profiler and
/// the sanitizer changes neither the model nor a single bit of the
/// charge stream — names, durations, start stamps, and stream ids.
#[test]
fn observers_do_not_perturb_streamed_training() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::TopOutputs(2), 4);

    let plain_dev = Device::new(0, DeviceProps::rtx4090());
    let plain = GpuTrainer::new(plain_dev.clone(), cfg.clone()).fit(&ds);

    let observed_dev = Device::new(0, DeviceProps::rtx4090());
    observed_dev.enable_profiler();
    observed_dev.enable_sanitizer(SanitizeMode::Full);
    let observed = GpuTrainer::new(observed_dev.clone(), cfg).fit(&ds);

    assert_eq!(
        plain.predict(ds.features()),
        observed.predict(ds.features()),
        "observers perturbed the model"
    );
    assert_eq!(
        plain_dev.now_ns().to_bits(),
        observed_dev.now_ns().to_bits(),
        "observers perturbed the clock"
    );
    let (a, b) = (plain_dev.records(), observed_dev.records());
    assert_eq!(a.len(), b.len(), "observers perturbed the charge count");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.ns.to_bits(), y.ns.to_bits(), "{} ns drifted", x.name);
        assert_eq!(
            x.start_ns.to_bits(),
            y.start_ns.to_bits(),
            "{} start drifted",
            x.name
        );
        assert_eq!(x.stream, y.stream, "{} changed stream", x.name);
    }
    let report = observed_dev.sanitize_report().expect("sanitizer attached");
    assert!(report.is_clean(), "violations: {}", report.table());
}

/// Fault recovery and checkpoint/resume keep their bit-identity
/// guarantees when the schedule is streamed: a transient mid-training
/// fault retries into the same model, and resuming from a checkpoint
/// reproduces the uninterrupted streamed run.
#[test]
fn faults_and_checkpoints_hold_on_streamed_paths() {
    let ds = dataset();
    let cfg = config(HistogramMethod::Adaptive, OutputSketch::None, 4);

    let clean_dev = Device::new(0, DeviceProps::rtx4090());
    let clean = GpuTrainer::new(clean_dev.clone(), cfg.clone()).fit(&ds);

    let faulty_dev = Device::new(0, DeviceProps::rtx4090());
    faulty_dev.enable_faults(FaultPlan::new().transient_at(40));
    let recovered = GpuTrainer::new(
        faulty_dev.clone(),
        cfg.clone().with_retry(RetryPolicy::retries(1)),
    )
    .try_fit(&ds)
    .expect("transient fault must be retried");
    assert_eq!(
        clean.predict(ds.features()),
        recovered.predict(ds.features()),
        "fault recovery diverged on the streamed schedule"
    );

    let ck_dev = Device::new(0, DeviceProps::rtx4090());
    let (full, checkpoints) = GpuTrainer::new(ck_dev.clone(), cfg.clone())
        .try_fit_checkpointed(&ds)
        .expect("checkpointed fit");
    let ck = checkpoints
        .iter()
        .find(|c| c.completed_trees == 2)
        .expect("checkpoint after tree 2");
    let resume_dev = Device::new(0, DeviceProps::rtx4090());
    let resumed = GpuTrainer::new(resume_dev.clone(), cfg)
        .try_fit_resumed(&ds, ck)
        .expect("resume");
    assert_eq!(
        full.model.trees, resumed.model.trees,
        "resume diverged on the streamed schedule"
    );
}
