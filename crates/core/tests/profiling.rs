//! Full-pipeline profiler tests (this PR's acceptance gate):
//!
//! 1. The zero-perturbation contract — profiling attached, detached, or
//!    never enabled all produce **bit-identical** trees, predictions,
//!    and charged nanoseconds (the profiler is a pure observer,
//!    mirroring the sanitizer contract from the previous PR).
//! 2. A profiled training run actually covers the pipeline: round and
//!    level scopes, per-method histogram scopes, per-kernel aggregates,
//!    and a Chrome trace that parses as JSON with a `traceEvents` array.

use gbdt_core::config::{HistogramMethod, TrainConfig};
use gbdt_core::{GpuTrainer, MultiGpuTrainer, PredictMode};
use gbdt_data::synth::{make_regression, RegressionSpec};
use gbdt_data::Dataset;
use gpusim::{Device, Phase};

fn dataset() -> Dataset {
    make_regression(&RegressionSpec {
        instances: 400,
        features: 8,
        outputs: 3,
        informative: 6,
        noise: 0.05,
        seed: 11,
        ..Default::default()
    })
}

fn config(m: HistogramMethod) -> TrainConfig {
    TrainConfig {
        num_trees: 2,
        max_depth: 4,
        max_bins: 32,
        min_instances: 5,
        ..TrainConfig::default()
    }
    .with_hist_method(m)
}

/// Profiling on, off, or toggled: trees, predictions, and the simulated
/// timeline never shift by a single bit.
#[test]
fn profiler_off_is_bit_identical_to_never_enabled() {
    let ds = dataset();
    for m in [
        HistogramMethod::GlobalMemory,
        HistogramMethod::SharedMemory,
        HistogramMethod::SortReduce,
        HistogramMethod::Adaptive,
    ] {
        let cfg = config(m);

        let plain = Device::rtx4090();
        let model_plain = GpuTrainer::new(plain.clone(), cfg.clone()).fit(&ds);

        let profiled = Device::rtx4090();
        profiled.enable_profiler();
        let model_prof = GpuTrainer::new(profiled.clone(), cfg.clone()).fit(&ds);

        let p_plain = model_plain.predict(ds.features());
        let p_prof = model_prof.predict(ds.features());
        assert_eq!(p_plain.len(), p_prof.len());
        for (a, b) in p_plain.iter().zip(&p_prof) {
            assert_eq!(a.to_bits(), b.to_bits(), "{m:?}: predictions diverged");
        }
        assert_eq!(
            plain.now_ns().to_bits(),
            profiled.now_ns().to_bits(),
            "{m:?}: profiler must never charge the ledger"
        );
        // The charged cost stream is bit-for-bit identical, record by
        // record (name, phase, ns, start time).
        let ra = plain.records();
        let rb = profiled.records();
        assert_eq!(ra.len(), rb.len(), "{m:?}: record counts diverged");
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.name, y.name, "{m:?}");
            assert_eq!(x.phase, y.phase, "{m:?}");
            assert_eq!(x.ns.to_bits(), y.ns.to_bits(), "{m:?}: ns diverged");
            assert_eq!(
                x.start_ns.to_bits(),
                y.start_ns.to_bits(),
                "{m:?}: start diverged"
            );
        }

        // Enabled-then-disabled matches a device that never profiled.
        let toggled = Device::rtx4090();
        toggled.enable_profiler();
        toggled.disable_profiler();
        let model_toggled = GpuTrainer::new(toggled.clone(), cfg).fit(&ds);
        let p_toggled = model_toggled.predict(ds.features());
        for (a, b) in p_plain.iter().zip(&p_toggled) {
            assert_eq!(a.to_bits(), b.to_bits(), "{m:?}: toggled diverged");
        }
        assert_eq!(plain.now_ns().to_bits(), toggled.now_ns().to_bits());
    }
}

/// A profiled run produces the full scope hierarchy and per-kernel
/// aggregates, and its phase totals reconcile exactly with the ledger.
#[test]
fn profiled_training_covers_the_pipeline() {
    let ds = dataset();
    let device = Device::rtx4090();
    device.enable_profiler();
    let trainer = GpuTrainer::new(device.clone(), config(HistogramMethod::Adaptive));
    let model = trainer.fit(&ds);
    // Charged inference rides the same profiler.
    let base = vec![0.0f32; ds.d()];
    let _ = gbdt_core::predict::predict_on_device(
        &device,
        &model.trees,
        &base,
        ds.features(),
        PredictMode::InstanceLevel,
    );

    let prof = device.profile_summary().expect("profiler enabled");
    assert_eq!(prof.schema_version, gpusim::PROFILE_SCHEMA_VERSION);
    assert_eq!(prof.device, "SimRTX4090");
    assert!(prof.total_ns > 0.0);
    assert_eq!(prof.dropped_records, 0);
    assert_eq!(prof.dropped_events, 0);

    // Hierarchical scopes: preprocess, rounds, levels under rounds,
    // method scopes under levels, and the predict scope.
    let paths: Vec<&str> = prof.scopes.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&"preprocess"), "{paths:?}");
    assert!(paths.contains(&"round"), "{paths:?}");
    assert!(paths.contains(&"round/level"), "{paths:?}");
    assert!(paths.contains(&"predict"), "{paths:?}");
    assert!(
        paths.iter().any(|p| p.starts_with("round/level/hist_")),
        "histogram method scopes missing: {paths:?}"
    );
    let round = prof
        .scopes
        .iter()
        .find(|s| s.path == "round")
        .expect("round scope");
    assert_eq!(round.count, 2, "one scope entry per boosting round");
    assert_eq!(round.depth, 0);
    let level = prof
        .scopes
        .iter()
        .find(|s| s.path == "round/level")
        .expect("level scope");
    assert_eq!(level.depth, 1);
    assert!(level.count >= 2);
    // A round contains its levels: aggregate level time fits inside it.
    assert!(level.total_ns <= round.total_ns + 1e-9);

    // Per-kernel aggregates: histogram kernels present, stats sane.
    let hist_rows: Vec<_> = prof
        .kernels
        .iter()
        .filter(|k| k.phase == "Histogram")
        .collect();
    assert!(!hist_rows.is_empty(), "no histogram kernels profiled");
    for k in &prof.kernels {
        assert!(k.count > 0);
        assert!(k.total_ns > 0.0);
        assert!(k.max_ns <= k.total_ns + 1e-9);
        assert!((k.mean_ns - k.total_ns / k.count as f64).abs() < 1e-9);
    }
    // Aggregate kernel time reconciles exactly with the ledger total.
    let agg: f64 = prof.kernels.iter().map(|k| k.total_ns).sum();
    let ledger = device.summary();
    assert!(
        (agg - ledger.total_ns).abs() < 1e-6 * ledger.total_ns.max(1.0),
        "aggregates ({agg}) must reconcile with ledger ({})",
        ledger.total_ns
    );
    // by_phase mirrors the ledger keyed by phase names.
    assert_eq!(
        prof.by_phase.get("Histogram").copied().unwrap_or(0.0),
        ledger
            .by_phase
            .get(&Phase::Histogram)
            .copied()
            .unwrap_or(0.0)
    );
    assert!(prof.phase_share("Histogram") > 0.0);

    // Chrome trace: valid JSON with a traceEvents array that contains
    // both kernel and scope events.
    let trace = device.chrome_trace().expect("profiler enabled");
    let v: serde::Value = serde_json::from_str(&trace).expect("chrome trace must be valid JSON");
    let obj = v.as_object().expect("envelope object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let cats: Vec<String> = events
        .iter()
        .filter_map(|e| e.as_object())
        .filter_map(|o| {
            o.iter()
                .find(|(k, _)| k == "cat")
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        })
        .collect();
    assert!(cats.iter().any(|c| c == "Histogram"), "{cats:?}");
    assert!(cats.iter().any(|c| c == "scope"), "{cats:?}");
}

/// Multi-GPU training with profiling enabled on every device stays
/// bit-identical and records round/level scopes on device 0.
#[test]
fn multigpu_profiling_is_zero_perturbation() {
    let ds = dataset();
    let cfg = config(HistogramMethod::SharedMemory);

    let plain = MultiGpuTrainer::new(gpusim::DeviceGroup::rtx4090s(2), cfg.clone());
    let model_plain = plain.fit(&ds);

    let profiled = MultiGpuTrainer::new(gpusim::DeviceGroup::rtx4090s(2), cfg);
    for dev in profiled.group().devices() {
        dev.enable_profiler();
    }
    let model_prof = profiled.fit(&ds);

    let a = model_plain.predict(ds.features());
    let b = model_prof.predict(ds.features());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (da, db) in plain
        .group()
        .devices()
        .iter()
        .zip(profiled.group().devices())
    {
        assert_eq!(da.now_ns().to_bits(), db.now_ns().to_bits());
    }
    let prof = profiled
        .group()
        .device(0)
        .profile_summary()
        .expect("enabled");
    let paths: Vec<&str> = prof.scopes.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&"round"), "{paths:?}");
    assert!(paths.contains(&"round/level"), "{paths:?}");
}
