//! Gradient-sketching correctness: the GPU trainer's sketched pipeline
//! against the `gbdt-baselines` SketchBoost oracle, plus invariants the
//! sketch must never break.
//!
//! Three guarantees pinned here:
//!
//! 1. **Oracle agreement** — with a sketch enabled, the GPU trainer
//!    must reproduce `SketchBoostTrainer` *split for split*: same
//!    column selection (or projection), same tree structure grown on
//!    the `n × k` sketch, same full-`d` leaf refit. Both sides share
//!    the sketch math by construction; this test keeps it that way.
//! 2. **`OutputSketch::None` adds nothing** — no `Sketch`-phase charge,
//!    no sketch kernel names, no refit kernel: the dense path is the
//!    pre-sketch trainer, bit for bit.
//! 3. **Leaf values are always full-`d`** — the structure search runs
//!    at dimension `k`, but every emitted leaf must carry a
//!    `d`-dimensional vector that a dense recompute from the full
//!    gradients reproduces.

use gbdt_baselines::{SketchBoostTrainer, SketchStrategy};
use gbdt_core::config::{HistogramMethod, TrainConfig};
use gbdt_core::grad::compute_gradients;
use gbdt_core::loss::loss_for_task;
use gbdt_core::split::leaf_values;
use gbdt_core::tree::Node;
use gbdt_core::{GpuTrainer, MultiGpuTrainer, OutputSketch};
use gbdt_data::synth::{
    make_classification, make_multilabel, make_regression, ClassificationSpec, MultilabelSpec,
    RegressionSpec,
};
use gbdt_data::Dataset;
use gpusim::{Device, DeviceGroup, Phase};

fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            "regression",
            make_regression(&RegressionSpec {
                instances: 500,
                features: 12,
                outputs: 8,
                informative: 8,
                noise: 0.1,
                seed: 7,
                ..Default::default()
            }),
        ),
        (
            "classification",
            make_classification(&ClassificationSpec {
                instances: 500,
                features: 16,
                classes: 6,
                informative: 10,
                seed: 21,
                ..Default::default()
            }),
        ),
        (
            "multilabel",
            make_multilabel(&MultilabelSpec {
                instances: 400,
                features: 30,
                labels: 6,
                sparsity: 0.3,
                seed: 35,
                ..Default::default()
            }),
        ),
    ]
}

fn config() -> TrainConfig {
    TrainConfig {
        num_trees: 3,
        max_depth: 5,
        max_bins: 64,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

/// Node-by-node comparison: identical topology, identical split
/// decisions, near-identical leaf vectors (both sides refit leaves from
/// the same full gradients; only f64 summation order may differ).
fn assert_trees_agree(tag: &str, gpu: &gbdt_core::model::Model, oracle: &gbdt_core::model::Model) {
    assert_eq!(
        gpu.trees.len(),
        oracle.trees.len(),
        "{tag}: ensemble sizes differ"
    );
    for (t, (tg, tc)) in gpu.trees.iter().zip(&oracle.trees).enumerate() {
        assert_eq!(
            tg.num_nodes(),
            tc.num_nodes(),
            "{tag}: tree {t} node counts differ"
        );
        for (i, (ng, nc)) in tg.nodes().iter().zip(tc.nodes()).enumerate() {
            match (ng, nc) {
                (
                    Node::Split {
                        feature: fg,
                        bin: bg,
                        threshold: hg,
                        left: lg,
                        right: rg,
                    },
                    Node::Split {
                        feature: fc,
                        bin: bc,
                        threshold: hc,
                        left: lc,
                        right: rc,
                    },
                ) => {
                    assert_eq!(fg, fc, "{tag}: tree {t} node {i} split feature");
                    assert_eq!(bg, bc, "{tag}: tree {t} node {i} split bin");
                    assert_eq!(
                        hg.to_bits(),
                        hc.to_bits(),
                        "{tag}: tree {t} node {i} threshold"
                    );
                    assert_eq!((lg, rg), (lc, rc), "{tag}: tree {t} node {i} topology");
                }
                (Node::Leaf { value: vg }, Node::Leaf { value: vc }) => {
                    assert_eq!(vg.len(), vc.len(), "{tag}: tree {t} leaf {i} dim");
                    for (k, (a, b)) in vg.iter().zip(vc).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                            "{tag}: tree {t} leaf {i} output {k}: gpu={a} oracle={b}"
                        );
                    }
                }
                _ => panic!("{tag}: tree {t} node {i} kind mismatch (split vs leaf)"),
            }
        }
    }
}

/// The issue's differential satellite: `TopOutputs` and
/// `RandomSampling` (and the projection, which shares the same seeded
/// RNG stream) pinned split-for-split against the SketchBoost oracle.
#[test]
fn sketched_trainer_matches_sketchboost_oracle_split_for_split() {
    let modes: [(&str, fn(usize) -> OutputSketch, SketchStrategy); 3] = [
        ("top", OutputSketch::TopOutputs, SketchStrategy::TopOutputs),
        (
            "rand",
            OutputSketch::RandomSampling,
            SketchStrategy::RandomSampling,
        ),
        (
            "proj",
            OutputSketch::RandomProjection,
            SketchStrategy::RandomProjection,
        ),
    ];
    for (tag, ds) in datasets() {
        let k = (ds.d() / 2).max(1);
        for (label, mk, strategy) in modes {
            let oracle = SketchBoostTrainer::new(Device::rtx4090(), config(), strategy, k).fit(&ds);
            let gpu = GpuTrainer::new(Device::rtx4090(), config().with_sketch(mk(k))).fit(&ds);
            assert_trees_agree(&format!("{tag}/{label}{k}"), &gpu, &oracle);
        }
    }
}

/// `OutputSketch::None` must add *nothing*: no Sketch-phase time, no
/// sketch or refit kernels in the charge stream. Together with the
/// golden profiling fixtures this pins the dense path to the pre-sketch
/// trainer bit for bit.
#[test]
fn none_mode_charges_no_sketch_kernels() {
    let (_, ds) = datasets().remove(1);
    let device = Device::rtx4090();
    let _ = GpuTrainer::new(device.clone(), config()).fit(&ds);
    assert!(
        !device.summary().by_phase.contains_key(&Phase::Sketch),
        "dense training booked Sketch-phase time"
    );
    for r in device.records() {
        assert!(
            !r.name.starts_with("sketch_") && r.name != "leaf_refit_full_d",
            "dense training charged sketch kernel `{}`",
            r.name
        );
    }

    // And the sketched twin does charge them, in the Sketch phase.
    let device = Device::rtx4090();
    let _ = GpuTrainer::new(
        device.clone(),
        config().with_sketch(OutputSketch::TopOutputs(2)),
    )
    .fit(&ds);
    let summary = device.summary();
    assert!(
        summary.by_phase.get(&Phase::Sketch).copied().unwrap_or(0.0) > 0.0,
        "sketched training booked no Sketch-phase time"
    );
    let names: Vec<&str> = device.records().iter().map(|r| r.name).collect();
    for want in ["sketch_colnorm", "sketch_topk_select", "sketch_gather"] {
        assert!(names.contains(&want), "missing kernel `{want}`");
    }
    assert!(
        names.contains(&"leaf_refit_full_d"),
        "sketched training never refit leaves on full gradients"
    );
}

/// Property (the issue's second test satellite): for every sketch mode
/// the model predicts in full `d` dimensions, and every tree's leaf
/// vector equals a dense recompute from the full gradients of the
/// boosting state that grew it.
#[test]
fn sketched_leaf_values_equal_dense_recompute() {
    for (tag, ds) in datasets() {
        let (n, d) = (ds.n(), ds.d());
        let k = (d / 4).max(1);
        for sketch in [
            OutputSketch::None,
            OutputSketch::TopOutputs(k),
            OutputSketch::RandomSampling(k),
            OutputSketch::RandomProjection(k),
        ] {
            let cfg = config().with_sketch(sketch);
            let model = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
            let preds = model.predict(ds.features());
            assert_eq!(
                preds.len(),
                n * d,
                "{tag}/{}: predictions are not n × d",
                sketch.label()
            );

            // Replay boosting: recompute the full-d gradients that were
            // live when each tree was grown, route every instance to
            // its leaf, and re-derive the leaf vector densely.
            let loss = loss_for_task(ds.task());
            let replay_dev = Device::rtx4090();
            let mut scores = vec![0.0f32; n * d];
            for row in scores.chunks_mut(d) {
                row.copy_from_slice(&model.base);
            }
            for (t, tree) in model.trees.iter().enumerate() {
                let grads =
                    compute_gradients(&replay_dev, loss.as_ref(), &scores, ds.targets(), n, d);
                let mut by_leaf: std::collections::BTreeMap<usize, Vec<u32>> =
                    std::collections::BTreeMap::new();
                for i in 0..n {
                    by_leaf
                        .entry(tree.leaf_for_row(ds.features().row(i)))
                        .or_default()
                        .push(i as u32);
                }
                for (leaf, instances) in by_leaf {
                    let got = tree.leaf_value(leaf);
                    assert_eq!(
                        got.len(),
                        d,
                        "{tag}/{}: tree {t} leaf {leaf} is not d-dimensional",
                        sketch.label()
                    );
                    let (g, h) = grads.sums(&instances);
                    let want = leaf_values(&g, &h, cfg.lambda, cfg.learning_rate);
                    for (o, (a, b)) in got.iter().zip(&want).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                            "{tag}/{}: tree {t} leaf {leaf} output {o}: model={a} dense={b}",
                            sketch.label()
                        );
                    }
                }
                // Advance the boosting state exactly as training did.
                for i in 0..n {
                    tree.predict_into(ds.features().row(i), &mut scores[i * d..(i + 1) * d]);
                }
            }
        }
    }
}

/// The headline acceptance number: on a wide-output dataset (d ≥ 16,
/// k = d/4) sketching must cut total simulated time by ≥ 30% while the
/// quality stays inside the bench diff-gate thresholds (RMSE +5%).
#[test]
fn wide_output_sketching_cuts_sim_time_at_bounded_quality_cost() {
    let ds = make_regression(&RegressionSpec {
        instances: 2000,
        features: 40,
        outputs: 16,
        informative: 20,
        noise: 0.1,
        seed: 11,
        ..Default::default()
    });
    let (train, test) = ds.split(0.25, 3);
    let cfg = TrainConfig {
        num_trees: 5,
        max_depth: 5,
        max_bins: 64,
        min_instances: 5,
        ..TrainConfig::default()
    }
    .with_hist_method(HistogramMethod::Adaptive);

    let rmse_of = |model: &gbdt_core::model::Model| {
        gbdt_core::rmse(&model.predict(test.features()), test.targets())
    };

    let dense_dev = Device::rtx4090();
    let dense = GpuTrainer::new(dense_dev.clone(), cfg.clone()).fit(&train);
    let dense_ns = dense_dev.now_ns();
    let dense_rmse = rmse_of(&dense);

    let k = train.d() / 4;
    for sketch in [
        OutputSketch::TopOutputs(k),
        OutputSketch::RandomSampling(k),
        OutputSketch::RandomProjection(k),
    ] {
        let dev = Device::rtx4090();
        let model = GpuTrainer::new(dev.clone(), cfg.clone().with_sketch(sketch)).fit(&train);
        let ns = dev.now_ns();
        assert!(
            ns <= 0.7 * dense_ns,
            "{}: sim time {ns:.3e} ns is not ≥30% below dense {dense_ns:.3e} ns",
            sketch.label()
        );
        let rmse = rmse_of(&model);
        assert!(
            rmse <= dense_rmse * 1.05,
            "{}: rmse {rmse:.4} worse than +5% over dense {dense_rmse:.4}",
            sketch.label()
        );
    }
}

/// Sketching composes with both multi-GPU strategies: the sketch is
/// chosen once (device 0) and broadcast, and the resulting model must
/// equal the single-GPU sketched model exactly — the same decomposition
/// invariant the dense multi-GPU trainer upholds.
#[test]
fn multi_gpu_sketched_training_matches_single_gpu() {
    let (_, ds) = datasets().remove(1);
    let cfg = config().with_sketch(OutputSketch::TopOutputs(2));
    let single = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
    let fp = MultiGpuTrainer::new(DeviceGroup::rtx4090s(2), cfg.clone());
    let fp_model = fp.fit(&ds);
    assert_eq!(
        single.predict(ds.features()),
        fp_model.predict(ds.features()),
        "feature-parallel sketched predictions must equal single-GPU"
    );
    // The broadcast of the selected columns is booked as a collective.
    assert!(
        fp.group()
            .device(0)
            .summary()
            .by_phase
            .contains_key(&Phase::Comm),
        "sketched feature-parallel training booked no Comm time"
    );
    let dp = MultiGpuTrainer::with_strategy(
        DeviceGroup::rtx4090s(3),
        cfg,
        gbdt_core::MultiGpuStrategy::DataParallel,
    )
    .fit(&ds);
    assert_eq!(
        single.predict(ds.features()),
        dp.predict(ds.features()),
        "data-parallel sketched predictions must equal single-GPU"
    );
}

/// Satellite regression for the `HashMap` → `BTreeMap` change in
/// `sketch.rs` (repo-lint's `hashmap_iteration` rule): two fits of the
/// same sketched config on fresh devices must be *bit-identical* —
/// same tree structure and leaf bits, same predictions, and the same
/// kernel charge stream record for record. A `HashMap` anywhere on the
/// training path would let iteration order (and thus float summation
/// order) vary between runs and break this.
#[test]
fn sketched_training_is_bit_identical_across_runs() {
    for (tag, ds) in datasets() {
        let cfg = config().with_sketch(OutputSketch::TopOutputs(3));
        let dev_a = Device::rtx4090();
        let dev_b = Device::rtx4090();
        let model_a = GpuTrainer::new(dev_a.clone(), cfg.clone()).fit(&ds);
        let model_b = GpuTrainer::new(dev_b.clone(), cfg.clone()).fit(&ds);

        for (t, (ta, tb)) in model_a.trees.iter().zip(&model_b.trees).enumerate() {
            assert_eq!(
                ta.num_nodes(),
                tb.num_nodes(),
                "{tag}: tree {t} node counts differ between identical runs"
            );
            for (i, (na, nb)) in ta.nodes().iter().zip(tb.nodes()).enumerate() {
                match (na, nb) {
                    (Node::Leaf { value: va }, Node::Leaf { value: vb }) => {
                        let bits_a: Vec<u32> = va.iter().map(|v| v.to_bits()).collect();
                        let bits_b: Vec<u32> = vb.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(bits_a, bits_b, "{tag}: tree {t} leaf {i} bits differ");
                    }
                    _ => assert_eq!(na, nb, "{tag}: tree {t} node {i} differs"),
                }
            }
        }

        let pred_a: Vec<u32> = model_a
            .predict(ds.features())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let pred_b: Vec<u32> = model_b
            .predict(ds.features())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(pred_a, pred_b, "{tag}: predictions differ between runs");

        let rec_a = dev_a.records();
        let rec_b = dev_b.records();
        assert_eq!(
            rec_a.len(),
            rec_b.len(),
            "{tag}: charge-stream lengths differ"
        );
        for (i, (a, b)) in rec_a.iter().zip(&rec_b).enumerate() {
            assert_eq!(a.name, b.name, "{tag}: charge {i} kernel name differs");
            assert_eq!(a.phase, b.phase, "{tag}: charge {i} phase differs");
            assert_eq!(
                a.ns.to_bits(),
                b.ns.to_bits(),
                "{tag}: charge {i} ({}) duration bits differ",
                a.name
            );
        }
    }
}
