//! Property tests of [`BatchServer::stats`]'s nearest-rank
//! percentiles.
//!
//! The percentile estimator feeds both the serving benchmark's gate and
//! the telemetry report, so its order statistics must be trustworthy at
//! *every* population size — including the degenerate ones batching
//! produces naturally (a lone request before the first flush, a
//! two-request deadline batch). Nearest-rank over a sorted sample is
//! monotone in the quantile by construction; these tests pin that down
//! against the implementation, plus the n=1 identity: with a single
//! sample every percentile *is* that sample.

use gbdt_core::config::TrainConfig;
use gbdt_core::serve::{BatchConfig, BatchServer, DeviceEnsemble};
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::CompiledEnsemble;
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gpusim::Device;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One tiny trained ensemble shared across all proptest cases: the
/// percentile math only cares about the latency population, not the
/// model, so the expensive fit runs once.
fn fixture() -> &'static (CompiledEnsemble, Vec<f32>) {
    static FIXTURE: OnceLock<(CompiledEnsemble, Vec<f32>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = make_classification(&ClassificationSpec {
            instances: 120,
            features: 6,
            classes: 2,
            informative: 4,
            seed: 77,
            ..Default::default()
        });
        let model = GpuTrainer::new(
            Device::rtx4090(),
            TrainConfig {
                num_trees: 2,
                max_depth: 3,
                max_bins: 16,
                min_instances: 5,
                ..TrainConfig::default()
            },
        )
        .fit(&ds);
        let row = ds.features().row(0).to_vec();
        (model.compile(), row)
    })
}

/// Drive a server through the given arrival schedule (sorted to satisfy
/// the monotone-arrival contract) and return its stats.
fn serve_schedule(arrivals: &[f64], max_batch: usize) -> gbdt_core::serve::ServeStats {
    let (compiled, row) = fixture();
    let device = Device::rtx4090();
    let ens = DeviceEnsemble::upload(device, compiled);
    let mut server = BatchServer::new(
        ens,
        BatchConfig {
            max_batch,
            ..BatchConfig::default()
        },
    )
    .expect("valid config");
    for &t in arrivals {
        server.submit(t, row);
    }
    server.flush();
    server.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `p50 ≤ p90 ≤ p99 ≤ max` over every population the batching
    /// policy can produce — including tiny ones (1, 2, 3 requests)
    /// where a rank off-by-one would cross the order statistics.
    #[test]
    fn percentiles_are_monotone_at_every_population(
        raw in proptest::collection::vec(0u64..5_000_000u64, 1..40),
        max_batch in 1usize..9,
    ) {
        let mut arrivals: Vec<f64> = raw.iter().map(|&t| t as f64).collect();
        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let stats = serve_schedule(&arrivals, max_batch);
        prop_assert_eq!(stats.served, arrivals.len() as u64);
        prop_assert!(
            stats.p50_ns <= stats.p90_ns,
            "p50 {} > p90 {}", stats.p50_ns, stats.p90_ns
        );
        prop_assert!(
            stats.p90_ns <= stats.p99_ns,
            "p90 {} > p99 {}", stats.p90_ns, stats.p99_ns
        );
        prop_assert!(
            stats.p99_ns <= stats.max_ns,
            "p99 {} > max {}", stats.p99_ns, stats.max_ns
        );
        // Latencies are completion − arrival with completion ≥ arrival.
        prop_assert!(stats.p50_ns >= 0.0);
    }
}

/// With exactly one served request, every percentile — and the max —
/// equals the sole sample.
#[test]
fn single_sample_percentiles_all_equal_the_sample() {
    let stats = serve_schedule(&[1234.0], 8);
    assert_eq!(stats.served, 1);
    assert!(stats.max_ns > 0.0, "one real latency must be recorded");
    assert_eq!(stats.p50_ns.to_bits(), stats.max_ns.to_bits());
    assert_eq!(stats.p90_ns.to_bits(), stats.max_ns.to_bits());
    assert_eq!(stats.p99_ns.to_bits(), stats.max_ns.to_bits());
}

/// An empty population reports zeros, not NaNs or panics.
#[test]
fn empty_population_reports_zeros() {
    let (compiled, _) = fixture();
    let ens = DeviceEnsemble::upload(Device::rtx4090(), compiled);
    let server = BatchServer::new(ens, BatchConfig::default()).expect("valid config");
    let stats = server.stats();
    assert_eq!(stats.served, 0);
    assert_eq!(stats.p50_ns, 0.0);
    assert_eq!(stats.p99_ns, 0.0);
    assert_eq!(stats.max_ns, 0.0);
    assert_eq!(stats.throughput_rps, 0.0);
}
