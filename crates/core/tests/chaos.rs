//! Chaos suite: training under injected GPU faults.
//!
//! The contract proved here — for *any* seeded fault plan, training
//! either completes with results bit-identical to a fault-free run or
//! fails with a typed [`TrainError`]; it never panics, never returns a
//! silently wrong model, and the fault-free path is charge-for-charge
//! unperturbed by the recovery machinery.

use gbdt_core::config::TrainConfig;
use gbdt_core::trainer::GpuTrainer;
use gbdt_core::{MultiGpuStrategy, MultiGpuTrainer, RetryPolicy, TrainError};
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::Dataset;
use gpusim::{Device, DeviceGroup, DeviceProps, FaultPlan};

fn dataset() -> Dataset {
    make_classification(&ClassificationSpec {
        instances: 300,
        features: 10,
        classes: 4,
        informative: 7,
        class_sep: 1.8,
        seed: 42,
        ..Default::default()
    })
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        num_trees: 5,
        max_depth: 3,
        max_bins: 16,
        min_instances: 5,
        ..TrainConfig::default()
    }
}

/// Headline property, single GPU: 120 seeded fault plans. Every run
/// either matches the fault-free predictions bit-for-bit or returns a
/// typed error — and both outcomes actually occur across the sweep.
#[test]
fn seeded_fault_plans_are_bit_identical_or_typed_errors() {
    let ds = dataset();
    let cfg = quick_config();
    let reference = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
    let ref_pred = reference.predict(ds.features());

    let (mut ok_runs, mut err_runs, mut faulted_oks) = (0u32, 0u32, 0u32);
    for seed in 0..120u64 {
        let device = Device::new(0, DeviceProps::rtx4090());
        device.enable_faults(FaultPlan::seeded(seed, 150));
        let trainer = GpuTrainer::try_new(
            device.clone(),
            cfg.clone().with_retry(RetryPolicy::retries(2)),
        )
        .expect("valid config");
        match trainer.try_fit(&ds) {
            Ok(model) => {
                ok_runs += 1;
                assert_eq!(
                    model.predict(ds.features()),
                    ref_pred,
                    "seed {seed}: recovered run diverged from fault-free"
                );
                let report = device.fault_report().expect("injector attached");
                if report.transient_injected > 0 {
                    faulted_oks += 1;
                }
            }
            Err(e @ (TrainError::RetriesExhausted { .. } | TrainError::DeviceLost { .. })) => {
                err_runs += 1;
                assert!(!e.to_string().is_empty());
            }
            Err(other) => panic!("seed {seed}: unexpected error class: {other}"),
        }
    }
    assert!(ok_runs > 0, "no seeded plan completed");
    assert!(err_runs > 0, "no seeded plan failed — horizon too large?");
    assert!(
        faulted_oks > 0,
        "no run recovered from an injected transient — injection too sparse"
    );
}

/// A transient fault inside a round is retried and the result is
/// bit-identical; the failed attempt's charges stay booked, so the
/// faulted run is strictly slower in simulated time.
#[test]
fn transient_retry_recovers_bit_identically_and_pays_for_the_retry() {
    let ds = dataset();
    let cfg = quick_config();
    let clean_dev = Device::new(0, DeviceProps::rtx4090());
    let clean = GpuTrainer::new(clean_dev.clone(), cfg.clone()).fit_report(&ds);

    let dev = Device::new(0, DeviceProps::rtx4090());
    // Index 20 lands inside the boosting rounds (preprocess is the
    // first two charges).
    dev.enable_faults(FaultPlan::new().transient_at(20));
    let trainer = GpuTrainer::try_new(dev.clone(), cfg.clone().with_retry(RetryPolicy::retries(1)))
        .expect("valid config");
    let report = trainer.try_fit_report(&ds).expect("one retry suffices");
    assert_eq!(
        report.model.predict(ds.features()),
        clean.model.predict(ds.features())
    );
    assert_eq!(report.model.trees, clean.model.trees);
    assert!(
        dev.now_ns() > clean_dev.now_ns(),
        "re-executed round must cost extra simulated time"
    );
    assert_eq!(dev.fault_report().unwrap().transient_injected, 1);
}

/// With a zero retry budget the same transient is a typed
/// `RetriesExhausted`, not a panic or a wrong model.
#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let ds = dataset();
    let dev = Device::rtx4090();
    dev.enable_faults(FaultPlan::new().transient_at(20));
    let trainer = GpuTrainer::try_new(dev, quick_config()).expect("valid config");
    match trainer.try_fit(&ds) {
        Err(TrainError::RetriesExhausted {
            attempts, fault, ..
        }) => {
            // `attempts` counts retries performed; a zero budget means
            // the fault was never retried.
            assert_eq!(attempts, 0);
            assert!(fault.is_transient());
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Losing the only device is fatal — typed, with the failing round.
#[test]
fn single_gpu_device_loss_is_a_typed_error() {
    let ds = dataset();
    let dev = Device::rtx4090();
    dev.enable_faults(FaultPlan::new().device_lost_at(20));
    let trainer = GpuTrainer::try_new(dev, quick_config().with_retry(RetryPolicy::retries(5)))
        .expect("valid config");
    match trainer.try_fit(&ds) {
        Err(TrainError::DeviceLost { fault, .. }) => assert!(!fault.is_transient()),
        other => panic!("expected DeviceLost, got {other:?}"),
    }
}

/// Zero perturbation: a trainer carrying a retry policy but no
/// injector produces the identical model AND the identical charge
/// stream as a plain trainer — the recovery machinery is free when
/// faults are off.
#[test]
fn fault_machinery_is_free_when_no_injector_is_attached() {
    let ds = dataset();
    let cfg = quick_config();
    let plain_dev = Device::new(0, DeviceProps::rtx4090());
    let plain = GpuTrainer::new(plain_dev.clone(), cfg.clone()).fit(&ds);

    let armed_dev = Device::new(0, DeviceProps::rtx4090());
    let armed = GpuTrainer::try_new(armed_dev.clone(), cfg.with_retry(RetryPolicy::retries(7)))
        .expect("valid config")
        .try_fit(&ds)
        .expect("no faults injected");

    assert_eq!(plain.trees, armed.trees);
    assert_eq!(plain.predict(ds.features()), armed.predict(ds.features()));
    let (a, b) = (plain_dev.records(), armed_dev.records());
    assert_eq!(a.len(), b.len(), "charge count perturbed");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.ns.to_bits(), y.ns.to_bits(), "{} charge drifted", x.name);
        assert_eq!(x.start_ns.to_bits(), y.start_ns.to_bits());
    }
}

/// Multi-GPU graceful degradation: a device dies mid-training, the
/// survivor absorbs its share, and the final trees are bit-identical
/// to a fault-free group — for both decomposition strategies.
#[test]
fn multi_gpu_degrades_to_survivors_with_identical_trees() {
    let ds = dataset();
    let cfg = quick_config();
    for strategy in [
        MultiGpuStrategy::FeatureParallel,
        MultiGpuStrategy::DataParallel,
    ] {
        let reference =
            MultiGpuTrainer::with_strategy(DeviceGroup::rtx4090s(2), cfg.clone(), strategy)
                .fit(&ds);

        let group = DeviceGroup::rtx4090s(2);
        // Device 1 dies inside the boosting rounds; its preprocess
        // shares (2 charges) are long done by index 10.
        group
            .device(1)
            .enable_faults(FaultPlan::new().device_lost_at(10));
        let trainer = MultiGpuTrainer::try_with_strategy(group.clone(), cfg.clone(), strategy)
            .expect("valid config");
        let model = trainer.try_fit(&ds).expect("survivor finishes the job");
        assert_eq!(
            model.trees, reference.trees,
            "{strategy:?}: degraded run must grow identical trees"
        );
        assert_eq!(
            model.predict(ds.features()),
            reference.predict(ds.features())
        );
        let report = group.device(1).fault_report().expect("injector attached");
        assert_eq!(report.device_lost, 1);
        assert!(
            report.charges_dropped_after_loss > 0,
            "{strategy:?}: the dead device must stop accumulating work"
        );
    }
}

/// When every device in the group dies, training fails with the typed
/// `AllDevicesLost` — never a panic, never a partial model.
#[test]
fn multi_gpu_total_loss_is_a_typed_error() {
    let ds = dataset();
    let group = DeviceGroup::rtx4090s(2);
    group
        .device(0)
        .enable_faults(FaultPlan::new().device_lost_at(8));
    group
        .device(1)
        .enable_faults(FaultPlan::new().device_lost_at(8));
    let trainer = MultiGpuTrainer::try_new(group, quick_config()).expect("valid config");
    match trainer.try_fit(&ds) {
        Err(TrainError::AllDevicesLost { .. }) => {}
        other => panic!("expected AllDevicesLost, got {other:?}"),
    }
}

/// Multi-GPU chaos sweep: 40 seeds × 3 devices, every device carrying
/// its own seeded plan. Same contract as the single-GPU sweep.
#[test]
fn multi_gpu_seeded_chaos_sweep() {
    let ds = dataset();
    let cfg = quick_config();
    let reference = MultiGpuTrainer::new(DeviceGroup::rtx4090s(3), cfg.clone()).fit(&ds);
    let ref_pred = reference.predict(ds.features());

    let (mut ok_runs, mut err_runs) = (0u32, 0u32);
    for seed in 0..40u64 {
        let group = DeviceGroup::rtx4090s(3);
        for (i, dev) in group.devices().iter().enumerate() {
            dev.enable_faults(FaultPlan::seeded(seed * 31 + i as u64, 120));
        }
        let trainer =
            MultiGpuTrainer::try_new(group, cfg.clone().with_retry(RetryPolicy::retries(2)))
                .expect("valid config");
        match trainer.try_fit(&ds) {
            Ok(model) => {
                ok_runs += 1;
                assert_eq!(
                    model.predict(ds.features()),
                    ref_pred,
                    "seed {seed}: degraded group diverged"
                );
            }
            Err(
                e @ (TrainError::RetriesExhausted { .. }
                | TrainError::AllDevicesLost { .. }
                | TrainError::DeviceLost { .. }),
            ) => {
                err_runs += 1;
                assert!(!e.to_string().is_empty());
            }
            Err(other) => panic!("seed {seed}: unexpected error class: {other}"),
        }
    }
    assert!(ok_runs > 0, "no multi-GPU chaos run completed");
    // Individual device losses degrade rather than fail, so errors are
    // rarer here than single-GPU; the sweep still must exercise some.
    assert!(
        ok_runs + err_runs == 40,
        "every seed must resolve to exactly one outcome"
    );
}
