//! Property-based tests of training-level invariants.
//!
//! Two contracts guard the level-parallel histogram pipeline:
//!
//! 1. **Subtraction exactness** — a sibling histogram derived as
//!    `parent − child` (either in place via `subtract_from` or into a
//!    pooled buffer via `assign_difference`) is *bit-identical* to
//!    building it directly from instance rows. Gradients are drawn from
//!    dyadic rationals (k/256) so every `f64` partial sum is exact and
//!    equality is well-defined down to the last bit.
//! 2. **Thread-count determinism** — the same seed produces the same
//!    model whether level histograms are built serially, in a 1-thread
//!    pool, or in a 4-thread pool, and the simulated device timeline is
//!    identical in all cases.

use gbdt_core::config::{HistOptions, TrainConfig};
use gbdt_core::grad::Gradients;
use gbdt_core::hist::{accumulate_only, HistContext, NodeHistogram};
use gbdt_core::GpuTrainer;
use gbdt_data::synth::{make_classification, ClassificationSpec};
use gbdt_data::{BinnedDataset, DenseMatrix};
use gpusim::Device;
use proptest::prelude::*;

const BINS: usize = 16;

/// Build a histogram over `idx` with the given options (charge-free).
fn build(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    features: &[u32],
    opts: HistOptions,
    idx: &[u32],
) -> NodeHistogram {
    let ctx = HistContext {
        device,
        data,
        grads,
        features,
        bins: BINS,
        opts,
    };
    let (node_g, node_h) = grads.sums(idx);
    let mut out = NodeHistogram::new(features.len(), grads.d, BINS);
    accumulate_only(&ctx, idx, &node_g, &node_h, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn subtraction_is_bit_identical_to_direct_build(
        // Feature values from a small discrete set: binning stays
        // meaningful and duplicated values exercise shared bins.
        raw in proptest::collection::vec(0u32..12, 24..240),
        m in 1usize..5,
        d in 1usize..4,
        // Dyadic gradients: k/256 with |k| < 1024 keeps every f64
        // partial sum exact, so bitwise equality must hold.
        gseed in 1u64..1_000_000,
        mask_mod in 2u32..7,
        sparse_aware in any::<bool>(),
    ) {
        let n = raw.len() / m;
        prop_assume!(n >= 8);
        let values: Vec<f32> = raw[..n * m].iter().map(|&v| v as f32).collect();
        let matrix = DenseMatrix::new(n, m, values);
        let data = BinnedDataset::build(&matrix, BINS);

        // Deterministic dyadic gradients from a cheap LCG.
        let mut state = gseed;
        let mut dyadic = |lo: i64, hi: i64| -> f32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let span = (hi - lo) as u64;
            let k = lo + ((state >> 33) % span) as i64;
            (k as f32) / 256.0
        };
        let g: Vec<f32> = (0..n * d).map(|_| dyadic(-1024, 1024)).collect();
        let h: Vec<f32> = (0..n * d).map(|_| dyadic(1, 1024)).collect();
        let grads = Gradients { g, h, n, d };

        let device = Device::rtx4090();
        let features: Vec<u32> = (0..m as u32).collect();
        let opts = HistOptions { sparse_aware, ..HistOptions::default() };

        let all: Vec<u32> = (0..n as u32).collect();
        let left: Vec<u32> = all.iter().copied().filter(|i| i % mask_mod == 0).collect();
        let right: Vec<u32> = all.iter().copied().filter(|i| i % mask_mod != 0).collect();
        prop_assume!(!left.is_empty() && !right.is_empty());

        let parent = build(&device, &data, &grads, &features, opts, &all);
        let left_direct = build(&device, &data, &grads, &features, opts, &left);
        let right_direct = build(&device, &data, &grads, &features, opts, &right);

        // Path 1: in-place subtract_from (seed API).
        let mut derived = left_direct.clone();
        derived.subtract_from(&parent); // parent − left = right
        prop_assert_eq!(&derived.counts, &right_direct.counts);
        prop_assert_eq!(&derived.g, &right_direct.g, "g not bit-identical (subtract_from)");
        prop_assert_eq!(&derived.h, &right_direct.h, "h not bit-identical (subtract_from)");

        // Path 2: assign_difference into a dirty pooled buffer (the
        // level-parallel grower's path). Pre-poison the buffer to prove
        // every element is overwritten.
        let mut pooled = NodeHistogram::new(m, d, BINS);
        pooled.g.fill(f64::NAN);
        pooled.h.fill(f64::NAN);
        pooled.counts.fill(u32::MAX);
        pooled.assign_difference(&parent, &left_direct);
        prop_assert_eq!(&pooled.counts, &right_direct.counts);
        prop_assert_eq!(&pooled.g, &right_direct.g, "g not bit-identical (assign_difference)");
        prop_assert_eq!(&pooled.h, &right_direct.h, "h not bit-identical (assign_difference)");
    }

    #[test]
    fn same_seed_same_model_at_any_thread_count(
        seed in 1u64..500,
        subtraction in any::<bool>(),
    ) {
        let ds = make_classification(&ClassificationSpec {
            instances: 220,
            features: 8,
            classes: 3,
            informative: 5,
            class_sep: 1.5,
            seed,
            ..Default::default()
        });
        let mut config = TrainConfig {
            num_trees: 3,
            max_depth: 4,
            max_bins: BINS,
            min_instances: 4,
            parallel_level_hist: true,
            ..TrainConfig::default()
        };
        config.hist.subtraction = subtraction;

        let run = |cfg: TrainConfig, threads: Option<usize>| {
            let device = Device::rtx4090();
            let trainer = GpuTrainer::new(device.clone(), cfg);
            let report = match threads {
                Some(t) => rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .unwrap()
                    .install(|| trainer.fit_report(&ds)),
                None => trainer.fit_report(&ds),
            };
            (report.model.trees.clone(), device.now_ns())
        };

        let (trees_1, ns_1) = run(config.clone(), Some(1));
        let (trees_4, ns_4) = run(config.clone(), Some(4));
        let serial = TrainConfig { parallel_level_hist: false, ..config.clone() };
        let (trees_s, ns_s) = run(serial, None);

        prop_assert_eq!(&trees_1, &trees_4, "1-thread vs 4-thread models differ");
        prop_assert_eq!(&trees_1, &trees_s, "parallel vs serial models differ");
        prop_assert_eq!(ns_1, ns_4, "simulated time depends on thread count");
        prop_assert_eq!(ns_1, ns_s, "simulated time depends on the parallel toggle");
    }
}
