//! Sanitizer wiring for the training pipeline's simulated kernels.
//!
//! The histogram, partition, subtraction and leaf-value kernels execute
//! functionally as deterministic host folds; what `compute-sanitizer`
//! would check on hardware is the *access pattern the launch implies*.
//! When a [`gpusim::Sanitizer`] is attached to the device
//! ([`gpusim::Device::enable_sanitizer`]), the helpers in this module
//! declare that pattern — thread coordinates, buffer offsets, and most
//! importantly which updates are *claimed atomic* — so racecheck can
//! verify the claims (atomic collisions legal, plain-write collisions
//! flagged) instead of trusting them.
//!
//! Declaration is deterministically sampled (feature/instance/output
//! caps below): the sanitizer checks structure, it does not account
//! cost, so a bounded sample that preserves the collision structure
//! (many blocks updating the same histogram bins) is sufficient and
//! keeps sanitized runs memory-bounded. With no sanitizer attached
//! every helper is a single `Option` check — the hot path is untouched
//! and nothing is ever charged to the time ledger.

use crate::hist::HistContext;
use gpusim::sanitize::Sanitizer;
use gpusim::{AccessKind, Device, MemSpace, ThreadCtx};

/// Max features whose access streams are declared per histogram launch.
pub(crate) const MAX_TRACE_FEATURES: usize = 4;
/// Max instances declared per (feature) stream.
pub(crate) const MAX_TRACE_INSTANCES: usize = 256;
/// Max output dimensions declared per (instance, feature) pair.
pub(crate) const MAX_TRACE_OUTPUTS: usize = 4;
/// Max elements declared for streaming kernels (partition, subtract).
pub(crate) const MAX_TRACE_ELEMS: usize = 4096;

/// Stride-sampled positions `0, s, 2s, …` covering `len` with at most
/// `cap` points (deterministic; mirrors the cost model's warp sampler).
pub(crate) fn sample_stride(len: usize, cap: usize) -> impl Iterator<Item = usize> {
    let stride = len.div_ceil(cap.max(1)).max(1);
    (0..len).step_by(stride)
}

/// Declare one node's histogram build with the *resolved* method.
/// No-op without an attached sanitizer. Used by the stream-batched
/// charging path, which bypasses the per-method `charge` functions.
pub fn trace_hist(ctx: &HistContext<'_>, idx: &[u32], method: crate::config::HistogramMethod) {
    let Some(san) = ctx.device.sanitizer() else {
        return;
    };
    use crate::config::HistogramMethod;
    match method {
        HistogramMethod::GlobalMemory => crate::hist::gmem::trace(ctx, idx, &san),
        HistogramMethod::SharedMemory => crate::hist::smem::trace(ctx, idx, &san),
        HistogramMethod::SortReduce => crate::hist::sortreduce::trace(ctx, idx, &san),
        HistogramMethod::Adaptive => crate::hist::adaptive::trace(ctx, idx, &san),
    }
}

/// Declare the histogram-subtraction kernel (`out = parent − sibling`):
/// one thread per element, two reads and one plain write, all at the
/// thread's own offset — disjoint by construction, and racecheck
/// verifies exactly that.
pub fn trace_subtract(device: &Device, elems: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("hist_subtract");
    let parent = scope.register("parent_hist", elems, MemSpace::Global, true);
    let sibling = scope.register("sibling_hist", elems, MemSpace::Global, true);
    let out = scope.register("derived_hist", elems, MemSpace::Global, false);
    for e in sample_stride(elems, MAX_TRACE_ELEMS) {
        let ctx = ThreadCtx::from_global(e, 256);
        scope.touch(parent, ctx, e, AccessKind::Read);
        scope.touch(sibling, ctx, e, AccessKind::Read);
        scope.touch(out, ctx, e, AccessKind::Write);
    }
}

/// Declare one node's scan-based partition: every thread reads its flag
/// and index, then scatters to an exclusive-scan-derived slot. The
/// scatter offsets are computed from the *real* flags, so a broken scan
/// (two instances mapped to one slot) would surface as a
/// write-write race.
pub fn trace_partition(device: &Device, flags: &[bool]) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let n = flags.len();
    if n == 0 {
        return;
    }
    let left_total: usize = flags.iter().filter(|&&f| f).count();
    let scope = san.scope("partition_level");
    let f_id = scope.register("flags", n, MemSpace::Global, true);
    let i_id = scope.register("node_indices", n, MemSpace::Global, true);
    let o_id = scope.register("partition_out", n, MemSpace::Global, false);
    // Exclusive prefix of flags gives each thread its scatter slot.
    let mut left_before = 0usize;
    let mut right_before = 0usize;
    let stride = n.div_ceil(MAX_TRACE_ELEMS).max(1);
    for (e, &flag) in flags.iter().enumerate() {
        if e % stride == 0 {
            let ctx = ThreadCtx::from_global(e, 256);
            scope.touch(f_id, ctx, e, AccessKind::Read);
            scope.touch(i_id, ctx, e, AccessKind::Read);
            let slot = if flag {
                left_before
            } else {
                left_total + right_before
            };
            scope.touch(o_id, ctx, slot, AccessKind::Write);
        }
        if flag {
            left_before += 1;
        } else {
            right_before += 1;
        }
    }
}

/// Declare one leaf's value computation: one thread per output writes
/// its own slot of the leaf-value vector.
pub fn trace_leaf_values(device: &Device, d: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("leaf_values");
    let g_id = scope.register("node_g", d, MemSpace::Global, true);
    let h_id = scope.register("node_h", d, MemSpace::Global, true);
    let v_id = scope.register("leaf_value", d, MemSpace::Global, false);
    for k in 0..d {
        let ctx = ThreadCtx::from_global(k, 256);
        scope.touch(g_id, ctx, k, AccessKind::Read);
        scope.touch(h_id, ctx, k, AccessKind::Read);
        scope.touch(v_id, ctx, k, AccessKind::Write);
    }
}

/// Declare the leaf-scatter score update: one thread per resident
/// instance reads its leaf's value row and read-modify-writes its own
/// score row. Rows are disjoint across instances (each instance lives
/// in exactly one leaf), which is exactly what racecheck verifies.
pub fn trace_update_scores(
    device: &Device,
    d: usize,
    n: usize,
    leaf_assignments: &[(Vec<u32>, Vec<f32>)],
) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("update_scores");
    let v_id = scope.register(
        "leaf_value",
        leaf_assignments.len() * d,
        MemSpace::Global,
        true,
    );
    let s_id = scope.register("scores", n * d, MemSpace::Global, true);
    let mut traced = 0usize;
    'outer: for (leaf, (instances, _)) in leaf_assignments.iter().enumerate() {
        for &i in instances
            .iter()
            .take(MAX_TRACE_ELEMS / leaf_assignments.len().max(1) + 1)
        {
            if traced >= MAX_TRACE_ELEMS {
                break 'outer;
            }
            traced += 1;
            let ctx = ThreadCtx::from_global(i as usize, 256);
            for k in 0..d.min(MAX_TRACE_OUTPUTS) {
                scope.touch(v_id, ctx, leaf * d + k, AccessKind::Read);
                let at = i as usize * d + k;
                scope.touch(s_id, ctx, at, AccessKind::Read);
                scope.touch(s_id, ctx, at, AccessKind::Write);
            }
        }
    }
}

/// Declare the per-output gradient-energy reduction of the TopOutputs
/// sketch: one thread per instance reads its gradient row and
/// atomically accumulates `|g|` into the per-column energy — atomic
/// collisions across instances are the point, and racecheck verifies
/// they are claimed.
pub fn trace_sketch_colnorm(device: &Device, n: usize, d: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("sketch_colnorm");
    let g_id = scope.register("grad_plane", n * d, MemSpace::Global, true);
    let e_id = scope.register("col_energy", d, MemSpace::Global, true);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        let ctx = ThreadCtx::from_global(i, 256);
        for k in 0..d.min(MAX_TRACE_OUTPUTS) {
            scope.touch(g_id, ctx, i * d + k, AccessKind::Read);
            scope.touch(e_id, ctx, k, AccessKind::Atomic);
        }
    }
}

/// Declare the column-gather sketch kernel: one thread per
/// (instance, sketched column) reads its column index and the full
/// gradient/Hessian entries, then plain-writes its own slot of the
/// `n × k` sketch — disjoint by construction.
pub fn trace_sketch_gather(device: &Device, n: usize, d: usize, cols: &[usize]) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let k = cols.len();
    let scope = san.scope("sketch_gather");
    let c_id = scope.register("sketch_cols", k, MemSpace::Global, true);
    let g_id = scope.register("grad_full", n * d * 2, MemSpace::Global, true);
    let s_id = scope.register("grad_sketch", n * k * 2, MemSpace::Global, false);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        for (j, &c) in cols.iter().enumerate().take(MAX_TRACE_OUTPUTS) {
            let ctx = ThreadCtx::from_global(i * k + j, 256);
            scope.touch(c_id, ctx, j, AccessKind::Read);
            scope.touch(g_id, ctx, (i * d + c) * 2, AccessKind::Read);
            scope.touch(g_id, ctx, (i * d + c) * 2 + 1, AccessKind::Read);
            scope.touch(s_id, ctx, (i * k + j) * 2, AccessKind::Write);
            scope.touch(s_id, ctx, (i * k + j) * 2 + 1, AccessKind::Write);
        }
    }
}

/// Declare the GEMM-style projection sketch: one thread per
/// (instance, sketched column) reads the instance's gradient row and
/// the projection matrix column, then plain-writes its own `n × k`
/// slot — disjoint writes, shared reads.
pub fn trace_sketch_projection(device: &Device, n: usize, d: usize, k: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("sketch_projection");
    let g_id = scope.register("grad_full", n * d * 2, MemSpace::Global, true);
    let r_id = scope.register("proj_matrix", d * k, MemSpace::Global, true);
    let s_id = scope.register("grad_sketch", n * k * 2, MemSpace::Global, false);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        for j in 0..k.min(MAX_TRACE_OUTPUTS) {
            let ctx = ThreadCtx::from_global(i * k + j, 256);
            for kk in sample_stride(d, MAX_TRACE_OUTPUTS) {
                scope.touch(g_id, ctx, (i * d + kk) * 2, AccessKind::Read);
                scope.touch(g_id, ctx, (i * d + kk) * 2 + 1, AccessKind::Read);
                scope.touch(r_id, ctx, kk * k + j, AccessKind::Read);
            }
            scope.touch(s_id, ctx, (i * k + j) * 2, AccessKind::Write);
            scope.touch(s_id, ctx, (i * k + j) * 2 + 1, AccessKind::Write);
        }
    }
}

/// Declare the full-`d` leaf-value refit gather-reduce: one thread per
/// (leaf, output) reads the resident instances' full gradient entries
/// and plain-writes its own slot of the leaf-value table — leaves are
/// disjoint instance sets, outputs are disjoint slots.
pub fn trace_leaf_refit(
    device: &Device,
    n: usize,
    d: usize,
    leaf_assignments: &[(Vec<u32>, Vec<f32>)],
) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let leaves = leaf_assignments.len();
    let scope = san.scope("leaf_refit_full_d");
    let g_id = scope.register("grad_full", n * d * 2, MemSpace::Global, true);
    let v_id = scope.register("leaf_values_full", leaves * d, MemSpace::Global, false);
    let per_leaf = (MAX_TRACE_ELEMS / leaves.max(1)).max(1);
    for (leaf, (instances, _)) in leaf_assignments.iter().enumerate() {
        for k in 0..d.min(MAX_TRACE_OUTPUTS) {
            let ctx = ThreadCtx::from_global(leaf * d + k, 256);
            for &i in instances.iter().take(per_leaf) {
                scope.touch(g_id, ctx, (i as usize * d + k) * 2, AccessKind::Read);
                scope.touch(g_id, ctx, (i as usize * d + k) * 2 + 1, AccessKind::Read);
            }
            scope.touch(v_id, ctx, leaf * d + k, AccessKind::Write);
        }
    }
}

/// Declare the elementwise gradient/Hessian kernel: one thread per
/// (instance, output) reads its score and target slots and plain-writes
/// its own g/h slots — fully disjoint by construction.
pub fn trace_grad_hess(device: &Device, n: usize, d: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("grad_hess");
    let s_id = scope.register("scores", n * d, MemSpace::Global, true);
    let t_id = scope.register("targets", n * d, MemSpace::Global, true);
    let g_id = scope.register("grad_out", n * d, MemSpace::Global, false);
    let h_id = scope.register("hess_out", n * d, MemSpace::Global, false);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        let ctx = ThreadCtx::from_global(i, 256);
        for k in 0..d.min(MAX_TRACE_OUTPUTS) {
            let at = i * d + k;
            scope.touch(s_id, ctx, at, AccessKind::Read);
            scope.touch(t_id, ctx, at, AccessKind::Read);
            scope.touch(g_id, ctx, at, AccessKind::Write);
            scope.touch(h_id, ctx, at, AccessKind::Write);
        }
    }
}

/// Declare the in-place bf16 gradient quantization: one thread per
/// element read-modify-writes its own slot of the interleaved g/h
/// plane — no cross-thread traffic at all.
pub fn trace_quantize_bf16(device: &Device, elems: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("quantize_bf16");
    let p_id = scope.register("grad_plane", elems * 2, MemSpace::Global, true);
    for e in sample_stride(elems, MAX_TRACE_ELEMS) {
        let ctx = ThreadCtx::from_global(e, 256);
        scope.touch(p_id, ctx, e, AccessKind::Read);
        scope.touch(p_id, ctx, e, AccessKind::Write);
    }
}

/// Declare the quantile-binning preprocessing kernel: one thread per
/// (instance, feature) reads its raw value plus the feature's shared
/// cut array and writes its own bin id — reads may collide (read-read
/// is always legal), writes are disjoint.
pub fn trace_quantile_binning(device: &Device, n: usize, m: usize, max_bins: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("quantile_binning");
    let r_id = scope.register("raw_features", n * m, MemSpace::Global, true);
    let c_id = scope.register("bin_cuts", m * max_bins.max(1), MemSpace::Global, true);
    let b_id = scope.register("bin_ids", n * m, MemSpace::Global, false);
    let mf = m.clamp(1, MAX_TRACE_FEATURES);
    for f in 0..mf {
        for i in sample_stride(n, MAX_TRACE_INSTANCES / mf + 1) {
            let ctx = ThreadCtx::from_global(f * n + i, 256);
            let at = i * m + f;
            scope.touch(r_id, ctx, at, AccessKind::Read);
            scope.touch(c_id, ctx, f * max_bins.max(1), AccessKind::Read);
            scope.touch(b_id, ctx, at, AccessKind::Write);
        }
    }
}

/// Declare the level's three split-evaluation kernels (scan+gain,
/// per-segment argmax, global per-node argmax). Scan and segment
/// reductions write disjoint slots; the cross-segment winner update is
/// claimed atomic — which is exactly what a broken segment mapping
/// would violate.
pub fn trace_split_level(device: &Device, segments: usize, candidates: usize, nodes: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let (segments, candidates, nodes) = (segments.max(1), candidates.max(1), nodes.max(1));
    {
        let scope = san.scope("split_scan_gain_level");
        let h_id = scope.register("node_hist", candidates, MemSpace::Global, true);
        let g_id = scope.register("gain_out", candidates, MemSpace::Global, false);
        for e in sample_stride(candidates, MAX_TRACE_ELEMS) {
            let ctx = ThreadCtx::from_global(e, 256);
            scope.touch(h_id, ctx, e, AccessKind::Read);
            scope.touch(g_id, ctx, e, AccessKind::Write);
        }
    }
    {
        let scope = san.scope("split_seg_argmax_level");
        let g_id = scope.register("gain_out", candidates, MemSpace::Global, true);
        let s_id = scope.register("seg_best", segments, MemSpace::Global, false);
        let per_seg = (candidates / segments).max(1);
        for s in sample_stride(segments, MAX_TRACE_ELEMS) {
            let ctx = ThreadCtx::from_global(s, 256);
            scope.touch(
                g_id,
                ctx,
                (s * per_seg).min(candidates - 1),
                AccessKind::Read,
            );
            scope.touch(s_id, ctx, s, AccessKind::Write);
        }
    }
    {
        let scope = san.scope("split_global_argmax_level");
        let s_id = scope.register("seg_best", segments, MemSpace::Global, true);
        let w_id = scope.register("node_winner", nodes, MemSpace::Global, true);
        for s in sample_stride(segments, MAX_TRACE_ELEMS) {
            let ctx = ThreadCtx::from_global(s, 256);
            scope.touch(s_id, ctx, s, AccessKind::Read);
            scope.touch(w_id, ctx, s % nodes, AccessKind::Atomic);
        }
    }
}

/// Declare the training-path ensemble predict kernel: one thread per
/// instance walks node records (shared reads) and writes its own score
/// row — the same disjoint row-scatter the serving kernels replay.
pub fn trace_predict(device: &Device, n: usize, d: usize, total_depth: usize) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let scope = san.scope("predict");
    let hops = total_depth.max(1);
    let t_id = scope.register("tree_nodes", hops, MemSpace::Global, true);
    let s_id = scope.register("scores_out", n * d, MemSpace::Global, false);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        let ctx = ThreadCtx::from_global(i, 256);
        for hop in sample_stride(hops, 8) {
            scope.touch(t_id, ctx, hop, AccessKind::Read);
        }
        for k in 0..d.min(MAX_TRACE_OUTPUTS) {
            scope.touch(s_id, ctx, i * d + k, AccessKind::Write);
        }
    }
}

/// Shared declaration core of the gmem/smem histogram kernels: one
/// thread per (instance, feature) pair, feature-major, reading its bin
/// ID and gradient row, then issuing `kind` updates to the histogram
/// accumulators named by `g_label`/`h_label` in `space`.
///
/// Returns nothing; violations accumulate on the sanitizer.
pub(crate) fn trace_pair_kernel(
    san: &Sanitizer,
    ctx: &HistContext<'_>,
    idx: &[u32],
    name: &'static str,
    space: MemSpace,
    atomic: bool,
) {
    let mf = ctx.features.len();
    let d = ctx.d();
    let bins = ctx.bins;
    let n = ctx.data.n();
    let nn = idx.len();
    let scope = san.scope(name);

    let b_id = scope.register("bin_ids", mf * n, MemSpace::Global, true);
    let gr_id = scope.register("grad_rows", n * d * 2, MemSpace::Global, true);
    // Shared-memory strategies accumulate into a per-block tile; the
    // global strategy hits the global plane directly.
    let (g_id, h_id, c_id, tile) = match space {
        MemSpace::Shared => (
            scope.register("smem_tile_g", d * bins, MemSpace::Shared, true),
            scope.register("smem_tile_h", d * bins, MemSpace::Shared, true),
            scope.register("smem_tile_cnt", bins, MemSpace::Shared, true),
            true,
        ),
        MemSpace::Global => (
            scope.register("hist_g", mf * d * bins, MemSpace::Global, true),
            scope.register("hist_h", mf * d * bins, MemSpace::Global, true),
            scope.register("hist_counts", mf * bins, MemSpace::Global, true),
            false,
        ),
    };
    let kind = if atomic {
        AccessKind::Atomic
    } else {
        AccessKind::Write
    };

    let f_stride = mf.div_ceil(MAX_TRACE_FEATURES).max(1);
    for f_local in (0..mf).step_by(f_stride) {
        let f = ctx.features[f_local] as usize;
        let col = ctx.data.bins.col(f);
        for j in sample_stride(nn, MAX_TRACE_INSTANCES) {
            let i = idx[j] as usize;
            let b = col[i] as usize;
            // Thread per pair, feature-major over the node's instances.
            let tctx = ThreadCtx::from_global(f_local * nn + j, 256);
            scope.touch(b_id, tctx, f * n + i, AccessKind::Read);
            for k in 0..d.min(MAX_TRACE_OUTPUTS) {
                scope.touch(gr_id, tctx, (i * d + k) * 2, AccessKind::Read);
                scope.touch(gr_id, tctx, (i * d + k) * 2 + 1, AccessKind::Read);
                let slot = if tile {
                    k * bins + b
                } else {
                    (f_local * d + k) * bins + b
                };
                scope.touch(g_id, tctx, slot, kind);
                scope.touch(h_id, tctx, slot, kind);
            }
            let cnt_slot = if tile { b } else { f_local * bins + b };
            scope.touch(c_id, tctx, cnt_slot, kind);
        }
    }

    // Shared-memory tiles flush once per block into the global plane —
    // spread atomics, one per histogram slot, verified legal across
    // blocks.
    if tile {
        let fg = scope.register("hist_g", mf * d * bins, MemSpace::Global, true);
        let fh = scope.register("hist_h", mf * d * bins, MemSpace::Global, true);
        for block in 0..2u32 {
            for f_local in (0..mf).step_by(f_stride) {
                for k in 0..d.min(MAX_TRACE_OUTPUTS) {
                    for b in sample_stride(bins, 32) {
                        let slot = (f_local * d + k) * bins + b;
                        let tctx = ThreadCtx {
                            block,
                            thread: (k * bins + b) as u32 % 256,
                        };
                        scope.touch(fg, tctx, slot, AccessKind::Atomic);
                        scope.touch(fh, tctx, slot, AccessKind::Atomic);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HistOptions, HistogramMethod};
    use crate::hist::test_support::fixture;
    use crate::hist::HistContext;
    use gpusim::{Device, SanitizeMode};

    fn make_ctx<'a>(
        device: &'a Device,
        data: &'a gbdt_data::BinnedDataset,
        grads: &'a crate::grad::Gradients,
        features: &'a [u32],
        method: HistogramMethod,
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins: 32,
            opts: HistOptions {
                method,
                ..HistOptions::default()
            },
        }
    }

    #[test]
    fn all_hist_methods_trace_clean() {
        let (_, data, grads) = fixture(300, 6, 3, 1);
        let features: Vec<u32> = (0..6).collect();
        let idx: Vec<u32> = (0..300).collect();
        for method in [
            HistogramMethod::GlobalMemory,
            HistogramMethod::SharedMemory,
            HistogramMethod::SortReduce,
            HistogramMethod::Adaptive,
        ] {
            let device = Device::rtx4090();
            device.enable_sanitizer(SanitizeMode::Full);
            let ctx = make_ctx(&device, &data, &grads, &features, method);
            trace_hist(&ctx, &idx, method);
            let report = device.sanitize_report().expect("sanitizer attached");
            assert!(report.is_clean(), "{method:?}: {}", report.table());
            assert!(report.total_accesses > 0, "{method:?} declared nothing");
        }
    }

    #[test]
    fn gmem_and_smem_declare_atomics_sortreduce_does_not() {
        let (_, data, grads) = fixture(200, 4, 2, 2);
        let features: Vec<u32> = (0..4).collect();
        let idx: Vec<u32> = (0..200).collect();

        let atomics_of = |method: HistogramMethod| {
            let device = Device::rtx4090();
            device.enable_sanitizer(SanitizeMode::Full);
            let ctx = make_ctx(&device, &data, &grads, &features, method);
            trace_hist(&ctx, &idx, method);
            let r = device.sanitize_report().expect("sanitizer");
            assert!(r.is_clean(), "{method:?}: {}", r.table());
            r.kernels.values().map(|s| s.atomics).sum::<u64>()
        };
        assert!(atomics_of(HistogramMethod::GlobalMemory) > 0);
        assert!(atomics_of(HistogramMethod::SharedMemory) > 0);
        assert_eq!(atomics_of(HistogramMethod::SortReduce), 0);
    }

    #[test]
    fn partition_subtract_and_leaf_traces_are_clean() {
        let device = Device::rtx4090();
        device.enable_sanitizer(SanitizeMode::Full);
        let flags: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        trace_partition(&device, &flags);
        trace_subtract(&device, 4096);
        trace_leaf_values(&device, 8);
        let leaves = vec![
            (vec![0u32, 2, 4], vec![0.5f32; 3]),
            (vec![1, 3], vec![0.1; 3]),
        ];
        trace_update_scores(&device, 3, 5, &leaves);
        let report = device.sanitize_report().expect("sanitizer");
        assert!(report.is_clean(), "{}", report.table());
        assert!(report.kernels.contains_key("partition_level"));
        assert!(report.kernels.contains_key("hist_subtract"));
        assert!(report.kernels.contains_key("leaf_values"));
        assert!(report.kernels.contains_key("update_scores"));
    }

    #[test]
    fn traces_are_noops_without_sanitizer() {
        let device = Device::rtx4090();
        trace_partition(&device, &[true, false]);
        trace_subtract(&device, 64);
        trace_leaf_values(&device, 4);
        assert!(device.sanitize_report().is_none());
        assert_eq!(device.now_ns(), 0.0, "tracing must never charge");
    }

    #[test]
    fn tracing_never_charges_the_ledger() {
        let (_, data, grads) = fixture(150, 4, 2, 3);
        let features: Vec<u32> = (0..4).collect();
        let idx: Vec<u32> = (0..150).collect();
        let device = Device::rtx4090();
        device.enable_sanitizer(SanitizeMode::Full);
        let before = device.now_ns();
        let ctx = make_ctx(
            &device,
            &data,
            &grads,
            &features,
            HistogramMethod::GlobalMemory,
        );
        trace_hist(&ctx, &idx, HistogramMethod::GlobalMemory);
        trace_partition(&device, &vec![true; 150]);
        assert_eq!(device.now_ns(), before);
    }

    #[test]
    fn sketch_traces_are_clean_and_never_charge() {
        let device = Device::rtx4090();
        device.enable_sanitizer(SanitizeMode::Full);
        let before = device.now_ns();
        trace_sketch_colnorm(&device, 300, 8);
        trace_sketch_gather(&device, 300, 8, &[1, 4, 6]);
        trace_sketch_projection(&device, 300, 8, 3);
        let leaves = vec![
            (vec![0u32, 2, 4], vec![0.5f32; 8]),
            (vec![1, 3], vec![0.1; 8]),
        ];
        trace_leaf_refit(&device, 5, 8, &leaves);
        let report = device.sanitize_report().expect("sanitizer");
        assert!(report.is_clean(), "{}", report.table());
        for k in [
            "sketch_colnorm",
            "sketch_gather",
            "sketch_projection",
            "leaf_refit_full_d",
        ] {
            assert!(report.kernels.contains_key(k), "{k} missing");
        }
        // The colnorm reduction claims its accumulation atomics.
        assert!(report.kernels["sketch_colnorm"].atomics > 0);
        assert_eq!(report.kernels["sketch_gather"].atomics, 0);
        assert_eq!(device.now_ns(), before, "tracing must never charge");
    }

    #[test]
    fn sample_stride_bounds_and_covers() {
        assert_eq!(sample_stride(0, 16).count(), 0);
        assert_eq!(sample_stride(10, 16).count(), 10);
        let s: Vec<usize> = sample_stride(100, 10).collect();
        assert!(s.len() <= 10);
        assert_eq!(s[0], 0);
        assert!(s.iter().all(|&x| x < 100));
    }
}
