//! Per-round training checkpoints.
//!
//! After each boosting round the trainer can snapshot everything the
//! next round depends on — trees so far, the score matrix, the RNG
//! mid-stream, and the embedded config (sketch plans are re-derived
//! from `seed + t`, so the round index is the whole "sketch state").
//! [`crate::Model::resume_from`] restores the snapshot on a fresh
//! device and finishes training **bit-identically** to an
//! uninterrupted run (property-tested in
//! `crates/core/tests/checkpoint_resume.rs`).
//!
//! Binary layout (all little-endian):
//!
//! ```text
//! magic "GBCK" | version u16 | task u8
//! | d u32 | n u32 | completed_trees u32
//! | config_json_len u32 | config_json bytes
//! | base[d] f32
//! | rng: 16 × u32 state, 16 × u32 block, cursor u8
//! | scores[n × d] f32
//! | per completed tree: the GBMO node encoding (see [`crate::serialize`])
//! ```

use crate::config::TrainConfig;
use crate::error::TrainError;
use crate::serialize::{need, read_tree, write_tree};
use crate::tree::Tree;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gbdt_data::Task;

const MAGIC: &[u8; 4] = b"GBCK";
const VERSION: u16 = 1;
const RNG_WORDS: usize = 16;

/// Everything needed to resume training after round
/// `completed_trees − 1`.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Boosting rounds completed (the next round to run).
    pub completed_trees: usize,
    /// Trees grown so far, in training order.
    pub trees: Vec<Tree>,
    /// Initial per-output scores (prior).
    pub base: Vec<f32>,
    /// The `n × d` additive score matrix after `completed_trees` trees.
    pub scores: Vec<f32>,
    /// RNG snapshot (key schedule, keystream block, cursor) taken
    /// after the completed round consumed its samples.
    pub rng: ([u32; RNG_WORDS], [u32; RNG_WORDS], usize),
    /// Training-set rows the scores cover.
    pub n: usize,
    /// Output dimension.
    pub d: usize,
    /// Task of the originating dataset.
    pub task: Task,
    /// The full training configuration (resume re-validates it).
    pub config: TrainConfig,
}

fn task_tag(task: Task) -> u8 {
    match task {
        Task::MultiClass => 0,
        Task::MultiLabel => 1,
        Task::MultiRegression => 2,
    }
}

fn task_from_tag(tag: u8) -> Result<Task, String> {
    match tag {
        0 => Ok(Task::MultiClass),
        1 => Ok(Task::MultiLabel),
        2 => Ok(Task::MultiRegression),
        other => Err(format!("unknown task tag {other}")),
    }
}

impl Checkpoint {
    /// Serialize into the compact binary checkpoint format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.scores.len() * 4);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(task_tag(self.task));
        buf.put_u32_le(self.d as u32);
        buf.put_u32_le(self.n as u32);
        buf.put_u32_le(self.completed_trees as u32);
        let config_json = serde_json::to_vec(&self.config).expect("config serializes");
        buf.put_u32_le(config_json.len() as u32);
        buf.put_slice(&config_json);
        for &b in &self.base {
            buf.put_f32_le(b);
        }
        let (state, block, cursor) = self.rng;
        for w in state.iter().chain(block.iter()) {
            buf.put_u32_le(*w);
        }
        buf.put_u8(cursor as u8);
        for &s in &self.scores {
            buf.put_f32_le(s);
        }
        for tree in &self.trees {
            write_tree(&mut buf, tree, self.d);
        }
        buf.freeze()
    }

    /// Deserialize and validate a checkpoint. Corrupt or truncated
    /// input yields [`TrainError::Checkpoint`], never a panic.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, TrainError> {
        Self::decode(data).map_err(TrainError::Checkpoint)
    }

    fn decode(data: &[u8]) -> Result<Checkpoint, String> {
        let mut buf = data;
        need!(buf, 4 + 2 + 1 + 4 + 4 + 4 + 4);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err("not a GBCK checkpoint (bad magic)".into());
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let task = task_from_tag(buf.get_u8())?;
        let d = buf.get_u32_le() as usize;
        if d == 0 || d > 1 << 20 {
            return Err(format!("implausible output dimension {d}"));
        }
        let n = buf.get_u32_le() as usize;
        if n == 0 || n > 1 << 30 {
            return Err(format!("implausible instance count {n}"));
        }
        let completed_trees = buf.get_u32_le() as usize;
        let config_len = buf.get_u32_le() as usize;
        need!(buf, config_len);
        let config: TrainConfig = serde_json::from_slice(&buf[..config_len])
            .map_err(|e| format!("bad embedded config: {e}"))?;
        buf.advance(config_len);
        config.validate()?;
        if completed_trees > config.num_trees {
            return Err(format!(
                "checkpoint claims {completed_trees} trees but config allows {}",
                config.num_trees
            ));
        }
        need!(buf, d * 4);
        let base: Vec<f32> = (0..d).map(|_| buf.get_f32_le()).collect();
        need!(buf, RNG_WORDS * 8 + 1);
        let mut state = [0u32; RNG_WORDS];
        let mut block = [0u32; RNG_WORDS];
        for w in state.iter_mut() {
            *w = buf.get_u32_le();
        }
        for w in block.iter_mut() {
            *w = buf.get_u32_le();
        }
        let cursor = buf.get_u8() as usize;
        if cursor > RNG_WORDS {
            return Err(format!("RNG cursor {cursor} out of range"));
        }
        need!(buf, n * d * 4);
        let scores: Vec<f32> = (0..n * d).map(|_| buf.get_f32_le()).collect();
        let mut trees = Vec::with_capacity(completed_trees.min(1 << 20));
        for t in 0..completed_trees {
            trees.push(read_tree(&mut buf, d, t)?);
        }
        if buf.has_remaining() {
            return Err(format!(
                "{} trailing bytes after checkpoint",
                buf.remaining()
            ));
        }
        Ok(Checkpoint {
            completed_trees,
            trees,
            base,
            scores,
            rng: (state, block, cursor),
            n,
            d,
            task,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample() -> Checkpoint {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u32(); // mid-block cursor
        let mut tree = Tree::new(2);
        let (l, r) = tree.split_node(0, 3, 17, 0.25);
        tree.set_leaf(l, vec![1.0, -1.0]);
        tree.set_leaf(r, vec![-0.5, 0.5]);
        Checkpoint {
            completed_trees: 1,
            trees: vec![tree],
            base: vec![0.1, -0.1],
            scores: vec![0.25; 3 * 2],
            rng: rng.snapshot(),
            n: 3,
            d: 2,
            task: Task::MultiClass,
            config: TrainConfig::default().with_trees(4),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ck = sample();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.completed_trees, ck.completed_trees);
        assert_eq!(back.trees, ck.trees);
        assert_eq!(back.base, ck.base);
        assert_eq!(back.scores, ck.scores);
        assert_eq!(back.rng, ck.rng);
        assert_eq!((back.n, back.d, back.task), (ck.n, ck.d, ck.task));
        assert_eq!(back.config.num_trees, 4);
        // The restored RNG continues the exact keystream.
        let mut a = ChaCha8Rng::from_snapshot(ck.rng.0, ck.rng.1, ck.rng.2);
        let mut b = ChaCha8Rng::from_snapshot(back.rng.0, back.rng.1, back.rng.2);
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut]);
            assert!(
                matches!(err, Err(TrainError::Checkpoint(_))),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn corrupt_fields_are_typed_errors() {
        let good = sample().to_bytes().to_vec();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(Checkpoint::from_bytes(&bad_magic)
            .unwrap_err()
            .to_string()
            .contains("bad magic"));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(Checkpoint::from_bytes(&bad_version).is_err());
        let mut bad_task = good.clone();
        bad_task[6] = 7;
        assert!(Checkpoint::from_bytes(&bad_task).is_err());
        let mut trailing = good;
        trailing.push(0);
        assert!(Checkpoint::from_bytes(&trailing)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }
}
