//! Compact binary model format.
//!
//! JSON (via [`crate::Model::to_json`]) is convenient but ~5× larger
//! than necessary; deployment wants the compact form. Layout (all
//! little-endian):
//!
//! ```text
//! magic "GBMO" | version u16 | task u8 | d u32 | base[d] f32
//! | config_json_len u32 | config_json bytes
//! | num_trees u32
//! | per tree: num_nodes u32,
//!     per node: tag u8 — 0 = split (feature u32, bin u8,
//!               threshold f32, left u32, right u32),
//!               1 = leaf (d × f32)
//! ```

use crate::config::TrainConfig;
use crate::model::Model;
use crate::tree::{Node, Tree};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gbdt_data::Task;

const MAGIC: &[u8; 4] = b"GBMO";
const VERSION: u16 = 1;

fn task_tag(task: Task) -> u8 {
    match task {
        Task::MultiClass => 0,
        Task::MultiLabel => 1,
        Task::MultiRegression => 2,
    }
}

fn task_from_tag(tag: u8) -> Result<Task, String> {
    match tag {
        0 => Ok(Task::MultiClass),
        1 => Ok(Task::MultiLabel),
        2 => Ok(Task::MultiRegression),
        other => Err(format!("unknown task tag {other}")),
    }
}

/// Serialize a model into the compact binary format.
pub fn to_bytes(model: &Model) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + model.memory_bytes() * 2);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(task_tag(model.task));
    buf.put_u32_le(model.d as u32);
    for &b in &model.base {
        buf.put_f32_le(b);
    }
    let config_json = serde_json::to_vec(&model.config).expect("config serializes");
    buf.put_u32_le(config_json.len() as u32);
    buf.put_slice(&config_json);
    buf.put_u32_le(model.trees.len() as u32);
    for tree in &model.trees {
        write_tree(&mut buf, tree, model.d);
    }
    buf.freeze()
}

/// Guarded read: error instead of panic on truncated input.
macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(format!(
                "truncated model: needed {} bytes, {} left",
                $n,
                $buf.remaining()
            ));
        }
    };
}
pub(crate) use need;

/// Encode one tree in the shared per-node format (tag 0 split / tag 1
/// leaf). Reused by the checkpoint writer.
pub(crate) fn write_tree(buf: &mut BytesMut, tree: &Tree, d: usize) {
    buf.put_u32_le(tree.num_nodes() as u32);
    for node in tree.nodes() {
        match node {
            Node::Split {
                feature,
                bin,
                threshold,
                left,
                right,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(*feature);
                buf.put_u8(*bin);
                buf.put_f32_le(*threshold);
                buf.put_u32_le(*left);
                buf.put_u32_le(*right);
            }
            Node::Leaf { value } => {
                buf.put_u8(1);
                debug_assert_eq!(value.len(), d);
                for &v in value {
                    buf.put_f32_le(v);
                }
            }
        }
    }
}

/// Decode one tree in the shared per-node format; `t` labels the tree
/// in error messages. Reused by the checkpoint reader.
pub(crate) fn read_tree(buf: &mut &[u8], d: usize, t: usize) -> Result<Tree, String> {
    need!(buf, 4);
    let num_nodes = buf.get_u32_le() as usize;
    if num_nodes == 0 {
        return Err(format!("tree {t} has no nodes"));
    }
    let mut nodes = Vec::with_capacity(num_nodes.min(1 << 24));
    for _ in 0..num_nodes {
        need!(buf, 1);
        match buf.get_u8() {
            0 => {
                need!(buf, 4 + 1 + 4 + 4 + 4);
                let feature = buf.get_u32_le();
                let bin = buf.get_u8();
                let threshold = buf.get_f32_le();
                let left = buf.get_u32_le();
                let right = buf.get_u32_le();
                if left as usize >= num_nodes || right as usize >= num_nodes {
                    return Err(format!("tree {t}: child index out of range"));
                }
                nodes.push(Node::Split {
                    feature,
                    bin,
                    threshold,
                    left,
                    right,
                });
            }
            1 => {
                need!(buf, d * 4);
                let value: Vec<f32> = (0..d).map(|_| buf.get_f32_le()).collect();
                nodes.push(Node::Leaf { value });
            }
            other => return Err(format!("tree {t}: unknown node tag {other}")),
        }
    }
    Tree::from_parts(nodes, d)
}

/// Deserialize a model from the compact binary format.
pub fn from_bytes(data: &[u8]) -> Result<Model, String> {
    let mut buf = data;
    need!(buf, 4 + 2 + 1 + 4);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err("not a GBMO model (bad magic)".into());
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(format!("unsupported model version {version}"));
    }
    let task = task_from_tag(buf.get_u8())?;
    let d = buf.get_u32_le() as usize;
    if d == 0 || d > 1 << 20 {
        return Err(format!("implausible output dimension {d}"));
    }
    need!(buf, d * 4);
    let base: Vec<f32> = (0..d).map(|_| buf.get_f32_le()).collect();

    need!(buf, 4);
    let config_len = buf.get_u32_le() as usize;
    need!(buf, config_len);
    let config: TrainConfig = serde_json::from_slice(&buf[..config_len])
        .map_err(|e| format!("bad embedded config: {e}"))?;
    buf.advance(config_len);

    need!(buf, 4);
    let num_trees = buf.get_u32_le() as usize;
    let mut trees = Vec::with_capacity(num_trees.min(1 << 20));
    for t in 0..num_trees {
        trees.push(read_tree(&mut buf, d, t)?);
    }
    if buf.has_remaining() {
        return Err(format!("{} trailing bytes after model", buf.remaining()));
    }
    Ok(Model {
        trees,
        base,
        d,
        task,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gpusim::Device;

    fn trained() -> (Model, gbdt_data::Dataset) {
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 55,
            ..Default::default()
        });
        let cfg = TrainConfig {
            num_trees: 6,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        };
        (GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds), ds)
    }

    #[test]
    fn binary_roundtrip_preserves_predictions() {
        let (model, ds) = trained();
        let bytes = to_bytes(&model);
        let back = from_bytes(&bytes).expect("roundtrip");
        assert_eq!(model.predict(ds.features()), back.predict(ds.features()));
        assert_eq!(model.trees, back.trees);
        assert_eq!(model.base, back.base);
        assert_eq!(model.task, back.task);
        assert_eq!(model.config.num_trees, back.config.num_trees);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let (model, _) = trained();
        let bin = to_bytes(&model).len();
        let json = model.to_json().len();
        assert!(bin * 3 < json, "binary {bin} should be ≤ ⅓ of JSON {json}");
    }

    #[test]
    fn bad_magic_rejected() {
        let (model, _) = trained();
        let mut bytes = to_bytes(&model).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).unwrap_err().contains("bad magic"));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let (model, _) = trained();
        let bytes = to_bytes(&model).to_vec();
        // Every strict prefix must fail cleanly.
        for cut in [0, 3, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (model, _) = trained();
        let mut bytes = to_bytes(&model).to_vec();
        bytes.push(0);
        assert!(from_bytes(&bytes).unwrap_err().contains("trailing"));
    }

    #[test]
    fn corrupt_child_index_rejected() {
        let (model, _) = trained();
        let bytes = to_bytes(&model).to_vec();
        // Find the first split node (tag 0 after the tree header) and
        // clobber its left-child index. Rather than byte-surgery, build
        // a hostile model directly.
        let mut t = Tree::new(1);
        let (l, _r) = t.split_node(0, 0, 0, 0.5);
        t.set_leaf(l, vec![1.0]);
        let hostile = Model {
            trees: vec![t],
            base: vec![0.0],
            d: 1,
            task: Task::MultiRegression,
            config: TrainConfig::default(),
        };
        let mut enc = to_bytes(&hostile).to_vec();
        // The split's left index is at a fixed offset from the end:
        // last node is a leaf (1 + 4 bytes), before it another leaf,
        // before that the split record ends with right u32, left u32
        // before that.
        let len = enc.len();
        let left_at = len - (1 + 4) * 2 - 8;
        enc[left_at..left_at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(from_bytes(&enc).unwrap_err().contains("out of range"));
        let _ = bytes;
    }
}
