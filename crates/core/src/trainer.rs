//! The single-GPU training loop (paper Fig. 2): gradients → histograms
//! → split selection → partition, per tree, fully device-charged.

use crate::checkpoint::Checkpoint;
use crate::config::{ConfigError, HistogramMethod, TrainConfig};
use crate::error::TrainError;
use crate::grad::{compute_gradients, update_scores_from_leaves};
use crate::grow::grow_tree_pooled;
use crate::loss::loss_for_task;
use crate::memory::HistogramPool;
use crate::model::Model;
use gbdt_data::{BinnedDataset, Dataset, Task};
use gpusim::cost::KernelCost;
use gpusim::{Device, LedgerSummary, Phase};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Everything a training run reports, beyond the model itself.
#[derive(Debug)]
pub struct TrainReport {
    /// The trained model.
    pub model: Model,
    /// Simulated device time spent by this fit (delta over the run),
    /// with per-phase breakdown — regenerates the paper's Fig. 4.
    pub sim: LedgerSummary,
    /// Simulated seconds (convenience: `sim.total_ns × 1e-9`).
    pub sim_seconds: f64,
    /// Host wall-clock seconds the simulation itself took.
    pub host_seconds: f64,
    /// Histogram-method usage counts across all nodes (adaptive
    /// selection telemetry).
    pub hist_methods: BTreeMap<HistogramMethod, usize>,
}

impl TrainReport {
    /// Fraction of simulated time spent building histograms — the
    /// quantity annotated in red in the paper's Fig. 4.
    pub fn histogram_fraction(&self) -> f64 {
        self.sim.fraction(Phase::Histogram)
    }
}

/// Validation curve produced by `fit_impl` when an eval split is
/// supplied: per-round metric history plus the best iteration.
type ValidationCurve = (Vec<f64>, usize);

/// Single-device GBDT-MO trainer.
pub struct GpuTrainer {
    device: Arc<Device>,
    config: TrainConfig,
}

impl GpuTrainer {
    /// Create a trainer on `device` with `config`.
    ///
    /// Panics on an invalid configuration; use [`GpuTrainer::try_new`]
    /// to handle the rejection instead.
    pub fn new(device: Arc<Device>, config: TrainConfig) -> Self {
        Self::try_new(device, config).expect("invalid training configuration")
    }

    /// Fallible constructor: returns the validation failure as a
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(device: Arc<Device>, config: TrainConfig) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError::from)?;
        Ok(GpuTrainer { device, config })
    }

    /// The device this trainer charges.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train and return just the model.
    ///
    /// Panics if the device faults past the retry budget; attach a
    /// fault injector only through [`GpuTrainer::try_fit`] and friends.
    pub fn fit(&self, ds: &Dataset) -> Model {
        self.fit_report(ds).model
    }

    /// Train with full timing/telemetry report (panicking wrapper over
    /// [`GpuTrainer::try_fit_report`]).
    pub fn fit_report(&self, ds: &Dataset) -> TrainReport {
        self.try_fit_report(ds)
            .unwrap_or_else(|e| panic!("training failed: {e}"))
    }

    /// Fallible training: transient kernel faults are retried up to
    /// [`TrainConfig::with_retry`]'s budget (each redo re-charges the
    /// round in full), and unrecoverable faults surface as a typed
    /// [`TrainError`] — never a panic. Without an attached injector
    /// this is bit-identical to [`GpuTrainer::fit`].
    pub fn try_fit(&self, ds: &Dataset) -> Result<Model, TrainError> {
        Ok(self.try_fit_report(ds)?.model)
    }

    /// Fallible variant of [`GpuTrainer::fit_report`]; see
    /// [`GpuTrainer::try_fit`] for the fault semantics.
    pub fn try_fit_report(&self, ds: &Dataset) -> Result<TrainReport, TrainError> {
        Ok(self.fit_impl(ds, None, None, None, None)?.0)
    }

    /// Train while snapshotting a [`Checkpoint`] after every committed
    /// round. `checkpoints[t]` resumes after tree `t`; resuming via
    /// [`crate::Model::resume_from`] is bit-identical to the
    /// uninterrupted run.
    pub fn try_fit_checkpointed(
        &self,
        ds: &Dataset,
    ) -> Result<(TrainReport, Vec<Checkpoint>), TrainError> {
        let mut checkpoints = Vec::with_capacity(self.config.num_trees);
        let report = self
            .fit_impl(ds, None, None, None, Some(&mut checkpoints))?
            .0;
        Ok((report, checkpoints))
    }

    /// Resume training from `checkpoint` against the same dataset,
    /// finishing the remaining rounds. The report's `sim`/`model`
    /// cover this run only: preprocessing is re-charged (the fresh
    /// device must re-upload and re-bin), then rounds
    /// `checkpoint.completed_trees..num_trees` replay bit-identically
    /// to an uninterrupted fit.
    pub fn try_fit_resumed(
        &self,
        ds: &Dataset,
        checkpoint: &Checkpoint,
    ) -> Result<TrainReport, TrainError> {
        let ck = checkpoint;
        if ck.n != ds.n() || ck.d != ds.d() || ck.task != ds.task() {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint shape ({} × {}, {:?}) does not match dataset ({} × {}, {:?})",
                ck.n,
                ck.d,
                ck.task,
                ds.n(),
                ds.d(),
                ds.task()
            )));
        }
        if ck.trees.len() != ck.completed_trees {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint claims {} completed trees but carries {}",
                ck.completed_trees,
                ck.trees.len()
            )));
        }
        if ck.base.len() != ck.d || ck.scores.len() != ck.n * ck.d {
            return Err(TrainError::Checkpoint(
                "checkpoint base/score arrays do not match its dimensions".into(),
            ));
        }
        if ck.completed_trees > self.config.num_trees {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint has {} trees but the config trains {}",
                ck.completed_trees, self.config.num_trees
            )));
        }
        Ok(self.fit_impl(ds, None, None, Some(ck), None)?.0)
    }

    /// Train against a user-defined loss (the paper's §3.1.1
    /// flexibility: "designed to accommodate user-defined loss
    /// functions"). The model's `task` is still taken from the dataset,
    /// which controls the prediction-space transform.
    pub fn fit_with_loss(
        &self,
        ds: &Dataset,
        loss: &dyn crate::loss::MultiOutputLoss,
    ) -> TrainReport {
        self.fit_impl(ds, None, Some(loss), None, None)
            .unwrap_or_else(|e| panic!("training failed: {e}"))
            .0
    }

    /// Train with early stopping: after each tree, the mean loss on
    /// `valid` is evaluated; training stops once it has not improved
    /// for `patience` consecutive trees, and the model is truncated to
    /// its best iteration.
    pub fn fit_with_validation(
        &self,
        train: &Dataset,
        valid: &Dataset,
        patience: usize,
    ) -> ValidationReport {
        assert_eq!(train.d(), valid.d(), "train/valid output dims differ");
        assert_eq!(train.m(), valid.m(), "train/valid feature dims differ");
        let (report, curve) = self
            .fit_impl(train, Some((valid, patience)), None, None, None)
            .unwrap_or_else(|e| panic!("training failed: {e}"));
        let (history, best_iteration) = curve.expect("validation requested");
        ValidationReport {
            report,
            history,
            best_iteration,
        }
    }

    fn fit_impl(
        &self,
        ds: &Dataset,
        valid: Option<(&Dataset, usize)>,
        custom_loss: Option<&dyn crate::loss::MultiOutputLoss>,
        resume: Option<&Checkpoint>,
        mut checkpoints: Option<&mut Vec<Checkpoint>>,
    ) -> Result<(TrainReport, Option<ValidationCurve>), TrainError> {
        let start_summary = self.device.summary();
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let device = &*self.device;
        // With no injector attached every poll is `Ok` and no snapshot
        // is ever taken, so this path is bit-identical to a trainer
        // without fault handling (regression-tested in tests/chaos.rs).
        let faults_on = device.fault_injector().is_some();
        let max_retries = self.config.retry.max_retries;
        // Pure observer (like the profiler): metric updates below are
        // host-side only, charge nothing, and never feed back — with
        // `None` every telemetry block is skipped entirely, so attached
        // vs. detached runs stay bit-identical (tests/telemetry.rs).
        let tel = device.telemetry();

        // --- preprocessing: upload + quantile binning (charged), with
        // --- bounded retry on transient faults ------------------------
        let mut prep_attempts = 0u32;
        let binned = loop {
            let prep_scope = device.prof_scope("preprocess", None);
            let raw_bytes = (n * ds.m() * 4) as f64;
            let copy_ns = device.model().host_copy_ns(raw_bytes);
            let overlap_ingest = self.config.streams > 1;
            let copy_done = if overlap_ingest {
                // Ingest runs on a copy stream (engine work, no SM
                // contention) and quantize pipelines one chunk behind
                // it: the binning kernel starts once the first of 8
                // copy chunks has landed, instead of after the full
                // transfer. Charge order is identical to the serial
                // schedule — only start timestamps move.
                let copy = device.stream(1);
                copy.wait_event(device.record_event(0));
                let copy_start = copy.record_event();
                copy.charge_ns("htod_features", Phase::Transfer, copy_ns);
                device.wait_event(0, copy_start.offset_ns(copy_ns / 8.0));
                Some(copy.record_event())
            } else {
                device.charge_ns("htod_features", Phase::Transfer, copy_ns);
                None
            };
            let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
            device.charge_kernel(
                "quantile_binning",
                Phase::Binning,
                &KernelCost::streaming((n * ds.m()) as f64 * 16.0, raw_bytes * 2.5),
            );
            crate::sanitize::trace_quantile_binning(device, n, ds.m(), self.config.max_bins);
            if let Some(done) = copy_done {
                // Everything after preprocessing reads the device-
                // resident features: join the copy stream before the
                // first gradient kernel can issue.
                device.wait_event(0, done);
            }
            drop(prep_scope);
            if !faults_on {
                break binned;
            }
            match device.poll_fault() {
                Ok(()) => break binned,
                Err(fault) if fault.is_transient() && prep_attempts < max_retries => {
                    prep_attempts += 1;
                    if let Some(t) = &tel {
                        t.counter_inc("train.faults_total");
                        t.counter_inc("train.retries_total");
                    }
                }
                Err(fault) if fault.is_transient() => {
                    let err = TrainError::RetriesExhausted {
                        round: usize::MAX,
                        attempts: prep_attempts,
                        fault,
                    };
                    if let Some(t) = &tel {
                        t.counter_inc("train.faults_total");
                        t.record_postmortem(&err.to_string());
                    }
                    return Err(err);
                }
                Err(fault) => {
                    let err = TrainError::DeviceLost {
                        round: usize::MAX,
                        fault,
                    };
                    if let Some(t) = &tel {
                        t.counter_inc("train.faults_total");
                        t.record_postmortem(&err.to_string());
                    }
                    return Err(err);
                }
            }
        };

        // --- base scores ----------------------------------------------
        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }

        let default_loss = loss_for_task(ds.task());
        let loss: &dyn crate::loss::MultiOutputLoss = custom_loss.unwrap_or(default_loss.as_ref());
        let all_features: Vec<u32> = (0..ds.m() as u32).collect();
        let mut trees = Vec::with_capacity(self.config.num_trees);
        let mut hist_methods: BTreeMap<HistogramMethod, usize> = BTreeMap::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut start_round = 0usize;
        if let Some(ck) = resume {
            // Shapes were validated by `try_fit_resumed`; restoring the
            // trees, score matrix, and mid-stream RNG makes the rounds
            // below indistinguishable from an uninterrupted run.
            scores.copy_from_slice(&ck.scores);
            trees = ck.trees.clone();
            rng = ChaCha8Rng::from_snapshot(ck.rng.0, ck.rng.1, ck.rng.2);
            start_round = ck.completed_trees;
        }

        // Early-stopping state (only when a validation set is given).
        let mut valid_scores: Vec<f32> = valid
            .map(|(vd, _)| {
                let mut s = vec![0.0f32; vd.n() * d];
                for row in s.chunks_mut(d) {
                    row.copy_from_slice(&base);
                }
                s
            })
            .unwrap_or_default();
        let mut history: Vec<f64> = Vec::new();
        let mut best = (f64::INFINITY, 0usize);
        // Histogram buffers are reused across levels and trees; the
        // pool grows to the peak number of simultaneously live node
        // histograms and then stops allocating.
        let mut pool = HistogramPool::new(0, 0, 0);

        for t in start_round..self.config.num_trees {
            // Rollback snapshot for transient-fault retry: taken only
            // when an injector is attached, so the fault-free hot path
            // stays allocation-identical to the pre-fault trainer.
            let saved = faults_on.then(|| {
                (
                    scores.clone(),
                    rng.clone(),
                    valid_scores.clone(),
                    history.len(),
                    best,
                )
            });
            let mut attempts = 0u32;
            let (grown, early_stop) = loop {
                // Per-boosting-round profiling scope (no-op when profiling
                // is off); levels and kernels nest beneath it.
                let _round_scope = device.prof_scope("round", Some(t as u64));
                let mut grads_full = compute_gradients(device, loss, &scores, ds.targets(), n, d);
                if self.config.hist.quantized_gradients {
                    crate::grad::quantize_bf16(device, &mut grads_full);
                }

                // Stochastic gradient boosting: per-tree row/column samples.
                let tree_features =
                    sample_fraction(&all_features, self.config.colsample_bytree, &mut rng);
                let all_rows: Vec<u32> = (0..n as u32).collect();
                let (root, grads, subsampled);
                if let Some(goss) = self.config.goss {
                    let (idx, amplified) = goss_sample(&grads_full, goss, &mut rng);
                    // lint:allow(sanitize): host-side RNG rank sampling emits a private index list; no cross-thread access stream to replay
                    device.charge_kernel(
                        "goss_rank_sample",
                        Phase::Gradient,
                        &KernelCost {
                            // Gradient-norm pass + top-k selection (sort).
                            flops: (n * d) as f64 + n as f64 * 2.0,
                            dram_bytes: (n * d * 4 + n * 8) as f64,
                            sort_keys: n as f64,
                            launches: 3.0,
                            ..Default::default()
                        },
                    );
                    root = idx;
                    grads = amplified;
                    subsampled = true;
                } else {
                    subsampled = self.config.subsample < 1.0;
                    root = if subsampled {
                        sample_fraction(&all_rows, self.config.subsample, &mut rng)
                    } else {
                        all_rows
                    };
                    grads = grads_full;
                }

                let grown = if self.config.sketch.is_none() {
                    grow_tree_pooled(
                        device,
                        &binned,
                        &grads,
                        &self.config,
                        &tree_features,
                        root,
                        &mut pool,
                    )
                } else {
                    // SketchBoost's recipe on the GPU pipeline: search the
                    // tree structure on an n × k sketch (every histogram,
                    // split and partition kernel runs at effective output
                    // dimension k), then refit the leaves on the full
                    // d-dimensional gradients.
                    let sketch_scope = device.prof_scope("sketch", Some(t as u64));
                    let sketched = crate::sketch::sketch_gradients_device(
                        device,
                        &grads,
                        self.config.sketch,
                        self.config.seed.wrapping_add(t as u64),
                    );
                    drop(sketch_scope);
                    let mut grown = grow_tree_pooled(
                        device,
                        &binned,
                        &sketched,
                        &self.config,
                        &tree_features,
                        root,
                        &mut pool,
                    );
                    crate::sketch::refit_leaves_full_d(device, &mut grown, &grads, &self.config);
                    grown
                };
                if subsampled {
                    // Out-of-sample instances still receive the tree's
                    // contribution: route every instance to its leaf.
                    for i in 0..n {
                        grown
                            .tree
                            .predict_into(ds.features().row(i), &mut scores[i * d..(i + 1) * d]);
                    }
                    // lint:allow(sanitize): same disjoint per-instance row scatter as `update_scores`, replayed by trace_update_scores on the dense path
                    device.charge_kernel(
                        "update_scores_routed",
                        Phase::Predict,
                        &KernelCost::streaming(
                            (n * grown.tree.depth().max(1)) as f64 * 4.0,
                            (n * (grown.tree.depth().max(1) * 16 + d * 8)) as f64,
                        ),
                    );
                } else {
                    update_scores_from_leaves(device, &mut scores, d, &grown.leaf_assignments);
                }

                let mut early_stop = false;
                if let Some((vd, patience)) = valid {
                    let tree = &grown.tree;
                    for i in 0..vd.n() {
                        tree.predict_into(
                            vd.features().row(i),
                            &mut valid_scores[i * d..(i + 1) * d],
                        );
                    }
                    // lint:allow(sanitize): identical traversal/scatter pattern to `predict`, replayed by trace_predict on the training path
                    device.charge_kernel(
                        "validation_predict",
                        Phase::Predict,
                        &KernelCost::streaming(
                            (vd.n() * tree.depth().max(1)) as f64 * 4.0,
                            (vd.n() * (tree.depth().max(1) * 16 + d * 8)) as f64,
                        ),
                    );
                    let vloss = crate::loss::mean_loss(loss, &valid_scores, vd.targets(), d);
                    history.push(vloss);
                    if vloss < best.0 {
                        best = (vloss, t);
                    }
                    if t - best.1 >= patience {
                        early_stop = true; // no improvement for `patience` trees
                    }
                }

                if !faults_on {
                    break (grown, early_stop);
                }
                // Sync point: surface any fault injected by this round's
                // charges before committing its tree.
                match device.poll_fault() {
                    Ok(()) => break (grown, early_stop),
                    Err(fault) if fault.is_transient() && attempts < max_retries => {
                        // Roll the mutated state back and re-run the round;
                        // the faulted attempt's charges stay on the ledger
                        // and the redo pays full price again.
                        attempts += 1;
                        if let Some(tl) = &tel {
                            tl.counter_inc("train.faults_total");
                            tl.counter_inc("train.retries_total");
                        }
                        let (s, r, v, hist_len, b) = saved.clone().expect("snapshot exists");
                        scores = s;
                        rng = r;
                        valid_scores = v;
                        history.truncate(hist_len);
                        best = b;
                    }
                    Err(fault) if fault.is_transient() => {
                        let err = TrainError::RetriesExhausted {
                            round: t,
                            attempts,
                            fault,
                        };
                        if let Some(tl) = &tel {
                            tl.counter_inc("train.faults_total");
                            tl.record_postmortem(&err.to_string());
                        }
                        return Err(err);
                    }
                    Err(fault) => {
                        let err = TrainError::DeviceLost { round: t, fault };
                        if let Some(tl) = &tel {
                            tl.counter_inc("train.faults_total");
                            tl.record_postmortem(&err.to_string());
                        }
                        return Err(err);
                    }
                }
            }; // retry loop

            for (m, c) in grown.methods_used {
                *hist_methods.entry(m).or_insert(0) += c;
                if let Some(tl) = &tel {
                    tl.counter_add(hist_method_metric(m), c as u64);
                }
            }
            trees.push(grown.tree);
            if let Some(tl) = &tel {
                tl.counter_inc("train.rounds_total");
                // Host-side only: the loss is computed from the already-
                // committed score matrix, charges nothing, and uses no RNG.
                tl.gauge_set(
                    "train.loss",
                    crate::loss::mean_loss(loss, &scores, ds.targets(), d),
                );
                tl.gauge_set("train.pool_high_water", pool.allocated() as f64);
            }
            if let Some(out) = checkpoints.as_deref_mut() {
                out.push(Checkpoint {
                    completed_trees: t + 1,
                    trees: trees.clone(),
                    base: base.clone(),
                    scores: scores.clone(),
                    rng: rng.snapshot(),
                    n,
                    d,
                    task: ds.task(),
                    config: self.config.clone(),
                });
                if let Some(tl) = &tel {
                    tl.counter_inc("train.checkpoints_total");
                }
            }
            if early_stop {
                break;
            }
        }
        if valid.is_some() {
            trees.truncate(best.1 + 1);
        }

        let model = Model {
            trees,
            base,
            d,
            task: ds.task(),
            config: self.config.clone(),
        };
        let sim = self.device.summary().since(&start_summary);
        if let Some(tl) = &tel {
            tl.gauge_set("train.overlap_saved_ns", sim.overlap_saved_ns);
        }
        let report = TrainReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
            hist_methods,
        };
        let curve = valid.map(|_| (history, best.1));
        Ok((report, curve))
    }
}

/// Result of [`GpuTrainer::fit_with_validation`].
#[derive(Debug)]
pub struct ValidationReport {
    /// The training report; the model is truncated to the best
    /// iteration.
    pub report: TrainReport,
    /// Mean validation loss after each trained tree.
    pub history: Vec<f64>,
    /// Index of the tree after which validation loss was lowest.
    pub best_iteration: usize,
}

/// Canonical telemetry counter for each histogram method. Descriptive
/// suffixes (not `gmem`/`smem`) keep every pair of metric names at
/// edit distance ≥ 2, as the `metric_name_canonical` lint demands.
fn hist_method_metric(m: HistogramMethod) -> &'static str {
    match m {
        HistogramMethod::GlobalMemory => "train.hist_method_global",
        HistogramMethod::SharedMemory => "train.hist_method_shared",
        HistogramMethod::SortReduce => "train.hist_method_sortreduce",
        HistogramMethod::Adaptive => "train.hist_method_adaptive",
    }
}

/// GOSS (LightGBM): keep the `top_rate` fraction of instances with the
/// largest L1 gradient norm, sample `other_rate` of the rest uniformly,
/// and amplify the sampled rest's gradients by `(1−a)/b` so histogram
/// sums stay unbiased. Returns the (sorted) kept instance indices and
/// the amplified gradient set.
fn goss_sample(
    grads: &crate::grad::Gradients,
    goss: crate::config::GossConfig,
    rng: &mut ChaCha8Rng,
) -> (Vec<u32>, crate::grad::Gradients) {
    let n = grads.n;
    let d = grads.d;
    // L1 gradient norms.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let norm = |i: u32| -> f64 { grads.g_row(i as usize).iter().map(|g| g.abs() as f64).sum() };
    order.sort_by(|&a, &b| {
        norm(b)
            .partial_cmp(&norm(a))
            .expect("finite")
            .then(a.cmp(&b))
    });

    let top_k = ((n as f64 * goss.top_rate).round() as usize).clamp(1, n);
    let rest = &order[top_k..];
    let sample_k = ((rest.len() as f64 * goss.other_rate / (1.0 - goss.top_rate)).round() as usize)
        .min(rest.len());
    let mut rest_pool = rest.to_vec();
    rest_pool.shuffle(rng);
    rest_pool.truncate(sample_k);

    let amplify = ((1.0 - goss.top_rate) / goss.other_rate) as f32;
    let mut g = grads.g.clone();
    let mut h = grads.h.clone();
    for &i in &rest_pool {
        let base = i as usize * d;
        for k in 0..d {
            g[base + k] *= amplify;
            h[base + k] *= amplify;
        }
    }
    let mut kept: Vec<u32> = order[..top_k].iter().copied().chain(rest_pool).collect();
    kept.sort_unstable();
    (kept, crate::grad::Gradients { g, h, n, d })
}

/// Sample `frac` of `items` without replacement (sorted, deterministic
/// under the caller's RNG); `frac ≥ 1` returns everything.
fn sample_fraction(items: &[u32], frac: f64, rng: &mut ChaCha8Rng) -> Vec<u32> {
    if frac >= 1.0 || items.len() <= 1 {
        return items.to_vec();
    }
    let keep = ((items.len() as f64 * frac).round() as usize).clamp(1, items.len());
    let mut shuffled = items.to_vec();
    shuffled.shuffle(rng);
    shuffled.truncate(keep);
    shuffled.sort_unstable();
    shuffled
}

/// Initial per-output scores: the target mean for regression (centers
/// the first gradients), zero for classification tasks.
pub fn base_scores(ds: &Dataset) -> Vec<f32> {
    let d = ds.d();
    match ds.task() {
        Task::MultiRegression => {
            let n = ds.n();
            let mut base = vec![0.0f64; d];
            for i in 0..n {
                for (b, &t) in base.iter_mut().zip(ds.target_row(i)) {
                    *b += t as f64;
                }
            }
            base.iter().map(|&s| (s / n.max(1) as f64) as f32).collect()
        }
        Task::MultiClass | Task::MultiLabel => vec![0.0; d],
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, rmse};
    use gbdt_data::synth::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    fn quick_config() -> TrainConfig {
        TrainConfig {
            num_trees: 8,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn learns_separable_multiclass_data() {
        let ds = make_classification(&ClassificationSpec {
            instances: 500,
            features: 10,
            classes: 3,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed: 7,
            ..Default::default()
        });
        let (train, test) = ds.split(0.3, 1);
        let model = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&train);
        let acc = accuracy(&model.predict(test.features()), &test.labels());
        assert!(acc > 0.8, "test accuracy only {acc}");
    }

    #[test]
    fn learns_multi_output_regression() {
        let ds = make_regression(&RegressionSpec {
            instances: 600,
            features: 8,
            outputs: 4,
            informative: 6,
            noise: 0.05,
            seed: 3,
            ..Default::default()
        });
        let (train, test) = ds.split(0.25, 2);
        let model = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&train);
        let pred = model.predict(test.features());
        let e = rmse(&pred, test.targets());
        // Baseline: predicting the train mean.
        let base = base_scores(&train);
        let mean_pred: Vec<f32> = test
            .targets()
            .chunks(4)
            .flat_map(|_| base.clone())
            .collect();
        let e0 = rmse(&mean_pred, test.targets());
        assert!(e < e0 * 0.7, "model rmse {e} vs mean-baseline {e0}");
    }

    #[test]
    fn report_breaks_down_phases_and_histogram_dominates() {
        let ds = make_classification(&ClassificationSpec {
            instances: 800,
            features: 20,
            classes: 5,
            informative: 10,
            seed: 9,
            ..Default::default()
        });
        let report = GpuTrainer::new(Device::rtx4090(), quick_config()).fit_report(&ds);
        assert!(report.sim_seconds > 0.0);
        assert!(report.host_seconds > 0.0);
        assert_eq!(report.model.num_trees(), 8);
        // The paper's core observation (Fig. 4): histogram building is
        // the dominant phase.
        assert!(
            report.histogram_fraction() > 0.4,
            "histogram fraction only {}",
            report.histogram_fraction()
        );
        let total: usize = report.hist_methods.values().sum();
        assert!(total > 0, "adaptive telemetry must record node builds");
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 4,
            ..Default::default()
        });
        let m1 = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        let m2 = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        assert_eq!(m1.predict(ds.features()), m2.predict(ds.features()));
    }

    #[test]
    fn more_trees_do_not_hurt_training_fit() {
        let ds = make_classification(&ClassificationSpec {
            instances: 400,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 5,
            ..Default::default()
        });
        let short = GpuTrainer::new(
            Device::rtx4090(),
            TrainConfig {
                num_trees: 2,
                ..quick_config()
            },
        )
        .fit(&ds);
        let long = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        let labels = ds.labels();
        let a_short = accuracy(&short.predict(ds.features()), &labels);
        let a_long = accuracy(&long.predict(ds.features()), &labels);
        assert!(a_long >= a_short, "train acc {a_long} < {a_short}");
    }

    #[test]
    fn regression_base_score_is_target_mean() {
        let ds = make_regression(&RegressionSpec {
            instances: 100,
            features: 4,
            outputs: 2,
            informative: 3,
            seed: 8,
            ..Default::default()
        });
        let base = base_scores(&ds);
        for k in 0..2 {
            let mean: f64 = (0..100).map(|i| ds.target_row(i)[k] as f64).sum::<f64>() / 100.0;
            assert!((base[k] as f64 - mean).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "invalid training configuration")]
    fn invalid_config_rejected_at_construction() {
        let _ = GpuTrainer::new(Device::rtx4090(), TrainConfig::default().with_trees(0));
    }

    #[test]
    fn try_new_reports_the_rejection_instead_of_panicking() {
        let err = GpuTrainer::try_new(Device::rtx4090(), TrainConfig::default().with_trees(0))
            .err()
            .unwrap();
        assert!(err.message().contains("num_trees"), "{err}");
        assert!(err.to_string().contains("invalid training configuration"));
        let ok = GpuTrainer::try_new(Device::rtx4090(), TrainConfig::default());
        assert!(ok.is_ok());
    }

    #[test]
    fn subsampling_still_learns_and_is_deterministic() {
        let ds = make_classification(&ClassificationSpec {
            instances: 600,
            features: 10,
            classes: 3,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed: 20,
            ..Default::default()
        });
        let (train, test) = ds.split(0.3, 21);
        let mut cfg = quick_config();
        cfg.subsample = 0.6;
        cfg.colsample_bytree = 0.7;
        cfg.num_trees = 15;
        let m1 = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&train);
        let m2 = GpuTrainer::new(Device::rtx4090(), cfg).fit(&train);
        assert_eq!(
            m1.predict(test.features()),
            m2.predict(test.features()),
            "seeded sampling must be deterministic"
        );
        let acc = accuracy(&m1.predict(test.features()), &test.labels());
        assert!(acc > 0.7, "subsampled accuracy only {acc}");
    }

    #[test]
    fn subsample_validation_catches_bad_values() {
        let mut c = TrainConfig::default();
        c.subsample = 0.0;
        assert!(c.validate().is_err());
        c.subsample = 1.5;
        assert!(c.validate().is_err());
        c.subsample = 0.5;
        c.colsample_bytree = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sample_fraction_bounds_and_determinism() {
        let items: Vec<u32> = (0..100).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = sample_fraction(&items, 0.3, &mut rng);
        assert_eq!(s.len(), 30);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        assert_eq!(sample_fraction(&items, 1.0, &mut rng), items);
        let mut rng2 = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(s, sample_fraction(&items, 0.3, &mut rng2));
    }

    #[test]
    fn goss_learns_and_is_deterministic() {
        use crate::config::GossConfig;
        let ds = make_classification(&ClassificationSpec {
            instances: 800,
            features: 10,
            classes: 3,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed: 30,
            ..Default::default()
        });
        let (train, test) = ds.split(0.3, 31);
        let mut cfg = quick_config();
        cfg.num_trees = 15;
        cfg.goss = Some(GossConfig::default_rates());
        let m1 = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&train);
        let m2 = GpuTrainer::new(Device::rtx4090(), cfg).fit(&train);
        assert_eq!(m1.predict(test.features()), m2.predict(test.features()));
        let acc = accuracy(&m1.predict(test.features()), &test.labels());
        assert!(acc > 0.75, "GOSS accuracy only {acc}");
    }

    #[test]
    fn goss_sample_keeps_top_gradients_and_amplifies_rest() {
        use crate::config::GossConfig;
        use crate::grad::Gradients;
        let n = 100;
        // Instance i has gradient magnitude i.
        let grads = Gradients {
            g: (0..n).map(|i| i as f32).collect(),
            h: vec![1.0; n],
            n,
            d: 1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let goss = GossConfig {
            top_rate: 0.2,
            other_rate: 0.1,
        };
        let (kept, amplified) = goss_sample(&grads, goss, &mut rng);
        // Top 20 by |g| are instances 80..100, all kept.
        for i in 80..100u32 {
            assert!(kept.contains(&i), "top instance {i} dropped");
        }
        // Roughly 10% of the rest sampled.
        assert!((28..=32).contains(&kept.len()), "kept {}", kept.len());
        // Sampled low-gradient instances amplified by (1-0.2)/0.1 = 8.
        for &i in kept.iter().filter(|&&i| i < 80) {
            assert!(
                (amplified.g[i as usize] - grads.g[i as usize] * 8.0).abs() < 1e-4,
                "instance {i} not amplified"
            );
        }
        // Unsampled instances untouched.
        let dropped = (0..80u32).find(|i| !kept.contains(i)).unwrap();
        assert_eq!(amplified.g[dropped as usize], grads.g[dropped as usize]);
    }

    #[test]
    fn goss_validation() {
        use crate::config::GossConfig;
        let mut cfg = TrainConfig::default();
        cfg.goss = Some(GossConfig {
            top_rate: 0.7,
            other_rate: 0.5,
        });
        assert!(cfg.validate().is_err(), "rates summing over 1 must fail");
        cfg.goss = Some(GossConfig {
            top_rate: 0.0,
            other_rate: 0.1,
        });
        assert!(cfg.validate().is_err());
        cfg.goss = Some(GossConfig::default_rates());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn early_stopping_truncates_to_best_iteration() {
        let ds = make_classification(&ClassificationSpec {
            instances: 500,
            features: 10,
            classes: 3,
            informative: 8,
            flip_y: 0.15, // noisy so validation loss turns upward
            seed: 22,
            ..Default::default()
        });
        let (train, valid) = ds.split(0.4, 23);
        let mut cfg = quick_config();
        cfg.num_trees = 40;
        let r = GpuTrainer::new(Device::rtx4090(), cfg).fit_with_validation(&train, &valid, 3);
        assert!(!r.history.is_empty());
        assert!(r.best_iteration < r.history.len());
        assert_eq!(r.report.model.num_trees(), r.best_iteration + 1);
        // Best really is the minimum of the recorded curve.
        let min = r.history.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((r.history[r.best_iteration] - min).abs() < 1e-12);
        // Stopped within patience of the best (or ran out of trees).
        assert!(r.history.len() <= r.best_iteration + 3 + 1 || r.history.len() == 40);
    }
}
