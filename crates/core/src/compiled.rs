//! Compiled (structure-of-arrays) inference ensembles.
//!
//! [`crate::tree::Tree`]'s `Vec<Node>` enum layout is convenient for
//! growth but branchy and pointer-chasing for serving. A
//! [`CompiledEnsemble`] flattens every tree into parallel primitive
//! arrays — the layout a GPU inference kernel would consume (§3.4.2's
//! instance-level parallel prediction walks exactly such arrays) — and
//! encodes leaves as negative child indices so traversal is a tight
//! loop with no enum matching.

use crate::model::Model;
use crate::tree::{Node, Tree};
use gbdt_data::DenseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One tree in flattened SoA form.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CompiledTree {
    /// Split feature per node (undefined for leaves).
    feature: Vec<u32>,
    /// Split threshold per node (undefined for leaves).
    threshold: Vec<f32>,
    /// Child indices: `≥ 0` → node index, `< 0` → leaf, whose values
    /// start at `(-child − 1) × d` in `leaf_values`.
    left: Vec<i32>,
    right: Vec<i32>,
    /// Root marker: `< 0` if the whole tree is one leaf.
    root: i32,
    /// Concatenated leaf value vectors (`num_leaves × d`).
    leaf_values: Vec<f32>,
}

impl CompiledTree {
    fn from_tree(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let d = tree.d();
        let mut feature = vec![0u32; n];
        let mut threshold = vec![0.0f32; n];
        let mut left = vec![0i32; n];
        let mut right = vec![0i32; n];
        let mut leaf_values: Vec<f32> = Vec::new();
        // Leaf slot id per node (dense numbering of leaves).
        let mut leaf_slot = vec![-1i32; n];
        for (at, node) in tree.nodes().iter().enumerate() {
            if let Node::Leaf { value } = node {
                leaf_slot[at] = (leaf_values.len() / d) as i32;
                leaf_values.extend_from_slice(value);
            }
        }
        let encode = |at: usize, leaf_slot: &[i32]| -> i32 {
            if leaf_slot[at] >= 0 {
                -(leaf_slot[at] + 1)
            } else {
                at as i32
            }
        };
        for (at, node) in tree.nodes().iter().enumerate() {
            if let Node::Split {
                feature: f,
                threshold: t,
                left: l,
                right: r,
                ..
            } = node
            {
                feature[at] = *f;
                threshold[at] = *t;
                left[at] = encode(*l as usize, &leaf_slot);
                right[at] = encode(*r as usize, &leaf_slot);
            }
        }
        CompiledTree {
            feature,
            threshold,
            left,
            right,
            root: encode(0, &leaf_slot),
            leaf_values,
        }
    }

    /// Index into `leaf_values` (element offset) for `row`.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
    fn leaf_offset(&self, row: &[f32], d: usize) -> usize {
        let mut at = self.root;
        while at >= 0 {
            let i = at as usize;
            let v = row[self.feature[i] as usize];
            at = if !(v > self.threshold[i]) {
                self.left[i]
            } else {
                self.right[i]
            };
        }
        ((-at - 1) as usize) * d
    }
}

/// A whole model compiled for serving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledEnsemble {
    trees: Vec<CompiledTree>,
    base: Vec<f32>,
    d: usize,
}

impl CompiledEnsemble {
    /// Compile a trained model.
    pub fn compile(model: &Model) -> Self {
        CompiledEnsemble {
            trees: model.trees.iter().map(CompiledTree::from_tree).collect(),
            base: model.base.clone(),
            d: model.d,
        }
    }

    /// Output dimension.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw scores for one instance, written into `out` (length `d`).
    pub fn predict_row_into(&self, row: &[f32], out: &mut [f32]) {
        out.copy_from_slice(&self.base);
        for t in &self.trees {
            let off = t.leaf_offset(row, self.d);
            for (o, v) in out.iter_mut().zip(&t.leaf_values[off..off + self.d]) {
                *o += v;
            }
        }
    }

    /// Raw scores for a batch (`n × d`, instance-parallel).
    pub fn predict(&self, features: &DenseMatrix) -> Vec<f32> {
        let d = self.d;
        let mut scores = vec![0.0f32; features.rows() * d];
        scores
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(i, out)| self.predict_row_into(features.row(i), out));
        scores
    }

    /// Resident bytes of the compiled form.
    pub fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| {
                t.feature.len() * 4
                    + t.threshold.len() * 4
                    + t.left.len() * 4
                    + t.right.len() * 4
                    + t.leaf_values.len() * 4
            })
            .sum::<usize>()
            + self.base.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gpusim::Device;

    fn trained() -> (Model, gbdt_data::Dataset) {
        let ds = make_classification(&ClassificationSpec {
            instances: 400,
            features: 10,
            classes: 4,
            informative: 7,
            seed: 30,
            ..Default::default()
        });
        let cfg = TrainConfig {
            num_trees: 8,
            max_depth: 5,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        };
        (GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds), ds)
    }

    #[test]
    fn compiled_predictions_match_interpreter_exactly() {
        let (model, ds) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        assert_eq!(
            compiled.predict(ds.features()),
            model.predict(ds.features())
        );
        assert_eq!(compiled.num_trees(), model.num_trees());
        assert_eq!(compiled.d(), 4);
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let model = Model {
            trees: vec![Tree::new(2)],
            base: vec![1.0, -1.0],
            d: 2,
            task: gbdt_data::Task::MultiRegression,
            config: TrainConfig::default(),
        };
        let compiled = CompiledEnsemble::compile(&model);
        let x = DenseMatrix::from_rows(&[vec![9.0]]);
        // Root leaf holds zeros → prediction is the base.
        assert_eq!(compiled.predict(&x), vec![1.0, -1.0]);
    }

    #[test]
    fn nan_routes_like_interpreter() {
        let (model, _) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        let row = vec![f32::NAN; 10];
        let x = DenseMatrix::from_rows(&[row]);
        assert_eq!(compiled.predict(&x), model.predict(&x));
    }

    #[test]
    fn serde_roundtrip() {
        let (model, ds) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        let json = serde_json::to_string(&compiled).unwrap();
        let back: CompiledEnsemble = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(ds.features()), compiled.predict(ds.features()));
    }

    #[test]
    fn memory_accounting_is_positive_and_flat_layout_is_compact() {
        let (model, _) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        assert!(compiled.memory_bytes() > 0);
        // SoA form should not blow up versus the enum representation.
        assert!(compiled.memory_bytes() < model.memory_bytes() * 3);
    }
}
