//! Compiled (structure-of-arrays) inference ensembles.
//!
//! [`crate::tree::Tree`]'s `Vec<Node>` enum layout is convenient for
//! growth but branchy and pointer-chasing for serving. A
//! [`CompiledEnsemble`] flattens every tree into parallel primitive
//! arrays — the layout a GPU inference kernel would consume (§3.4.2's
//! instance-level parallel prediction walks exactly such arrays) — and
//! encodes leaves as negative child indices so traversal is a tight
//! loop with no enum matching.

use crate::model::Model;
use crate::tree::{Node, Tree};
use gbdt_data::DenseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One tree in flattened SoA form. Fields are crate-visible so the
/// serving layer ([`crate::serve`]) can upload them as device buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CompiledTree {
    /// Split feature per node (undefined for leaves).
    pub(crate) feature: Vec<u32>,
    /// Split threshold per node (undefined for leaves).
    pub(crate) threshold: Vec<f32>,
    /// Child indices: `≥ 0` → node index, `< 0` → leaf, whose values
    /// start at `(-child − 1) × d` in `leaf_values`.
    pub(crate) left: Vec<i32>,
    /// Right siblings of [`CompiledTree::left`].
    pub(crate) right: Vec<i32>,
    /// Root marker: `< 0` if the whole tree is one leaf.
    pub(crate) root: i32,
    /// Concatenated leaf value vectors (`num_leaves × d`).
    pub(crate) leaf_values: Vec<f32>,
}

impl CompiledTree {
    fn from_tree(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let d = tree.d();
        let mut feature = vec![0u32; n];
        let mut threshold = vec![0.0f32; n];
        let mut left = vec![0i32; n];
        let mut right = vec![0i32; n];
        let mut leaf_values: Vec<f32> = Vec::new();
        // Leaf slot id per node (dense numbering of leaves).
        let mut leaf_slot = vec![-1i32; n];
        for (at, node) in tree.nodes().iter().enumerate() {
            if let Node::Leaf { value } = node {
                leaf_slot[at] = (leaf_values.len() / d) as i32;
                leaf_values.extend_from_slice(value);
            }
        }
        let encode = |at: usize, leaf_slot: &[i32]| -> i32 {
            if leaf_slot[at] >= 0 {
                -(leaf_slot[at] + 1)
            } else {
                at as i32
            }
        };
        for (at, node) in tree.nodes().iter().enumerate() {
            if let Node::Split {
                feature: f,
                threshold: t,
                left: l,
                right: r,
                ..
            } = node
            {
                feature[at] = *f;
                threshold[at] = *t;
                left[at] = encode(*l as usize, &leaf_slot);
                right[at] = encode(*r as usize, &leaf_slot);
            }
        }
        CompiledTree {
            feature,
            threshold,
            left,
            right,
            root: encode(0, &leaf_slot),
            leaf_values,
        }
    }

    /// Index into `leaf_values` (element offset) for `row`.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
    fn leaf_offset(&self, row: &[f32], d: usize) -> usize {
        let mut at = self.root;
        while at >= 0 {
            let i = at as usize;
            let v = row[self.feature[i] as usize];
            at = if !(v > self.threshold[i]) {
                self.left[i]
            } else {
                self.right[i]
            };
        }
        ((-at - 1) as usize) * d
    }

    /// Check the structural invariants of the flat layout: parallel
    /// arrays agree on node count, leaf slots stay inside
    /// `leaf_values`, and every reachable child link points strictly
    /// forward (the compiler emits children after their parents), so
    /// traversal provably terminates.
    fn validate(&self, d: usize) -> Result<(), String> {
        let n = self.feature.len();
        if self.threshold.len() != n || self.left.len() != n || self.right.len() != n {
            return Err(format!(
                "SoA arrays disagree on node count: feature {}, threshold {}, left {}, right {}",
                n,
                self.threshold.len(),
                self.left.len(),
                self.right.len()
            ));
        }
        if !self.leaf_values.len().is_multiple_of(d) {
            return Err(format!(
                "leaf_values length {} is not a multiple of d = {d}",
                self.leaf_values.len()
            ));
        }
        let leaves = self.leaf_values.len() / d;
        let check_leaf = |c: i32| -> Result<(), String> {
            let slot = (-(c as i64) - 1) as usize;
            if slot >= leaves {
                return Err(format!(
                    "leaf slot {slot} out of range (have {leaves} leaves)"
                ));
            }
            Ok(())
        };
        if self.root < 0 {
            return check_leaf(self.root);
        }
        if (self.root as usize) >= n {
            return Err(format!("root {} out of range (have {n} nodes)", self.root));
        }
        // Only nodes reachable from the root are splits (leaf-occupied
        // slots keep zeroed child links that traversal never reads).
        let mut visited = vec![false; n];
        let mut stack = vec![self.root as usize];
        while let Some(at) = stack.pop() {
            if std::mem::replace(&mut visited[at], true) {
                continue;
            }
            for c in [self.left[at], self.right[at]] {
                if c < 0 {
                    check_leaf(c).map_err(|e| format!("node {at}: {e}"))?;
                } else if (c as usize) >= n {
                    return Err(format!(
                        "node {at}: child index {c} out of range (have {n} nodes)"
                    ));
                } else if c as usize <= at {
                    return Err(format!(
                        "node {at}: child index {c} does not point forward (traversal \
                         would not terminate)"
                    ));
                } else {
                    stack.push(c as usize);
                }
            }
        }
        Ok(())
    }
}

/// A whole model compiled for serving.
///
/// `Deserialize` is hand-written (not derived): a decoded ensemble
/// passes through [`CompiledEnsemble::validate`] before it is returned,
/// so inconsistent data — out-of-range leaf offsets, child indices
/// beyond the node count, `base.len() != d` — is a parse error instead
/// of an out-of-bounds read at predict time.
#[derive(Debug, Clone, Serialize)]
pub struct CompiledEnsemble {
    trees: Vec<CompiledTree>,
    base: Vec<f32>,
    d: usize,
}

impl serde::Deserialize for CompiledEnsemble {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| format!("expected object, got {}", v.kind()))?;
        let ens = CompiledEnsemble {
            trees: serde::field(obj, "trees")?,
            base: serde::field(obj, "base")?,
            d: serde::field(obj, "d")?,
        };
        ens.validate()?;
        Ok(ens)
    }
}

impl TryFrom<&str> for CompiledEnsemble {
    type Error = String;

    /// Parse a JSON-serialized ensemble, validated.
    fn try_from(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl CompiledEnsemble {
    /// Parse a JSON-serialized ensemble. Every decoded ensemble passes
    /// [`CompiledEnsemble::validate`] before it is returned, so corrupt
    /// or adversarial input is an `Err`, never a panic or an
    /// out-of-bounds traversal later (fuzzed in
    /// `crates/core/tests/compiled_fuzz.rs`).
    pub fn from_json(json: &str) -> Result<Self, String> {
        Self::try_from(json)
    }

    /// Compile a trained model.
    pub fn compile(model: &Model) -> Self {
        CompiledEnsemble {
            trees: model.trees.iter().map(CompiledTree::from_tree).collect(),
            base: model.base.clone(),
            d: model.d,
        }
    }

    /// Output dimension.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Base scores (length `d`).
    pub fn base(&self) -> &[f32] {
        &self.base
    }

    /// Total node count across all trees.
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.feature.len()).sum()
    }

    /// Total leaf-value elements across all trees.
    pub fn num_leaf_values(&self) -> usize {
        self.trees.iter().map(|t| t.leaf_values.len()).sum()
    }

    /// The flattened trees (for the serving layer's device upload).
    pub(crate) fn trees(&self) -> &[CompiledTree] {
        &self.trees
    }

    /// Check every structural invariant the traversal loop relies on.
    /// [`CompiledEnsemble::compile`] always produces valid ensembles;
    /// this guards data arriving through deserialization.
    pub fn validate(&self) -> Result<(), String> {
        if self.d == 0 {
            return Err("output dimension d must be positive".to_string());
        }
        if self.base.len() != self.d {
            return Err(format!(
                "base length {} != output dimension d = {}",
                self.base.len(),
                self.d
            ));
        }
        for (i, t) in self.trees.iter().enumerate() {
            t.validate(self.d).map_err(|e| format!("tree {i}: {e}"))?;
        }
        Ok(())
    }

    /// Raw scores for one instance, written into `out` (length `d`).
    pub fn predict_row_into(&self, row: &[f32], out: &mut [f32]) {
        out.copy_from_slice(&self.base);
        for t in &self.trees {
            let off = t.leaf_offset(row, self.d);
            for (o, v) in out.iter_mut().zip(&t.leaf_values[off..off + self.d]) {
                *o += v;
            }
        }
    }

    /// Raw scores for a batch (`n × d`, instance-parallel).
    pub fn predict(&self, features: &DenseMatrix) -> Vec<f32> {
        let d = self.d;
        let mut scores = vec![0.0f32; features.rows() * d];
        scores
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(i, out)| self.predict_row_into(features.row(i), out));
        scores
    }

    /// Resident bytes of the compiled form.
    pub fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| {
                t.feature.len() * 4
                    + t.threshold.len() * 4
                    + t.left.len() * 4
                    + t.right.len() * 4
                    + t.leaf_values.len() * 4
            })
            .sum::<usize>()
            + self.base.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gpusim::Device;

    fn trained() -> (Model, gbdt_data::Dataset) {
        let ds = make_classification(&ClassificationSpec {
            instances: 400,
            features: 10,
            classes: 4,
            informative: 7,
            seed: 30,
            ..Default::default()
        });
        let cfg = TrainConfig {
            num_trees: 8,
            max_depth: 5,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        };
        (GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds), ds)
    }

    #[test]
    fn compiled_predictions_match_interpreter_exactly() {
        let (model, ds) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        assert_eq!(
            compiled.predict(ds.features()),
            model.predict(ds.features())
        );
        assert_eq!(compiled.num_trees(), model.num_trees());
        assert_eq!(compiled.d(), 4);
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let model = Model {
            trees: vec![Tree::new(2)],
            base: vec![1.0, -1.0],
            d: 2,
            task: gbdt_data::Task::MultiRegression,
            config: TrainConfig::default(),
        };
        let compiled = CompiledEnsemble::compile(&model);
        let x = DenseMatrix::from_rows(&[vec![9.0]]);
        // Root leaf holds zeros → prediction is the base.
        assert_eq!(compiled.predict(&x), vec![1.0, -1.0]);
    }

    #[test]
    fn nan_routes_like_interpreter() {
        let (model, _) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        let row = vec![f32::NAN; 10];
        let x = DenseMatrix::from_rows(&[row]);
        assert_eq!(compiled.predict(&x), model.predict(&x));
    }

    #[test]
    fn serde_roundtrip() {
        let (model, ds) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        let json = serde_json::to_string(&compiled).unwrap();
        let back: CompiledEnsemble = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(ds.features()), compiled.predict(ds.features()));
    }

    /// A deterministic one-split ensemble whose JSON layout is known
    /// exactly, so tests can corrupt specific substrings.
    fn tiny_json() -> String {
        let mut t = Tree::new(2);
        let (l, r) = t.split_node(0, 0, 0, 0.5);
        t.set_leaf(l, vec![1.0, 2.0]);
        t.set_leaf(r, vec![3.0, 4.0]);
        let model = Model {
            trees: vec![t],
            base: vec![0.5, -0.5],
            d: 2,
            task: gbdt_data::Task::MultiRegression,
            config: TrainConfig::default(),
        };
        serde_json::to_string(&CompiledEnsemble::compile(&model)).unwrap()
    }

    #[test]
    fn try_from_accepts_valid_json() {
        let json = tiny_json();
        let ens = CompiledEnsemble::try_from(json.as_str()).expect("valid ensemble");
        ens.validate().expect("compile output validates");
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(ens.predict(&x), vec![1.5, 1.5, 3.5, 3.5]);
    }

    #[test]
    fn deserialize_rejects_out_of_range_leaf_offset() {
        // left[0] = -1 points at leaf slot 0; slot 8 does not exist.
        let bad = tiny_json().replace("\"left\":[-1", "\"left\":[-9");
        let err = CompiledEnsemble::try_from(bad.as_str()).expect_err("must reject");
        assert!(err.contains("leaf slot"), "{err}");
    }

    #[test]
    fn deserialize_rejects_child_index_beyond_node_count() {
        let bad = tiny_json().replace("\"right\":[-2", "\"right\":[7");
        let err = CompiledEnsemble::try_from(bad.as_str()).expect_err("must reject");
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn deserialize_rejects_backward_child_link() {
        // A child pointing at its own slot would loop forever.
        let bad = tiny_json().replace("\"right\":[-2", "\"right\":[0");
        let err = CompiledEnsemble::try_from(bad.as_str()).expect_err("must reject");
        assert!(err.contains("point forward"), "{err}");
    }

    #[test]
    fn deserialize_rejects_base_d_mismatch() {
        let bad = tiny_json().replace("\"d\":2", "\"d\":3");
        let err = CompiledEnsemble::try_from(bad.as_str()).expect_err("must reject");
        assert!(err.contains("d = 3"), "{err}");
    }

    #[test]
    fn memory_accounting_is_positive_and_flat_layout_is_compact() {
        let (model, _) = trained();
        let compiled = CompiledEnsemble::compile(&model);
        assert!(compiled.memory_bytes() > 0);
        // SoA form should not blow up versus the enum representation.
        assert!(compiled.memory_bytes() < model.memory_bytes() * 3);
    }
}
