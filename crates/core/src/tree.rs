//! Multi-output decision trees.
//!
//! The defining feature of GBDT-MO (paper Fig. 1): leaves store
//! `d`-dimensional value vectors, so one tree serves all outputs.

use serde::{Deserialize, Serialize};

/// A tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: `value ≤ threshold` (equivalently `bin ≤ bin`)
    /// goes left.
    Split {
        /// Global feature ID tested.
        feature: u32,
        /// Threshold bin (training-time routing on binned data).
        bin: u8,
        /// Float threshold (inference-time routing on raw values).
        threshold: f32,
        /// Left child index.
        left: u32,
        /// Right child index.
        right: u32,
    },
    /// Leaf with a `d`-dimensional output vector.
    Leaf {
        /// Leaf values (already scaled by the learning rate).
        value: Vec<f32>,
    },
}

/// A single decision tree with `d`-dimensional leaf outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    d: usize,
}

impl Tree {
    /// A tree consisting of a single (root) leaf.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "output dimension must be positive");
        Tree {
            nodes: vec![Node::Leaf {
                value: vec![0.0; d],
            }],
            d,
        }
    }

    /// Output dimension.
    pub fn d(&self) -> usize {
        self.d
    }

    /// All nodes (root is index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }

    /// Set node `at` to a leaf with `value`.
    pub fn set_leaf(&mut self, at: usize, value: Vec<f32>) {
        assert_eq!(value.len(), self.d, "leaf value must be d-dimensional");
        self.nodes[at] = Node::Leaf { value };
    }

    /// Replace node `at` by a split, appending two fresh (zero) leaf
    /// children; returns `(left, right)` child indices.
    pub fn split_node(
        &mut self,
        at: usize,
        feature: u32,
        bin: u8,
        threshold: f32,
    ) -> (usize, usize) {
        let left = self.nodes.len();
        let right = left + 1;
        self.nodes.push(Node::Leaf {
            value: vec![0.0; self.d],
        });
        self.nodes.push(Node::Leaf {
            value: vec![0.0; self.d],
        });
        self.nodes[at] = Node::Split {
            feature,
            bin,
            threshold,
            left: left as u32,
            right: right as u32,
        };
        (left, right)
    }

    /// Index of the leaf an instance row reaches (float routing;
    /// non-finite feature values route left).
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
    pub fn leaf_for_row(&self, row: &[f32]) -> usize {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { .. } => return at,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let v = row[*feature as usize];
                    at = if !(v > *threshold) { *left } else { *right } as usize;
                }
            }
        }
    }

    /// Add this tree's prediction for `row` into `out` (length `d`).
    pub fn predict_into(&self, row: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.d);
        let leaf = self.leaf_for_row(row);
        if let Node::Leaf { value } = &self.nodes[leaf] {
            for (o, v) in out.iter_mut().zip(value) {
                *o += v;
            }
        }
    }

    /// The value vector of leaf node `at`. Panics if `at` is a split.
    pub fn leaf_value(&self, at: usize) -> &[f32] {
        match &self.nodes[at] {
            Node::Leaf { value } => value,
            Node::Split { .. } => panic!("node {at} is not a leaf"),
        }
    }

    /// Reassemble a tree from raw nodes (deserialization path),
    /// validating child indices and leaf dimensions.
    pub fn from_parts(nodes: Vec<Node>, d: usize) -> Result<Tree, String> {
        if nodes.is_empty() {
            return Err("tree must have at least one node".into());
        }
        let n = nodes.len();
        for (at, node) in nodes.iter().enumerate() {
            match node {
                Node::Split { left, right, .. } => {
                    if *left as usize >= n || *right as usize >= n {
                        return Err(format!("node {at}: child index out of range"));
                    }
                }
                Node::Leaf { value } => {
                    if value.len() != d {
                        return Err(format!(
                            "node {at}: leaf has {} values, expected {d}",
                            value.len()
                        ));
                    }
                }
            }
        }
        Ok(Tree { nodes, d })
    }

    /// Clone this tree's split structure, replacing every leaf with a
    /// new `d`-dimensional value from `value_of(node_index)`. Node
    /// indices are preserved exactly (used by SketchBoost's
    /// full-dimensional leaf refit).
    pub fn with_leaf_values(&self, d: usize, mut value_of: impl FnMut(usize) -> Vec<f32>) -> Tree {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(at, n)| match n {
                Node::Split { .. } => n.clone(),
                Node::Leaf { .. } => {
                    let value = value_of(at);
                    assert_eq!(value.len(), d, "leaf value must be d-dimensional");
                    Node::Leaf { value }
                }
            })
            .collect();
        Tree { nodes, d }
    }

    /// Approximate resident bytes of the tree (model-size reporting; the
    /// paper's Fig. 1 argument is that GBDT-MO needs d× fewer trees).
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Split { .. } => 16,
                Node::Leaf { value } => 8 + value.len() * 4,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 ≤ 0.5 → leaf [1,0]; else x1 ≤ 2.0 → [0,1] else [5,5].
    fn sample_tree() -> Tree {
        let mut t = Tree::new(2);
        let (l, r) = t.split_node(0, 0, 10, 0.5);
        t.set_leaf(l, vec![1.0, 0.0]);
        let (rl, rr) = t.split_node(r, 1, 20, 2.0);
        t.set_leaf(rl, vec![0.0, 1.0]);
        t.set_leaf(rr, vec![5.0, 5.0]);
        t
    }

    #[test]
    fn routing_follows_thresholds() {
        let t = sample_tree();
        let mut out = [0.0f32; 2];
        t.predict_into(&[0.4, 9.9], &mut out);
        assert_eq!(out, [1.0, 0.0]);
        out = [0.0; 2];
        t.predict_into(&[0.6, 1.0], &mut out);
        assert_eq!(out, [0.0, 1.0]);
        out = [0.0; 2];
        t.predict_into(&[0.6, 3.0], &mut out);
        assert_eq!(out, [5.0, 5.0]);
    }

    #[test]
    fn boundary_goes_left() {
        let t = sample_tree();
        let mut out = [0.0f32; 2];
        t.predict_into(&[0.5, 0.0], &mut out);
        assert_eq!(out, [1.0, 0.0], "v == threshold routes left");
    }

    #[test]
    fn nan_routes_left() {
        let t = sample_tree();
        let mut out = [0.0f32; 2];
        t.predict_into(&[f32::NAN, 0.0], &mut out);
        assert_eq!(out, [1.0, 0.0]);
    }

    #[test]
    fn predictions_accumulate() {
        let t = sample_tree();
        let mut out = [10.0f32, 10.0];
        t.predict_into(&[0.0, 0.0], &mut out);
        assert_eq!(out, [11.0, 10.0]);
    }

    #[test]
    fn structure_counters() {
        let t = sample_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(Tree::new(3).depth(), 0);
        assert_eq!(Tree::new(3).num_leaves(), 1);
    }

    #[test]
    fn leaf_value_access() {
        let t = sample_tree();
        let leaf = t.leaf_for_row(&[0.0, 0.0]);
        assert_eq!(t.leaf_value(leaf), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "is not a leaf")]
    fn leaf_value_on_split_panics() {
        let t = sample_tree();
        let _ = t.leaf_value(0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample_tree();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
