//! Multi-GPU training on a single machine (paper §3.4.2).
//!
//! Feature columns are partitioned across devices: each device builds
//! histograms and evaluates splits *only for its features*, so the
//! dominant histogram cost divides by the device count. Per node, the
//! devices exchange only summary statistics — their local best-split
//! candidates (an all-gather of a few dozen bytes each) and, once the
//! global winner is known, the owner broadcasts the left/right routing
//! bitmap so every device partitions its instance lists identically.
//! The group runs bulk-synchronously; barrier waits book as idle time.
//!
//! ## Fault recovery
//!
//! When any device in the group has a fault injector attached
//! (`Device::enable_faults`), every bulk-synchronous step ends with a
//! group-wide poll. A transient launch fault re-runs the round within
//! the [`crate::RetryPolicy`] budget (the failed attempt's charges stay
//! booked — the grid ran and trapped). A lost device is *dropped from
//! the active set*: the survivors re-partition the work, re-charge the
//! ingest of their enlarged shares, re-run the interrupted round, and
//! finish training — producing trees bit-identical to a fault-free run,
//! because the functional compute is independent of the device count.
//! Only when every device is gone does training fail, with
//! [`TrainError::AllDevicesLost`].

use crate::config::{ConfigError, HistogramMethod, TrainConfig};
use crate::error::TrainError;
use crate::grad::{compute_gradients, update_scores_from_leaves, Gradients};
use crate::grow::{partition_stable, GrowResult};
use crate::hist::{accumulate_dense, adaptive, gmem, smem, sortreduce, HistContext, NodeHistogram};
use crate::loss::loss_for_task;
use crate::model::Model;
use crate::sketch::{apply_sketch, charge_apply, plan_sketch, refit_leaves_full_d};
use crate::split::{find_best_split_range, leaf_values, SplitCandidate, SplitParams};
use crate::trainer::{base_scores, TrainReport};
use crate::tree::Tree;
use gbdt_data::{BinnedDataset, Dataset};
use gpusim::cost::KernelCost;
use gpusim::{Device, DeviceGroup, Event, GpuFault, Phase, Telemetry};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Stream carrying fresh histogram builds when `streams > 1` (stream 0
/// keeps gradients, split evaluation, and partitioning serial).
const HIST_STREAM: usize = 1;
/// Stream carrying level-batched collectives when `streams > 1`: the
/// NCCL channel runs on its own engine and overlaps compute.
const COMM_STREAM: usize = 2;
/// Collectives are modeled as pipelined into this many chunks: the
/// first reduced chunk lands `1/COMM_CHUNKS` into the transfer, so the
/// next level's builds overlap the tail (the same convention as the
/// trainer's chunked ingest copy).
const COMM_CHUNKS: f64 = 8.0;

/// Frontier entry awaiting its level's collective exchange:
/// `(tree node, instances, g sums, h sums, local best split)`.
type PendingNode = (usize, Vec<u32>, Vec<f64>, Vec<f64>, Option<SplitCandidate>);

/// Contiguous feature ranges per device: device `i` owns
/// `[ranges[i].0, ranges[i].1)` as local indices into `0..m`.
pub fn partition_features(m: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "need at least one device");
    let base = m / k;
    let extra = m % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Outcome of polling every active device after one bulk-synchronous
/// step (the group-wide `cudaGetLastError` analogue).
enum GroupPoll {
    /// No device reported a fault.
    Clean,
    /// At least one device trapped a retryable launch fault; the first
    /// one (in rank order) is reported.
    Transient(GpuFault),
    /// One or more devices are gone. `dead` holds their positions in
    /// the polled slice; loss dominates any pending transient.
    Lost { dead: Vec<usize> },
}

fn poll_group(devices: &[Arc<Device>]) -> GroupPoll {
    let mut dead = Vec::new();
    let mut transient = None;
    for (rank, dev) in devices.iter().enumerate() {
        match dev.poll_fault() {
            Ok(()) => {}
            Err(GpuFault::DeviceLost { .. }) => dead.push(rank),
            Err(fault @ GpuFault::Transient { .. }) => {
                if transient.is_none() {
                    transient = Some(fault);
                }
            }
        }
    }
    if !dead.is_empty() {
        GroupPoll::Lost { dead }
    } else if let Some(fault) = transient {
        GroupPoll::Transient(fault)
    } else {
        GroupPoll::Clean
    }
}

/// What the caller should do after a polled step.
enum StepVerdict {
    /// Fault-free: commit the step's results.
    Commit,
    /// Transient fault within budget: re-run the step as-is.
    Retry,
    /// Devices were dropped: re-partition over the survivors, re-charge
    /// their enlarged ingest shares, then re-run the step.
    Degraded,
}

/// Charge every device for ingesting and binning its feature-range
/// share (feature-parallel layout). Re-issued after degradation: the
/// partition boundaries shift globally, so survivors reload and rebin
/// their full new column ranges.
fn charge_fp_preprocess(group: &DeviceGroup, n: usize, ranges: &[(usize, usize)]) {
    for (dev, &(lo, hi)) in group.devices().iter().zip(ranges) {
        let share_bytes = (n * (hi - lo) * 4) as f64;
        dev.charge_ns(
            "htod_features",
            Phase::Transfer,
            dev.model().host_copy_ns(share_bytes),
        );
        dev.charge_kernel(
            "quantile_binning",
            Phase::Binning,
            &KernelCost::streaming((n * (hi - lo)) as f64 * 16.0, share_bytes * 2.5),
        );
    }
}

/// Charge every device for ingesting and binning all columns of its
/// instance shard (data-parallel layout).
fn charge_dp_preprocess(group: &DeviceGroup, n: usize, m: usize) {
    let k = group.len();
    for (rank, dev) in group.devices().iter().enumerate() {
        let shard = n / k + usize::from(rank < n % k);
        let bytes = (shard * m * 4) as f64;
        dev.charge_ns(
            "htod_features",
            Phase::Transfer,
            dev.model().host_copy_ns(bytes),
        );
        dev.charge_kernel(
            "quantile_binning",
            Phase::Binning,
            &KernelCost::streaming((shard * m) as f64 * 16.0, bytes * 2.5),
        );
    }
}

/// Book a level-batched collective on every device's comm stream:
/// all ranks enter together at `fence` (the slowest rank's arrival),
/// each pays `ns` on its comm engine, and the returned event marks the
/// collective's completion across the group. The comm streams advance
/// in lockstep — every rank waits the same fence and charges the same
/// duration — so the fold over per-device events is exact, not an
/// approximation.
fn streamed_collective(
    devices: &[Arc<Device>],
    name: &'static str,
    ns: f64,
    fence: Event,
) -> Event {
    let mut done = fence;
    for dev in devices {
        dev.wait_event(COMM_STREAM, fence);
        dev.stream(COMM_STREAM).charge_ns(name, Phase::Comm, ns);
        done = done.max(dev.record_event(COMM_STREAM));
    }
    done
}

/// Fold the group's stream-0 clocks into one alignment fence and make
/// every device wait it: the bulk-synchronous join of streamed mode.
/// Unlike [`DeviceGroup::barrier`] it books no idle time and leaves
/// the comm/hist streams free to drain past the level boundary.
fn align_stream0(devices: &[Arc<Device>]) -> Event {
    let mut align = Event::at_ns(0.0);
    for dev in devices {
        align = align.max(dev.record_event(0));
    }
    for dev in devices {
        dev.wait_event(0, align);
    }
    align
}

/// The group's shared telemetry registry, if any device carries one.
/// `MultiGpuTrainer` users attach one registry to every member (see
/// `Device::attach_telemetry`), so the first hit is the group's.
fn group_telemetry(devices: &[Arc<Device>]) -> Option<Arc<Telemetry>> {
    devices.iter().find_map(|dv| dv.telemetry())
}

/// Count collective payload bytes on the group's registry. Pure
/// observer: called after the collective's charges are booked.
fn tel_collective_bytes(devices: &[Arc<Device>], bytes: f64) {
    if let Some(tel) = group_telemetry(devices) {
        tel.counter_add("multigpu.collective_bytes", bytes as u64);
    }
}

/// Record the pre-barrier clock spread across the surviving devices —
/// how unevenly the group's makespans landed before the final join.
fn tel_makespan_skew(devices: &[Arc<Device>]) {
    if let Some(tel) = group_telemetry(devices) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for dev in devices {
            let now = dev.now_ns();
            lo = lo.min(now);
            hi = hi.max(now);
        }
        tel.gauge_set("multigpu.makespan_skew_ns", (hi - lo).max(0.0));
    }
}

/// How training work is decomposed across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiGpuStrategy {
    /// Partition feature columns (the paper's §3.4.2 design): each
    /// device histograms only its features; devices exchange best-split
    /// candidates and routing bitmaps — tiny "summary statistics".
    #[default]
    FeatureParallel,
    /// Partition instances: each device histograms its shard over *all*
    /// features; per level, partial histograms are summed with a ring
    /// all-reduce ("partial histograms are then aggregated via
    /// CUDA-aware collective operations"). Gradient work divides by the
    /// device count, but the collective moves the full multi-output
    /// histogram — the communication blow-up that motivates the
    /// feature-parallel choice for large `d`.
    DataParallel,
}

/// Multi-GPU GBDT-MO trainer.
pub struct MultiGpuTrainer {
    group: DeviceGroup,
    config: TrainConfig,
    strategy: MultiGpuStrategy,
}

impl MultiGpuTrainer {
    /// Create a trainer over a device group (feature-parallel, the
    /// paper's strategy).
    ///
    /// Panics on an invalid configuration; use
    /// [`MultiGpuTrainer::try_new`] to handle the rejection instead.
    pub fn new(group: DeviceGroup, config: TrainConfig) -> Self {
        Self::with_strategy(group, config, MultiGpuStrategy::FeatureParallel)
    }

    /// Fallible constructor (feature-parallel): returns the validation
    /// failure as a [`ConfigError`] instead of panicking.
    pub fn try_new(group: DeviceGroup, config: TrainConfig) -> Result<Self, ConfigError> {
        Self::try_with_strategy(group, config, MultiGpuStrategy::FeatureParallel)
    }

    /// Create a trainer with an explicit decomposition strategy.
    pub fn with_strategy(
        group: DeviceGroup,
        config: TrainConfig,
        strategy: MultiGpuStrategy,
    ) -> Self {
        Self::try_with_strategy(group, config, strategy).expect("invalid training configuration")
    }

    /// Fallible counterpart of [`MultiGpuTrainer::with_strategy`].
    pub fn try_with_strategy(
        group: DeviceGroup,
        config: TrainConfig,
        strategy: MultiGpuStrategy,
    ) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError::from)?;
        Ok(MultiGpuTrainer {
            group,
            config,
            strategy,
        })
    }

    /// The device group.
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// The decomposition strategy.
    pub fn strategy(&self) -> MultiGpuStrategy {
        self.strategy
    }

    /// Train and return just the model.
    ///
    /// Panics if training fails past the fault-recovery budget; use
    /// [`MultiGpuTrainer::try_fit`] to handle that as a typed error.
    pub fn fit(&self, ds: &Dataset) -> Model {
        self.fit_report(ds).model
    }

    /// Train with the full report. Simulated time is the *group* time:
    /// the slowest device's clock after the final barrier.
    ///
    /// Panics if training fails past the fault-recovery budget; use
    /// [`MultiGpuTrainer::try_fit_report`] to handle that instead.
    pub fn fit_report(&self, ds: &Dataset) -> TrainReport {
        self.try_fit_report(ds)
            .unwrap_or_else(|e| panic!("multi-GPU training failed: {e}"))
    }

    /// Fallible training: returns just the model, or the typed
    /// [`TrainError`] when injected faults exhaust the retry budget or
    /// every device in the group is lost.
    pub fn try_fit(&self, ds: &Dataset) -> Result<Model, TrainError> {
        Ok(self.try_fit_report(ds)?.model)
    }

    /// Fallible counterpart of [`MultiGpuTrainer::fit_report`]: on a
    /// `DeviceLost` the group degrades to the survivors and keeps
    /// training (see the module docs); the error cases are an exhausted
    /// transient-retry budget and the loss of every device.
    pub fn try_fit_report(&self, ds: &Dataset) -> Result<TrainReport, TrainError> {
        match self.strategy {
            MultiGpuStrategy::FeatureParallel => self.fit_feature_parallel(ds),
            MultiGpuStrategy::DataParallel => self.fit_data_parallel(ds),
        }
    }

    /// End-of-step poll and recovery decision for one bulk-synchronous
    /// step. Trims `active` on device loss. `round` is the boosting
    /// round, or `usize::MAX` for preprocessing.
    fn recover_step(
        &self,
        active: &mut Vec<Arc<Device>>,
        attempts: &mut u32,
        round: usize,
    ) -> Result<StepVerdict, TrainError> {
        // Observer only (may be `None`): counters and postmortems are
        // recorded on the group's shared registry after the recovery
        // decision is already made.
        let tel = group_telemetry(self.group.devices());
        match poll_group(active) {
            GroupPoll::Clean => Ok(StepVerdict::Commit),
            GroupPoll::Transient(fault) => {
                if *attempts >= self.config.retry.max_retries {
                    let err = TrainError::RetriesExhausted {
                        round,
                        attempts: *attempts,
                        fault,
                    };
                    if let Some(tl) = &tel {
                        tl.counter_inc("train.faults_total");
                        tl.record_postmortem(&err.to_string());
                    }
                    return Err(err);
                }
                *attempts += 1;
                if let Some(tl) = &tel {
                    tl.counter_inc("train.faults_total");
                    tl.counter_inc("train.retries_total");
                }
                Ok(StepVerdict::Retry)
            }
            GroupPoll::Lost { dead } => {
                for rank in dead.into_iter().rev() {
                    active.remove(rank);
                }
                if let Some(tl) = &tel {
                    tl.counter_inc("train.faults_total");
                }
                if active.is_empty() {
                    let err = TrainError::AllDevicesLost { round };
                    if let Some(tl) = &tel {
                        tl.record_postmortem(&err.to_string());
                    }
                    return Err(err);
                }
                Ok(StepVerdict::Degraded)
            }
        }
    }

    /// Sketch the round's gradients once on device 0, broadcast the
    /// plan (selected column indices or the projection matrix) as a
    /// collective, and mirror the gather/projection apply on the
    /// replica devices: `mirror_n` instances each — the full `n` under
    /// feature parallelism (gradients are replicated), the shard size
    /// under data parallelism.
    fn sketch_round(
        &self,
        group: &DeviceGroup,
        grads: &Gradients,
        t: usize,
        mirror_n: usize,
    ) -> Gradients {
        let dev0 = group.device(0);
        let _sketch_scope = dev0.prof_scope("sketch", Some(t as u64));
        let plan = plan_sketch(
            dev0,
            grads,
            self.config.sketch,
            self.config.seed.wrapping_add(t as u64),
        );
        let bytes = plan.broadcast_bytes(grads.d);
        if group.len() > 1 && bytes > 0.0 {
            group.broadcast(0, bytes as usize);
            tel_collective_bytes(group.devices(), bytes);
        }
        let sketched = apply_sketch(dev0, grads, &plan);
        for dev in &group.devices()[1..] {
            charge_apply(dev, mirror_n, grads.d, &plan);
        }
        sketched
    }

    /// Refit a sketch-grown tree's leaves to the full `d`-dimensional
    /// optimum on device 0 and mirror the gather-reduce charge on the
    /// replicas (`mirror_touched` resident instances each).
    #[allow(clippy::type_complexity)]
    fn refit_round(
        &self,
        group: &DeviceGroup,
        tree: Tree,
        leaf_assignments: Vec<(Vec<u32>, Vec<f32>)>,
        leaf_nodes: Vec<usize>,
        full: &Gradients,
        mirror_touched: usize,
    ) -> (Tree, Vec<(Vec<u32>, Vec<f32>)>) {
        let mut grown = GrowResult {
            tree,
            leaf_assignments,
            leaf_nodes,
            methods_used: BTreeMap::new(),
        };
        refit_leaves_full_d(group.device(0), &mut grown, full, &self.config);
        let d = full.d;
        for dev in &group.devices()[1..] {
            dev.charge_kernel(
                "leaf_refit_full_d",
                Phase::LeafValue,
                &KernelCost::streaming(
                    (mirror_touched * d * 2) as f64,
                    (mirror_touched * d * 8) as f64,
                ),
            );
        }
        (grown.tree, grown.leaf_assignments)
    }

    fn fit_feature_parallel(&self, ds: &Dataset) -> Result<TrainReport, TrainError> {
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let m = ds.m();
        let start_summaries: Vec<_> = self.group.devices().iter().map(|dv| dv.summary()).collect();
        let mut active: Vec<Arc<Device>> = self.group.devices().to_vec();
        let faults_on = active.iter().any(|dv| dv.fault_injector().is_some());
        let streamed = self.config.streams > 1;
        let hist_stream = if streamed { HIST_STREAM } else { 0 };

        // --- preprocessing, charged per device for its feature share --
        let mut attempts = 0u32;
        loop {
            let group = DeviceGroup::from_devices(active.clone());
            let ranges = partition_features(m, group.len());
            charge_fp_preprocess(&group, n, &ranges);
            if !faults_on {
                break;
            }
            match self.recover_step(&mut active, &mut attempts, usize::MAX)? {
                StepVerdict::Commit => break,
                // Retry and degradation both simply re-run the ingest:
                // the loop recomputes the partition from the survivors.
                StepVerdict::Retry | StepVerdict::Degraded => {}
            }
        }
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        let features: Vec<u32> = (0..m as u32).collect();

        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }
        let loss = loss_for_task(ds.task());
        let params = SplitParams {
            lambda: self.config.lambda,
            min_gain: self.config.min_gain,
            min_instances: self.config.min_instances,
            segments_c: self.config.segments_per_block_c,
        };

        let mut trees = Vec::with_capacity(self.config.num_trees);
        let mut hist_methods: BTreeMap<HistogramMethod, usize> = BTreeMap::new();
        // Structure search runs at the sketch's effective output
        // dimension; the histogram shrinks from d to k columns.
        let d_eff = self.config.sketch.effective_dim(d);
        let mut hist = NodeHistogram::new(m, d_eff, self.config.max_bins);

        for t in 0..self.config.num_trees {
            // Snapshot the round's inputs so a faulted attempt can be
            // rolled back and re-run (cloned only when injectors are
            // attached — the fault-free path is untouched).
            let saved = faults_on.then(|| (scores.clone(), hist_methods.clone()));
            let mut attempts = 0u32;
            let committed = loop {
                let group = DeviceGroup::from_devices(active.clone());
                let ranges = partition_features(m, group.len());
                // Scope the round on the lead device (the representative
                // timeline; devices run in lockstep between collectives).
                let _round_scope = group.device(0).prof_scope("round", Some(t as u64));
                // Gradients are replicated: every device computes them for
                // all instances (standard in feature-parallel training —
                // gradients depend on all outputs but no feature exchange).
                let grads_full = {
                    let g = compute_gradients(
                        group.device(0),
                        loss.as_ref(),
                        &scores,
                        ds.targets(),
                        n,
                        d,
                    );
                    for dev in &group.devices()[1..] {
                        dev.charge_kernel(
                            "grad_hess",
                            Phase::Gradient,
                            &KernelCost::streaming(
                                n as f64 * d as f64 * loss.flops_per_output(),
                                (n * d * 16) as f64,
                            ),
                        );
                    }
                    g
                };
                // Sketch once per tree: device 0 selects, the plan is
                // broadcast, every device applies locally.
                let (grads, full_for_refit) = if self.config.sketch.is_none() {
                    (grads_full, None)
                } else {
                    let sketched = self.sketch_round(&group, &grads_full, t, n);
                    (sketched, Some(grads_full))
                };

                let mut tree = Tree::new(grads.d);
                let mut leaf_assignments: Vec<(Vec<u32>, Vec<f32>)> = Vec::new();
                let mut leaf_nodes: Vec<usize> = Vec::new();
                let root_idx: Vec<u32> = (0..n as u32).collect();
                let (rg, rh) = grads.sums(&root_idx);
                let mut frontier = vec![(0usize, root_idx, rg, rh)];
                // Streamed mode: builds of each level start at the previous
                // level's alignment fence plus the first chunk of any
                // in-flight collective — the collective's tail overlaps them.
                let mut level_fence: Option<Event> = None;

                for depth in 0..self.config.max_depth {
                    let _level_scope = group.device(0).prof_scope("level", Some(depth as u64));
                    if streamed {
                        for dev in group.devices() {
                            let f = match level_fence {
                                Some(f) => f,
                                None => dev.record_event(0),
                            };
                            dev.wait_event(HIST_STREAM, f);
                        }
                    }
                    // --- pass 1: histograms + local candidates per node ---
                    // Candidates for the whole level are exchanged in ONE
                    // all-gather (summary statistics only), not per node.
                    let mut pending: Vec<PendingNode> = Vec::new();
                    let mut candidate_payload: Vec<Vec<u8>> = vec![Vec::new(); group.len()];
                    for (tree_node, instances, node_g, node_h) in frontier {
                        if instances.len() < 2 * self.config.min_instances {
                            let v = leaf_values(
                                &node_g,
                                &node_h,
                                self.config.lambda,
                                self.config.learning_rate,
                            );
                            tree.set_leaf(tree_node, v.clone());
                            leaf_nodes.push(tree_node);
                            leaf_assignments.push((instances, v));
                            continue;
                        }

                        // Per-device histogram build over its feature range:
                        // charge each device for exactly its share.
                        hist.reset();
                        let mut hist_events: Vec<Option<Event>> = vec![None; group.len()];
                        for (rank, (dev, &(lo, hi))) in
                            group.devices().iter().zip(&ranges).enumerate()
                        {
                            if lo == hi {
                                continue;
                            }
                            let ctx = HistContext {
                                device: dev,
                                data: &binned,
                                grads: &grads,
                                features: &features[lo..hi],
                                bins: self.config.max_bins,
                                opts: self.config.hist,
                            };
                            let method = match self.config.hist.method {
                                HistogramMethod::Adaptive => {
                                    adaptive::select_method(&ctx, instances.len())
                                }
                                mtd => mtd,
                            };
                            match method {
                                HistogramMethod::GlobalMemory => {
                                    gmem::charge_on(&ctx, &instances, hist_stream)
                                }
                                HistogramMethod::SharedMemory => {
                                    smem::charge_on(&ctx, &instances, hist_stream)
                                }
                                HistogramMethod::SortReduce => {
                                    sortreduce::charge_on(&ctx, &instances, hist_stream)
                                }
                                HistogramMethod::Adaptive => unreachable!(),
                            }
                            *hist_methods.entry(method).or_insert(0) += 1;
                            if streamed {
                                hist_events[rank] = Some(dev.record_event(HIST_STREAM));
                            }
                        }
                        // Functional accumulation once (identical results).
                        let full_ctx = HistContext {
                            device: group.device(0),
                            data: &binned,
                            grads: &grads,
                            features: &features,
                            bins: self.config.max_bins,
                            opts: self.config.hist,
                        };
                        accumulate_dense(&full_ctx, &instances, &mut hist);

                        // Local best split per device: each device evaluates
                        // only its own feature range, so it fences only its
                        // own fresh build (the cross-device join is the
                        // candidate all-gather below).
                        let locals: Vec<Option<SplitCandidate>> = group
                            .devices()
                            .iter()
                            .zip(&ranges)
                            .zip(&hist_events)
                            .map(|((dev, &(lo, hi)), built)| {
                                if let Some(built) = built {
                                    dev.wait_event(0, *built);
                                }
                                find_best_split_range(
                                    dev,
                                    &hist,
                                    &features,
                                    lo,
                                    hi,
                                    &node_g,
                                    &node_h,
                                    instances.len() as u32,
                                    &params,
                                )
                            })
                            .collect();
                        for (payload, c) in candidate_payload.iter_mut().zip(&locals) {
                            payload.extend(std::iter::repeat_n(
                                0u8,
                                16 + c.as_ref().map_or(0, |c| c.left_g.len() * 16),
                            ));
                        }
                        // Global winner: strictly-greater gain wins, so exact
                        // ties resolve to the lowest feature range — matching
                        // the single-device global argmax tie-breaking.
                        let mut best: Option<SplitCandidate> = None;
                        for c in locals.into_iter().flatten() {
                            if best.as_ref().is_none_or(|b| c.gain > b.gain) {
                                best = Some(c);
                            }
                        }
                        pending.push((tree_node, instances, node_g, node_h, best));
                    }
                    if !pending.is_empty() && group.len() > 1 {
                        let max_part = candidate_payload.iter().map(Vec::len).max().unwrap_or(0);
                        tel_collective_bytes(group.devices(), (max_part * group.len()) as f64);
                        if streamed {
                            // Candidates are tiny summary statistics: pass 2
                            // waits the full exchange before picking winners.
                            let ns = group
                                .device(0)
                                .model()
                                .all_gather_ns(max_part as f64, group.len());
                            let fence = align_stream0(group.devices());
                            let done =
                                streamed_collective(group.devices(), "all_gather", ns, fence);
                            for dev in group.devices() {
                                dev.wait_event(0, done);
                            }
                        } else {
                            let _ = group.all_gather_bytes(&candidate_payload);
                        }
                    }

                    // --- pass 2: winners, routing bitmaps, partitions ------
                    let mut next = Vec::new();
                    let mut flag_payload: Vec<Vec<u8>> = vec![Vec::new(); group.len()];
                    let mut flag_elems = vec![0usize; group.len()];
                    let mut partition_elems = 0usize;
                    for (tree_node, instances, node_g, node_h, best) in pending {
                        let Some(split) = best else {
                            let v = leaf_values(
                                &node_g,
                                &node_h,
                                self.config.lambda,
                                self.config.learning_rate,
                            );
                            tree.set_leaf(tree_node, v.clone());
                            leaf_nodes.push(tree_node);
                            leaf_assignments.push((instances, v));
                            continue;
                        };

                        // The owning device computes the routing flags; the
                        // bitmaps of the whole level are exchanged in one
                        // all-gather below, and the flag/partition kernels
                        // are charged level-batched.
                        let owner = ranges
                            .iter()
                            .position(|&(lo, hi)| {
                                (split.feature as usize) >= lo && (split.feature as usize) < hi
                            })
                            .expect("split feature must belong to a device");
                        let col = binned.bins.col(split.feature as usize);
                        let flags: Vec<bool> = instances
                            .iter()
                            .map(|&i| col[i as usize] <= split.bin)
                            .collect();
                        flag_elems[owner] += instances.len();
                        flag_payload[owner]
                            .extend(std::iter::repeat_n(0u8, instances.len().div_ceil(8)));

                        // Every device partitions its (replicated) index list.
                        partition_elems += instances.len();
                        crate::sanitize::trace_partition(&group.devices()[owner], &flags);
                        let (left_idx, right_idx) = partition_stable(&instances, &flags);

                        let threshold = binned.cuts.threshold(split.feature as usize, split.bin);
                        let (l, r) =
                            tree.split_node(tree_node, split.feature, split.bin, threshold);
                        let right_g: Vec<f64> = node_g
                            .iter()
                            .zip(&split.left_g)
                            .map(|(a, b)| a - b)
                            .collect();
                        let right_h: Vec<f64> = node_h
                            .iter()
                            .zip(&split.left_h)
                            .map(|(a, b)| a - b)
                            .collect();
                        next.push((l, left_idx, split.left_g, split.left_h));
                        next.push((r, right_idx, right_g, right_h));
                    }
                    // Level-batched flag + partition kernel charges.
                    for (i, dev) in group.devices().iter().enumerate() {
                        if flag_elems[i] > 0 {
                            dev.charge_kernel(
                                "compute_flags_level",
                                Phase::Partition,
                                &KernelCost::streaming(
                                    flag_elems[i] as f64,
                                    (flag_elems[i] * 5) as f64,
                                ),
                            );
                        }
                        if partition_elems > 0 {
                            dev.charge_kernel(
                                "partition_level",
                                Phase::Partition,
                                &KernelCost {
                                    flops: 3.0 * partition_elems as f64,
                                    dram_bytes: (partition_elems * 17) as f64,
                                    launches: 2.0,
                                    ..Default::default()
                                },
                            );
                        }
                    }
                    // Routing bitmaps feed the next level's builds: the
                    // exchange's tail overlaps them (first-chunk fence).
                    let mut comm_partial: Option<Event> = None;
                    if group.len() > 1 && flag_payload.iter().any(|p| !p.is_empty()) {
                        let max_part = flag_payload.iter().map(Vec::len).max().unwrap_or(0);
                        tel_collective_bytes(group.devices(), (max_part * group.len()) as f64);
                        if streamed {
                            let ns = group
                                .device(0)
                                .model()
                                .all_gather_ns(max_part as f64, group.len());
                            let fence = align_stream0(group.devices());
                            let done =
                                streamed_collective(group.devices(), "all_gather", ns, fence);
                            comm_partial = Some(done.offset_ns(-ns * (1.0 - 1.0 / COMM_CHUNKS)));
                        } else {
                            let _ = group.all_gather_bytes(&flag_payload);
                        }
                    }
                    if streamed {
                        let align = align_stream0(group.devices());
                        level_fence = Some(comm_partial.map_or(align, |p| align.max(p)));
                    } else {
                        group.barrier();
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                for (tree_node, instances, node_g, node_h) in frontier {
                    let v = leaf_values(
                        &node_g,
                        &node_h,
                        self.config.lambda,
                        self.config.learning_rate,
                    );
                    tree.set_leaf(tree_node, v.clone());
                    leaf_nodes.push(tree_node);
                    leaf_assignments.push((instances, v));
                }
                // Sketched structure, full-output leaves: one gather-reduce
                // pass over the complete gradients per leaf.
                let (tree, leaf_assignments) = if let Some(full) = &full_for_refit {
                    self.refit_round(&group, tree, leaf_assignments, leaf_nodes, full, n)
                } else {
                    (tree, leaf_assignments)
                };

                // Replicated incremental score update on every device.
                for (i, dev) in group.devices().iter().enumerate() {
                    if i == 0 {
                        update_scores_from_leaves(dev, &mut scores, d, &leaf_assignments);
                    } else {
                        let touched: usize = leaf_assignments.iter().map(|(v, _)| v.len()).sum();
                        dev.charge_kernel(
                            "update_scores",
                            Phase::Predict,
                            &KernelCost::streaming(
                                (touched * d) as f64,
                                (touched * d * 8 + leaf_assignments.len() * d * 4) as f64,
                            ),
                        );
                    }
                }
                if !faults_on {
                    break tree;
                }
                match self.recover_step(&mut active, &mut attempts, t)? {
                    StepVerdict::Commit => break tree,
                    StepVerdict::Retry => {}
                    StepVerdict::Degraded => {
                        // Survivors take over the lost device's columns:
                        // charge the ingest of the shifted partition before
                        // re-running the round.
                        let regrouped = DeviceGroup::from_devices(active.clone());
                        let new_ranges = partition_features(m, regrouped.len());
                        charge_fp_preprocess(&regrouped, n, &new_ranges);
                    }
                }
                let (saved_scores, saved_methods) =
                    saved.as_ref().expect("snapshot exists when faults are on");
                scores.copy_from_slice(saved_scores);
                hist_methods = saved_methods.clone();
            };
            trees.push(committed);
        }
        // Clock spread is only visible before the final barrier joins
        // every stream to the group makespan.
        tel_makespan_skew(&active);
        DeviceGroup::from_devices(active.clone()).barrier();

        let model = Model {
            trees,
            base,
            d,
            task: ds.task(),
            config: self.config.clone(),
        };
        // Group time = slowest device (they are barrier-aligned); report
        // the surviving lead's phase breakdown as representative.
        let lead = &active[0];
        let lead_pos = self
            .group
            .devices()
            .iter()
            .position(|dv| Arc::ptr_eq(dv, lead))
            .expect("lead device comes from the original group");
        let sim = lead.summary().since(&start_summaries[lead_pos]);
        Ok(TrainReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
            hist_methods,
        })
    }

    /// Data-parallel training: instances sharded per device, per-level
    /// ring all-reduce of the full multi-output histogram. The model is
    /// bit-identical to single-device training; only the cost profile
    /// differs (gradients ÷ k, histograms ÷ k, but `m×B×d×2` doubles of
    /// collective traffic per node).
    fn fit_data_parallel(&self, ds: &Dataset) -> Result<TrainReport, TrainError> {
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let m = ds.m();
        let start_summaries: Vec<_> = self.group.devices().iter().map(|dv| dv.summary()).collect();
        let mut active: Vec<Arc<Device>> = self.group.devices().to_vec();
        let faults_on = active.iter().any(|dv| dv.fault_injector().is_some());
        let streamed = self.config.streams > 1;
        let hist_stream = if streamed { HIST_STREAM } else { 0 };

        // Each device holds all columns of its instance shard.
        let mut attempts = 0u32;
        loop {
            let group = DeviceGroup::from_devices(active.clone());
            charge_dp_preprocess(&group, n, m);
            if !faults_on {
                break;
            }
            match self.recover_step(&mut active, &mut attempts, usize::MAX)? {
                StepVerdict::Commit => break,
                StepVerdict::Retry | StepVerdict::Degraded => {}
            }
        }
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        let features: Vec<u32> = (0..m as u32).collect();
        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }
        let loss = loss_for_task(ds.task());
        let params = SplitParams {
            lambda: self.config.lambda,
            min_gain: self.config.min_gain,
            min_instances: self.config.min_instances,
            segments_c: self.config.segments_per_block_c,
        };
        // Structure search — and, crucially here, the ring all-reduce
        // payload — shrink from d to the sketch's effective dimension.
        let d_eff = self.config.sketch.effective_dim(d);
        let hist_len = m * self.config.max_bins * d_eff * 2;
        let mut trees = Vec::with_capacity(self.config.num_trees);
        let mut hist_methods: BTreeMap<HistogramMethod, usize> = BTreeMap::new();
        let mut hist = NodeHistogram::new(m, d_eff, self.config.max_bins);

        for t in 0..self.config.num_trees {
            let saved = faults_on.then(|| (scores.clone(), hist_methods.clone()));
            let mut attempts = 0u32;
            let committed = loop {
                let group = DeviceGroup::from_devices(active.clone());
                let k = group.len();
                let _round_scope = group.device(0).prof_scope("round", Some(t as u64));
                // Gradients: each device computes its own shard only.
                let grads_full = {
                    let g = compute_gradients(
                        group.device(0),
                        loss.as_ref(),
                        &scores,
                        ds.targets(),
                        n,
                        d,
                    );
                    // Rescale the lead's charge to a shard and mirror it on
                    // the replica ranks.
                    for (rank, dev) in group.devices().iter().enumerate() {
                        if rank != 0 {
                            dev.charge_kernel(
                                "grad_hess_shard",
                                Phase::Gradient,
                                &KernelCost::streaming(
                                    (n / k) as f64 * d as f64 * loss.flops_per_output(),
                                    ((n / k) * d * 16) as f64,
                                ),
                            );
                        }
                    }
                    g
                };
                // Sketch once per tree: device 0 selects, the plan is
                // broadcast, every device gathers/projects its shard.
                let (grads, full_for_refit) = if self.config.sketch.is_none() {
                    (grads_full, None)
                } else {
                    let sketched = self.sketch_round(&group, &grads_full, t, n / k);
                    (sketched, Some(grads_full))
                };

                let mut tree = Tree::new(grads.d);
                let mut leaf_assignments: Vec<(Vec<u32>, Vec<f32>)> = Vec::new();
                let mut leaf_nodes: Vec<usize> = Vec::new();
                let root_idx: Vec<u32> = (0..n as u32).collect();
                let (rg, rh) = grads.sums(&root_idx);
                let mut frontier = vec![(0usize, root_idx, rg, rh)];
                // Streamed mode: each level's fresh builds start at the
                // previous level's alignment fence plus the first reduced
                // chunk of the in-flight all-reduce, whose tail they overlap.
                let mut level_fence: Option<Event> = None;

                for depth in 0..self.config.max_depth {
                    let _level_scope = group.device(0).prof_scope("level", Some(depth as u64));
                    if streamed {
                        for dev in group.devices() {
                            let f = match level_fence {
                                Some(f) => f,
                                None => dev.record_event(0),
                            };
                            dev.wait_event(HIST_STREAM, f);
                        }
                    }
                    let mut next = Vec::new();
                    let mut reduced_nodes = 0usize;
                    for (tree_node, instances, node_g, node_h) in frontier {
                        if instances.len() < 2 * self.config.min_instances {
                            let v = leaf_values(
                                &node_g,
                                &node_h,
                                self.config.lambda,
                                self.config.learning_rate,
                            );
                            tree.set_leaf(tree_node, v.clone());
                            leaf_nodes.push(tree_node);
                            leaf_assignments.push((instances, v));
                            continue;
                        }
                        // Partial histograms: every device runs the kernel
                        // over its 1/k shard of the node, all features.
                        for (rank, dev) in group.devices().iter().enumerate() {
                            let shard_len =
                                instances.len() / k + usize::from(rank < instances.len() % k);
                            let lo = rank * (instances.len() / k) + rank.min(instances.len() % k);
                            let shard = &instances[lo..(lo + shard_len).min(instances.len())];
                            if shard.is_empty() {
                                continue;
                            }
                            let ctx = HistContext {
                                device: dev,
                                data: &binned,
                                grads: &grads,
                                features: &features,
                                bins: self.config.max_bins,
                                opts: self.config.hist,
                            };
                            let method = match self.config.hist.method {
                                HistogramMethod::Adaptive => {
                                    adaptive::select_method(&ctx, shard.len())
                                }
                                mtd => mtd,
                            };
                            match method {
                                HistogramMethod::GlobalMemory => {
                                    gmem::charge_on(&ctx, shard, hist_stream)
                                }
                                HistogramMethod::SharedMemory => {
                                    smem::charge_on(&ctx, shard, hist_stream)
                                }
                                HistogramMethod::SortReduce => {
                                    sortreduce::charge_on(&ctx, shard, hist_stream)
                                }
                                HistogramMethod::Adaptive => unreachable!(),
                            }
                            *hist_methods.entry(method).or_insert(0) += 1;
                        }
                        if streamed {
                            // Split evaluation is replicated and consumes the
                            // reduced histogram of every shard: join split
                            // work on the slowest rank's fresh build.
                            let mut built = Event::at_ns(0.0);
                            for dev in group.devices() {
                                built = built.max(dev.record_event(HIST_STREAM));
                            }
                            for dev in group.devices() {
                                dev.wait_event(0, built);
                            }
                        }
                        // Functional accumulation once (sum of all shards).
                        let full_ctx = HistContext {
                            device: group.device(0),
                            data: &binned,
                            grads: &grads,
                            features: &features,
                            bins: self.config.max_bins,
                            opts: self.config.hist,
                        };
                        hist.reset();
                        accumulate_dense(&full_ctx, &instances, &mut hist);
                        reduced_nodes += 1;

                        // After the all-reduce every device holds the full
                        // histogram and finds the identical best split.
                        let split = find_best_split_range(
                            group.device(0),
                            &hist,
                            &features,
                            0,
                            m,
                            &node_g,
                            &node_h,
                            instances.len() as u32,
                            &params,
                        );
                        for dev in &group.devices()[1..] {
                            // Redundant split evaluation on every device.
                            dev.charge_kernel(
                                "split_eval_replicated",
                                Phase::SplitEval,
                                &KernelCost::streaming(
                                    (m * grads.d * self.config.max_bins) as f64 * 10.0,
                                    (m * grads.d * self.config.max_bins * 16) as f64,
                                ),
                            );
                        }

                        let Some(split) = split else {
                            let v = leaf_values(
                                &node_g,
                                &node_h,
                                self.config.lambda,
                                self.config.learning_rate,
                            );
                            tree.set_leaf(tree_node, v.clone());
                            leaf_nodes.push(tree_node);
                            leaf_assignments.push((instances, v));
                            continue;
                        };
                        let col = binned.bins.col(split.feature as usize);
                        let flags: Vec<bool> = instances
                            .iter()
                            .map(|&i| col[i as usize] <= split.bin)
                            .collect();
                        crate::sanitize::trace_partition(&group.devices()[0], &flags);
                        let (left_idx, right_idx) = partition_stable(&instances, &flags);
                        for dev in group.devices() {
                            dev.charge_kernel(
                                "partition_shard",
                                Phase::Partition,
                                &KernelCost {
                                    flops: 3.0 * (instances.len() / k) as f64,
                                    dram_bytes: ((instances.len() / k) * 17) as f64,
                                    launches: 2.0,
                                    ..Default::default()
                                },
                            );
                        }
                        let threshold = binned.cuts.threshold(split.feature as usize, split.bin);
                        let (l, r) =
                            tree.split_node(tree_node, split.feature, split.bin, threshold);
                        let right_g: Vec<f64> = node_g
                            .iter()
                            .zip(&split.left_g)
                            .map(|(a, b)| a - b)
                            .collect();
                        let right_h: Vec<f64> = node_h
                            .iter()
                            .zip(&split.left_h)
                            .map(|(a, b)| a - b)
                            .collect();
                        next.push((l, left_idx, split.left_g, split.left_h));
                        next.push((r, right_idx, right_g, right_h));
                    }
                    // One ring all-reduce per node's histogram, batched as a
                    // single level-wide collective of `reduced_nodes` payloads.
                    let mut comm_partial: Option<Event> = None;
                    if k > 1 && reduced_nodes > 0 {
                        let bytes = reduced_nodes * hist_len * 8;
                        tel_collective_bytes(group.devices(), bytes as f64);
                        let ns = group.device(0).model().ring_all_reduce_ns(bytes as f64, k);
                        if streamed {
                            // The collective enters when the slowest rank's
                            // builds finish and drains on the comm engines
                            // while stream 0 proceeds.
                            let mut fence = Event::at_ns(0.0);
                            for dev in group.devices() {
                                fence = fence.max(dev.record_event(HIST_STREAM));
                            }
                            let done =
                                streamed_collective(group.devices(), "hist_all_reduce", ns, fence);
                            comm_partial = Some(done.offset_ns(-ns * (1.0 - 1.0 / COMM_CHUNKS)));
                        } else {
                            for dev in group.devices() {
                                dev.charge_ns("hist_all_reduce", Phase::Comm, ns);
                            }
                        }
                    }
                    if streamed {
                        let align = align_stream0(group.devices());
                        level_fence = Some(comm_partial.map_or(align, |p| align.max(p)));
                    } else {
                        group.barrier();
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                for (tree_node, instances, node_g, node_h) in frontier {
                    let v = leaf_values(
                        &node_g,
                        &node_h,
                        self.config.lambda,
                        self.config.learning_rate,
                    );
                    tree.set_leaf(tree_node, v.clone());
                    leaf_nodes.push(tree_node);
                    leaf_assignments.push((instances, v));
                }
                // Sketched structure, full-output leaves: refit on device 0,
                // shard-sized mirror charges on the replicas.
                let (tree, leaf_assignments) = if let Some(full) = &full_for_refit {
                    self.refit_round(&group, tree, leaf_assignments, leaf_nodes, full, n / k)
                } else {
                    (tree, leaf_assignments)
                };
                for (rank, dev) in group.devices().iter().enumerate() {
                    if rank == 0 {
                        update_scores_from_leaves(dev, &mut scores, d, &leaf_assignments);
                    } else {
                        let touched: usize =
                            leaf_assignments.iter().map(|(v, _)| v.len()).sum::<usize>() / k;
                        dev.charge_kernel(
                            "update_scores_shard",
                            Phase::Predict,
                            &KernelCost::streaming((touched * d) as f64, (touched * d * 8) as f64),
                        );
                    }
                }
                if !faults_on {
                    break tree;
                }
                match self.recover_step(&mut active, &mut attempts, t)? {
                    StepVerdict::Commit => break tree,
                    StepVerdict::Retry => {}
                    StepVerdict::Degraded => {
                        // Survivors absorb the lost device's instance shard:
                        // charge the re-shard ingest before re-running.
                        charge_dp_preprocess(&DeviceGroup::from_devices(active.clone()), n, m);
                    }
                }
                let (saved_scores, saved_methods) =
                    saved.as_ref().expect("snapshot exists when faults are on");
                scores.copy_from_slice(saved_scores);
                hist_methods = saved_methods.clone();
            };
            trees.push(committed);
        }
        // Clock spread is only visible before the final barrier joins
        // every stream to the group makespan.
        tel_makespan_skew(&active);
        DeviceGroup::from_devices(active.clone()).barrier();

        let model = Model {
            trees,
            base,
            d,
            task: ds.task(),
            config: self.config.clone(),
        };
        let lead = &active[0];
        let lead_pos = self
            .group
            .devices()
            .iter()
            .position(|dv| Arc::ptr_eq(dv, lead))
            .expect("lead device comes from the original group");
        let sim = lead.summary().since(&start_summaries[lead_pos]);
        Ok(TrainReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
            hist_methods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gpusim::Device;

    fn dataset(seed: u64) -> Dataset {
        make_classification(&ClassificationSpec {
            instances: 500,
            features: 16,
            classes: 4,
            informative: 10,
            class_sep: 2.0,
            seed,
            ..Default::default()
        })
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            num_trees: 6,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn try_new_rejects_invalid_config_without_panicking() {
        let bad = TrainConfig {
            num_trees: 0,
            ..quick_config()
        };
        let err = MultiGpuTrainer::try_new(DeviceGroup::rtx4090s(2), bad)
            .err()
            .unwrap();
        assert!(err.message().contains("num_trees"), "{err}");
        let err2 = MultiGpuTrainer::try_with_strategy(
            DeviceGroup::rtx4090s(2),
            TrainConfig {
                max_depth: 0,
                ..quick_config()
            },
            MultiGpuStrategy::DataParallel,
        )
        .err()
        .unwrap();
        assert!(err2.message().contains("max_depth"), "{err2}");
        assert!(MultiGpuTrainer::try_new(DeviceGroup::rtx4090s(2), quick_config()).is_ok());
    }

    #[test]
    fn partition_features_covers_everything() {
        let parts = partition_features(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 7), (7, 10)]);
        let parts = partition_features(2, 4);
        assert_eq!(parts.iter().map(|(a, b)| b - a).sum::<usize>(), 2);
        assert_eq!(partition_features(0, 2), vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn multi_gpu_model_matches_single_gpu_model() {
        // Feature-parallel training is algorithmically exact: the same
        // splits must be found regardless of the device count.
        let ds = dataset(1);
        let single = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        let dual = MultiGpuTrainer::new(DeviceGroup::rtx4090s(2), quick_config()).fit(&ds);
        assert_eq!(
            single.predict(ds.features()),
            dual.predict(ds.features()),
            "dual-GPU predictions must equal single-GPU"
        );
    }

    #[test]
    fn dual_gpu_is_faster_than_single_in_sim_time() {
        // Table 2's dual-GPU column: histogram work splits across
        // devices, so simulated time drops. Large enough that per-level
        // collective latency does not swamp the histogram savings.
        let ds = make_classification(&ClassificationSpec {
            instances: 20_000,
            features: 32,
            classes: 16,
            informative: 20,
            class_sep: 2.0,
            seed: 2,
            ..Default::default()
        });
        let cfg = TrainConfig {
            num_trees: 3,
            ..quick_config()
        };
        let single = MultiGpuTrainer::new(DeviceGroup::rtx4090s(1), cfg.clone()).fit_report(&ds);
        let dual = MultiGpuTrainer::new(DeviceGroup::rtx4090s(2), cfg).fit_report(&ds);
        assert!(
            dual.sim_seconds < single.sim_seconds,
            "dual {} vs single {}",
            dual.sim_seconds,
            single.sim_seconds
        );
    }

    #[test]
    fn multi_gpu_learns() {
        let ds = dataset(3);
        let (train, test) = ds.split(0.3, 7);
        let model = MultiGpuTrainer::new(DeviceGroup::rtx4090s(4), quick_config()).fit(&train);
        let acc = accuracy(&model.predict(test.features()), &test.labels());
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn comm_time_is_booked() {
        let ds = dataset(4);
        let trainer = MultiGpuTrainer::new(DeviceGroup::rtx4090s(2), quick_config());
        let _ = trainer.fit(&ds);
        for dev in trainer.group().devices() {
            assert!(
                dev.summary().by_phase.contains_key(&Phase::Comm),
                "device {} has no communication time",
                dev.id
            );
        }
    }

    #[test]
    fn data_parallel_matches_single_gpu_model() {
        let ds = dataset(6);
        let single = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        let dp = MultiGpuTrainer::with_strategy(
            DeviceGroup::rtx4090s(3),
            quick_config(),
            MultiGpuStrategy::DataParallel,
        )
        .fit(&ds);
        assert_eq!(
            single.predict(ds.features()),
            dp.predict(ds.features()),
            "data-parallel training must be an exact decomposition too"
        );
    }

    #[test]
    fn data_parallel_pays_histogram_sized_communication() {
        // The trade-off that justifies the paper's feature-parallel
        // choice: data-parallel collectives move the full m×B×d
        // histogram; feature-parallel moves only summary statistics.
        let ds = make_classification(&ClassificationSpec {
            instances: 3000,
            features: 24,
            classes: 12,
            informative: 16,
            seed: 8,
            ..Default::default()
        });
        let cfg = quick_config();
        let fp = MultiGpuTrainer::with_strategy(
            DeviceGroup::rtx4090s(2),
            cfg.clone(),
            MultiGpuStrategy::FeatureParallel,
        );
        let _ = fp.fit(&ds);
        let fp_comm = fp.group().device(0).summary().fraction(Phase::Comm);

        let dp = MultiGpuTrainer::with_strategy(
            DeviceGroup::rtx4090s(2),
            cfg,
            MultiGpuStrategy::DataParallel,
        );
        let _ = dp.fit(&ds);
        let dp_comm = dp.group().device(0).summary().fraction(Phase::Comm);
        assert!(
            dp_comm > fp_comm * 3.0,
            "data-parallel comm share {dp_comm} should dwarf feature-parallel {fp_comm}"
        );
    }

    #[test]
    fn streamed_multigpu_overlaps_collectives_without_changing_models() {
        // The tentpole claim on the multi-GPU paths: with streams > 1
        // the level-batched collectives drain on the comm engines while
        // the next level's fresh builds run, shrinking the makespan —
        // and the trees, predictions, and the *order* of charged
        // kernels stay bit-identical to the serial schedule.
        let ds = make_classification(&ClassificationSpec {
            instances: 6000,
            features: 24,
            classes: 8,
            informative: 16,
            class_sep: 2.0,
            seed: 11,
            ..Default::default()
        });
        for strategy in [
            MultiGpuStrategy::FeatureParallel,
            MultiGpuStrategy::DataParallel,
        ] {
            let cfg1 = TrainConfig {
                num_trees: 3,
                ..quick_config()
            };
            let cfg4 = TrainConfig {
                streams: 4,
                ..cfg1.clone()
            };
            let serial = MultiGpuTrainer::with_strategy(DeviceGroup::rtx4090s(2), cfg1, strategy);
            let r1 = serial.fit_report(&ds);
            let streamed = MultiGpuTrainer::with_strategy(DeviceGroup::rtx4090s(2), cfg4, strategy);
            let r4 = streamed.fit_report(&ds);
            assert_eq!(
                r1.model.predict(ds.features()),
                r4.model.predict(ds.features()),
                "{strategy:?}: streams must not change the model"
            );
            assert!(
                r4.sim_seconds < r1.sim_seconds,
                "{strategy:?}: streamed {} should beat serial {}",
                r4.sim_seconds,
                r1.sim_seconds
            );
            assert!(
                r4.sim.overlap_saved_ns > 0.0,
                "{strategy:?}: overlap savings must be recorded"
            );
            for (d1, d4) in serial
                .group()
                .devices()
                .iter()
                .zip(streamed.group().devices())
            {
                let names1: Vec<&str> = d1.records().iter().map(|r| r.name).collect();
                let names4: Vec<&str> = d4.records().iter().map(|r| r.name).collect();
                assert_eq!(
                    names1, names4,
                    "{strategy:?}: device {} charge order must not change",
                    d1.id
                );
            }
        }
    }

    #[test]
    fn more_devices_than_features_still_works() {
        let ds = make_classification(&ClassificationSpec {
            instances: 200,
            features: 3,
            classes: 2,
            informative: 3,
            seed: 5,
            ..Default::default()
        });
        let model = MultiGpuTrainer::new(DeviceGroup::rtx4090s(8), quick_config()).fit(&ds);
        assert_eq!(model.num_trees(), 6);
    }
}
