//! Gradient/Hessian computation on the device (paper §3.1.1).
//!
//! One simulated thread per instance evaluates the loss derivatives for
//! all `d` outputs from the current raw scores ŷ. Scores themselves are
//! maintained *incrementally*: after each tree, leaf values are
//! scattered onto the instances resident in each leaf, instead of
//! re-traversing the ensemble — the paper's "skip traversal altogether
//! and directly retrieve the leaf weights".

use crate::loss::MultiOutputLoss;
use gpusim::cost::KernelCost;
use gpusim::{Device, Phase};
use rayon::prelude::*;

/// Per-instance, per-output first and second loss derivatives,
/// row-major: `g[i*d + k]`.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// First derivatives.
    pub g: Vec<f32>,
    /// Second derivatives (diagonal Hessian).
    pub h: Vec<f32>,
    /// Instance count.
    pub n: usize,
    /// Output dimension. This is the *effective* width of the matrix,
    /// not necessarily the model's: during a sketched round
    /// ([`crate::sketch`]) the trainer hands the grower an `n × k`
    /// `Gradients` with `d == k`, and every downstream consumer
    /// (histogram shapes, cost formulas via `HistContext::d()`, split
    /// scan, leaf widths) sizes itself from this field.
    pub d: usize,
}

impl Gradients {
    /// Gradient row of instance `i`.
    pub fn g_row(&self, i: usize) -> &[f32] {
        &self.g[i * self.d..(i + 1) * self.d]
    }

    /// Hessian row of instance `i`.
    pub fn h_row(&self, i: usize) -> &[f32] {
        &self.h[i * self.d..(i + 1) * self.d]
    }

    /// Sum of g and h over the given instances, per output — the root
    /// node's (G, H) totals.
    pub fn sums(&self, idx: &[u32]) -> (Vec<f64>, Vec<f64>) {
        let d = self.d;
        let mut gs = vec![0.0f64; d];
        let mut hs = vec![0.0f64; d];
        for &i in idx {
            let i = i as usize;
            for k in 0..d {
                gs[k] += self.g[i * d + k] as f64;
                hs[k] += self.h[i * d + k] as f64;
            }
        }
        (gs, hs)
    }
}

/// Evaluate `loss` derivatives for every instance on `device`.
///
/// `scores` and `targets` are row-major `n × d`.
pub fn compute_gradients(
    device: &Device,
    loss: &dyn MultiOutputLoss,
    scores: &[f32],
    targets: &[f32],
    n: usize,
    d: usize,
) -> Gradients {
    assert_eq!(scores.len(), n * d, "scores must be n × d");
    assert_eq!(targets.len(), n * d, "targets must be n × d");
    let mut g = vec![0.0f32; n * d];
    let mut h = vec![0.0f32; n * d];
    g.par_chunks_mut(d)
        .zip(h.par_chunks_mut(d))
        .enumerate()
        .for_each(|(i, (gr, hr))| {
            loss.grad_hess_row(
                &scores[i * d..(i + 1) * d],
                &targets[i * d..(i + 1) * d],
                gr,
                hr,
            );
        });
    device.charge_kernel(
        "grad_hess",
        Phase::Gradient,
        &KernelCost::streaming(
            n as f64 * d as f64 * loss.flops_per_output(),
            // read scores + targets, write g + h
            (n * d * 16) as f64,
        ),
    );
    crate::sanitize::trace_grad_hess(device, n, d);
    Gradients { g, h, n, d }
}

/// Round an `f32` to bfloat16 precision (keep the upper 16 bits, round
/// to nearest-even on the dropped half).
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    let rounding = 0x7FFF + ((bits >> 16) & 1);
    f32::from_bits((bits.wrapping_add(rounding)) & 0xFFFF_0000)
}

/// Quantize a gradient set to bfloat16 precision in place (paper
/// motivation: GBDT-MO's gradient storage is `d×` a single-output
/// trainer's; bf16 halves it and the histogram read traffic).
pub fn quantize_bf16(device: &Device, grads: &mut Gradients) {
    grads.g.iter_mut().for_each(|v| *v = bf16_round(*v));
    grads.h.iter_mut().for_each(|v| *v = bf16_round(*v));
    device.charge_kernel(
        "quantize_bf16",
        Phase::Gradient,
        &KernelCost::streaming((grads.g.len() * 2) as f64, (grads.g.len() * 2 * 6) as f64),
    );
    crate::sanitize::trace_quantize_bf16(device, grads.g.len());
}

/// Scatter a finished tree's leaf values onto the training scores:
/// `scores[i*d..] += leaf_value(leaf containing i)` for every leaf.
/// This is the incremental ŷ update of §3.1.1.
pub fn update_scores_from_leaves(
    device: &Device,
    scores: &mut [f32],
    d: usize,
    leaf_assignments: &[(Vec<u32>, Vec<f32>)],
) {
    let mut touched = 0usize;
    for (instances, value) in leaf_assignments {
        assert_eq!(value.len(), d, "leaf value must be d-dimensional");
        for &i in instances {
            let base = i as usize * d;
            for k in 0..d {
                scores[base + k] += value[k];
            }
        }
        touched += instances.len();
    }
    device.charge_kernel(
        "update_scores",
        Phase::Predict,
        &KernelCost::streaming(
            (touched * d) as f64,
            // read + write each touched score row, read leaf values once
            (touched * d * 8 + leaf_assignments.len() * d * 4) as f64,
        ),
    );
    crate::sanitize::trace_update_scores(device, d, scores.len() / d.max(1), leaf_assignments);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{MseLoss, SoftmaxLoss};

    #[test]
    fn mse_gradients_match_formula() {
        let device = Device::rtx4090();
        let scores = vec![1.0f32, 0.0, /**/ 0.5, 0.5];
        let targets = vec![0.0f32, 0.0, /**/ 0.5, 1.0];
        let gr = compute_gradients(&device, &MseLoss, &scores, &targets, 2, 2);
        assert_eq!(gr.g, vec![2.0, 0.0, 0.0, -1.0]);
        assert!(gr.h.iter().all(|&x| x == 2.0));
        assert!(device.now_ns() > 0.0);
    }

    #[test]
    fn gradient_rows_accessible() {
        let device = Device::rtx4090();
        let scores = vec![0.0f32; 6];
        let targets = vec![1.0f32; 6];
        let gr = compute_gradients(&device, &MseLoss, &scores, &targets, 2, 3);
        assert_eq!(gr.g_row(1), &[-2.0, -2.0, -2.0]);
        assert_eq!(gr.h_row(0), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn sums_accumulate_selected_instances() {
        let device = Device::rtx4090();
        let scores = vec![1.0f32, 2.0, 3.0, 4.0];
        let targets = vec![0.0f32; 4];
        let gr = compute_gradients(&device, &MseLoss, &scores, &targets, 2, 2);
        let (gs, hs) = gr.sums(&[0, 1]);
        assert_eq!(gs, vec![2.0 + 6.0, 4.0 + 8.0]);
        assert_eq!(hs, vec![4.0, 4.0]);
        let (gs, _) = gr.sums(&[1]);
        assert_eq!(gs, vec![6.0, 8.0]);
    }

    #[test]
    fn sums_width_follows_effective_d() {
        // `sums` (and everything downstream) must size itself from the
        // matrix's own `d`, so a k-column sketch yields k-wide (G, H)
        // totals while the untouched full set still yields d-wide ones
        // — the contract the sketched-round leaf refit relies on.
        use crate::config::OutputSketch;
        use crate::sketch::{apply_sketch, plan_sketch};
        let device = Device::rtx4090();
        let scores = vec![0.5f32; 4 * 6];
        let targets: Vec<f32> = (0..24).map(|i| (i % 3) as f32).collect();
        let full = compute_gradients(&device, &MseLoss, &scores, &targets, 4, 6);
        let plan = plan_sketch(&device, &full, OutputSketch::TopOutputs(2), 17);
        let sketched = apply_sketch(&device, &full, &plan);
        let idx = [0u32, 1, 2, 3];
        let (gf, hf) = full.sums(&idx);
        let (gk, hk) = sketched.sums(&idx);
        assert_eq!((gf.len(), hf.len()), (6, 6));
        assert_eq!((gk.len(), hk.len()), (2, 2));
        // Column selection preserves the selected columns' sums exactly.
        for (j, &gs) in gk.iter().enumerate() {
            assert!(
                gf.iter().any(|&x| (x - gs).abs() < 1e-12),
                "sketched column sum {gs} (col {j}) not found in full sums"
            );
        }
    }

    #[test]
    fn softmax_gradients_parallel_matches_serial() {
        let device = Device::rtx4090();
        let n = 100;
        let d = 5;
        let scores: Vec<f32> = (0..n * d).map(|i| ((i * 31) % 17) as f32 * 0.1).collect();
        let mut targets = vec![0.0f32; n * d];
        for i in 0..n {
            targets[i * d + i % d] = 1.0;
        }
        let gr = compute_gradients(&device, &SoftmaxLoss, &scores, &targets, n, d);
        // Spot-check one row against a direct call.
        let mut g = vec![0.0f32; d];
        let mut h = vec![0.0f32; d];
        SoftmaxLoss.grad_hess_row(
            &scores[7 * d..8 * d],
            &targets[7 * d..8 * d],
            &mut g,
            &mut h,
        );
        assert_eq!(gr.g_row(7), &g[..]);
        assert_eq!(gr.h_row(7), &h[..]);
    }

    #[test]
    fn score_update_applies_leaf_values() {
        let device = Device::rtx4090();
        let mut scores = vec![0.0f32; 8]; // 4 instances × d=2
        let leaves = vec![
            (vec![0u32, 2], vec![1.0f32, -1.0]),
            (vec![1u32, 3], vec![0.5f32, 0.5]),
        ];
        update_scores_from_leaves(&device, &mut scores, 2, &leaves);
        assert_eq!(scores, vec![1.0, -1.0, 0.5, 0.5, 1.0, -1.0, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "scores must be n × d")]
    fn shape_mismatch_panics() {
        let device = Device::rtx4090();
        let _ = compute_gradients(&device, &MseLoss, &[0.0; 3], &[0.0; 4], 2, 2);
    }

    #[test]
    fn bf16_rounding_is_close_and_idempotent() {
        for &x in &[0.0f32, 1.0, -1.0, 2.75, 1e-8, -123.456, 65504.0] {
            let r = bf16_round(x);
            if x != 0.0 {
                assert!(
                    ((r - x) / x).abs() < 0.01,
                    "bf16({x}) = {r}: relative error too large"
                );
            }
            assert_eq!(bf16_round(r), r, "rounding must be idempotent");
            // bf16 has at most 8 mantissa bits: low 16 bits clear.
            assert_eq!(r.to_bits() & 0xFFFF, 0);
        }
    }

    #[test]
    fn quantization_preserves_learning_signal() {
        let device = Device::rtx4090();
        let scores = vec![0.3f32, -0.7, 1.1, 0.0];
        let targets = vec![1.0f32, 0.0, 0.5, -0.5];
        let mut grads = compute_gradients(&device, &MseLoss, &scores, &targets, 2, 2);
        let exact = grads.g.clone();
        quantize_bf16(&device, &mut grads);
        for (q, e) in grads.g.iter().zip(&exact) {
            assert!((q - e).abs() <= e.abs() * 0.01 + 1e-6);
            // Signs never flip.
            assert!(q.signum() == e.signum() || *e == 0.0);
        }
    }
}
